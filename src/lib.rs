//! # wmdm-patrol — facade crate
//!
//! One-stop re-export of the whole workspace: geometry, tours, the wireless
//! field substrate, the energy model, scenario generation, the simulator,
//! the TCTP planners, the evaluation metrics and the planning service
//! (`serve`).
//!
//! Most applications only need:
//!
//! ```rust
//! use wmdm_patrol::prelude::*;
//!
//! // A small scenario: 10 targets in an 800 m × 800 m field, 4 mules.
//! let scenario = ScenarioConfig::paper_default()
//!     .with_targets(10)
//!     .with_mules(4)
//!     .with_seed(7)
//!     .generate();
//!
//! let plan = BTctp::new().plan(&scenario).expect("plannable scenario");
//! let outcome = Simulation::new(&scenario, &plan).run_for(20_000.0);
//! let report = IntervalReport::from_outcome(&outcome);
//! assert!(report.max_interval() > 0.0);
//! ```
//!
//! See the `examples/` directory for richer end-to-end programs and the
//! `mule-bench` crate for the figure-regeneration harness.

pub use mule_energy as energy;
pub use mule_geom as geom;
pub use mule_graph as graph;
pub use mule_metrics as metrics;
pub use mule_net as net;
pub use mule_serve as serve;
pub use mule_sim as sim;
pub use mule_workload as workload;
pub use patrol_core as patrol;

/// Convenient glob-import surface covering the common end-to-end workflow.
pub mod prelude {
    pub use mule_energy::{Battery, EnergyModel, PatrolRounds};
    pub use mule_geom::{Point, Polyline};
    pub use mule_graph::{Tour, TourConstruction};
    pub use mule_metrics::{DcdtSeries, IntervalReport, SummaryStatistics};
    pub use mule_net::{Field, NodeKind};
    pub use mule_sim::{Simulation, SimulationOutcome};
    pub use mule_workload::{Scenario, ScenarioConfig};
    pub use patrol_core::{
        baselines::{ChbPlanner, RandomPlanner, SweepPlanner},
        BTctp, BreakEdgePolicy, PatrolPlan, Planner, RwTctp, WTctp,
    };
}
