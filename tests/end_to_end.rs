//! End-to-end integration tests: scenario generation → planning →
//! simulation → metrics, for every planner in the workspace.

use wmdm_patrol::prelude::*;
use wmdm_patrol::sim::SimulationConfig;
use wmdm_patrol::workload::WeightSpec;

fn paper_scenario(seed: u64) -> Scenario {
    ScenarioConfig::paper_default()
        .with_targets(12)
        .with_mules(4)
        .with_seed(seed)
        .generate()
}

fn simulate(
    scenario: &Scenario,
    plan: &wmdm_patrol::patrol::PatrolPlan,
    horizon: f64,
) -> SimulationOutcome {
    Simulation::with_config(scenario, plan, SimulationConfig::timing_only()).run_for(horizon)
}

#[test]
fn every_planner_covers_every_target() {
    let scenario = paper_scenario(101);
    let planners: Vec<Box<dyn Planner>> = vec![
        Box::new(BTctp::new()),
        Box::new(WTctp::new(BreakEdgePolicy::ShortestLength)),
        Box::new(WTctp::new(BreakEdgePolicy::BalancingLength)),
        Box::new(ChbPlanner::new()),
        Box::new(SweepPlanner::new()),
        Box::new(RandomPlanner::new()),
    ];
    for planner in planners {
        let plan = planner.plan(&scenario).expect("plan");
        let outcome = simulate(&scenario, &plan, 60_000.0);
        let per_node = outcome.visit_times_per_node();
        for id in scenario.patrolled_ids() {
            assert!(
                per_node.get(&id).map(|v| !v.is_empty()).unwrap_or(false),
                "{}: node {id} never visited",
                plan.planner_name
            );
        }
    }
}

#[test]
fn btctp_interval_sd_is_zero_and_beats_chb() {
    // The core comparison behind Figures 7 and 8.
    let mut btctp_max = Vec::new();
    let mut chb_sd = Vec::new();
    for seed in [1u64, 2, 3] {
        let scenario = paper_scenario(seed);
        let btctp_plan = BTctp::new().plan(&scenario).unwrap();
        let chb_plan = ChbPlanner::new().plan(&scenario).unwrap();

        let btctp_outcome = simulate(&scenario, &btctp_plan, 80_000.0);
        let chb_outcome = simulate(&scenario, &chb_plan, 80_000.0);

        let btctp_report = IntervalReport::from_outcome(&btctp_outcome);
        let chb_report = IntervalReport::from_outcome(&chb_outcome);

        // B-TCTP: per-target SD numerically zero, max interval ≈ |P|/(n·v).
        assert!(
            btctp_report.average_sd() < 1.0,
            "seed {seed}: B-TCTP SD {}",
            btctp_report.average_sd()
        );
        let expected =
            btctp_plan.itineraries[0].cycle_length() / (btctp_plan.mule_count() as f64 * 2.0);
        assert!(
            (btctp_report.max_interval() - expected).abs() < 2.0,
            "seed {seed}: max interval {} vs |P|/(n·v) {expected}",
            btctp_report.max_interval()
        );

        // CHB (bunched mules) is never better on either metric.
        assert!(chb_report.average_sd() >= btctp_report.average_sd());
        assert!(chb_report.max_interval() >= btctp_report.max_interval() - 1.0);

        btctp_max.push(btctp_report.max_interval());
        chb_sd.push(chb_report.average_sd());
    }
    // CHB's SD is clearly positive on at least one topology.
    assert!(chb_sd.iter().any(|&s| s > 10.0), "CHB SDs: {chb_sd:?}");
    assert!(btctp_max.iter().all(|&m| m > 0.0));
}

#[test]
fn wtctp_vip_visit_rate_scales_with_weight() {
    let scenario = ScenarioConfig::paper_default()
        .with_targets(16)
        .with_mules(2)
        .with_weights(WeightSpec::UniformVips {
            count: 3,
            weight: 3,
        })
        .with_seed(55)
        .generate();
    let plan = WTctp::new(BreakEdgePolicy::BalancingLength)
        .plan(&scenario)
        .unwrap();
    let outcome = simulate(&scenario, &plan, 120_000.0);
    let per_node = outcome.visit_times_per_node();

    // VIPs (weight 3) must be visited roughly three times as often as NTPs.
    let vip_ids: Vec<_> = scenario.field().vips().iter().map(|v| v.id).collect();
    let vip_visits: f64 = vip_ids
        .iter()
        .map(|id| per_node.get(id).map(Vec::len).unwrap_or(0) as f64)
        .sum::<f64>()
        / vip_ids.len() as f64;
    let ntp_ids: Vec<_> = scenario
        .field()
        .patrolled_nodes()
        .iter()
        .filter(|n| !n.is_vip())
        .map(|n| n.id)
        .collect();
    let ntp_visits: f64 = ntp_ids
        .iter()
        .map(|id| per_node.get(id).map(Vec::len).unwrap_or(0) as f64)
        .sum::<f64>()
        / ntp_ids.len() as f64;
    let ratio = vip_visits / ntp_visits;
    assert!(
        (2.0..=4.0).contains(&ratio),
        "VIP/NTP visit ratio {ratio} should be close to the weight 3 (vip {vip_visits}, ntp {ntp_visits})"
    );
}

#[test]
fn shortest_policy_builds_shorter_paths_balancing_builds_steadier_vips() {
    let scenario = ScenarioConfig::paper_default()
        .with_targets(18)
        .with_mules(1)
        .with_weights(WeightSpec::UniformVips {
            count: 3,
            weight: 3,
        })
        .with_seed(77)
        .generate();

    let shortest_plan = WTctp::new(BreakEdgePolicy::ShortestLength)
        .plan(&scenario)
        .unwrap();
    let balancing_plan = WTctp::new(BreakEdgePolicy::BalancingLength)
        .plan(&scenario)
        .unwrap();

    // Path-length claim (Fig. 9 driver).
    assert!(
        shortest_plan.itineraries[0].cycle_length()
            <= balancing_plan.itineraries[0].cycle_length() + 1e-6
    );

    // VIP interval-stability claim (Fig. 10 driver), single-mule setting.
    let vip_ids: Vec<_> = scenario.field().vips().iter().map(|v| v.id).collect();
    let vip_sd = |plan: &wmdm_patrol::patrol::PatrolPlan| {
        let outcome = simulate(&scenario, plan, 400_000.0);
        let report = IntervalReport::from_outcome(&outcome);
        let sds: Vec<f64> = vip_ids
            .iter()
            .filter_map(|id| report.node_sd(*id))
            .collect();
        sds.iter().sum::<f64>() / sds.len() as f64
    };
    assert!(vip_sd(&balancing_plan) <= vip_sd(&shortest_plan) + 1.0);
}

#[test]
fn rwtctp_outlives_wtctp_on_a_small_battery() {
    use wmdm_patrol::energy::EnergyModel;
    use wmdm_patrol::patrol::rwtctp::RwTctp;

    let scenario = ScenarioConfig::paper_default()
        .with_targets(12)
        .with_mules(3)
        .with_weights(WeightSpec::UniformVips {
            count: 2,
            weight: 2,
        })
        .with_recharge_station(true)
        .with_seed(88)
        .generate();
    let energy = EnergyModel {
        initial_energy_j: 80_000.0,
        ..EnergyModel::paper_default()
    };
    let config = SimulationConfig::default().with_energy(energy);

    let rw_plan = RwTctp::with_energy(BreakEdgePolicy::ShortestLength, energy)
        .plan(&scenario)
        .unwrap();
    let rw_outcome = Simulation::with_config(&scenario, &rw_plan, config).run_for(120_000.0);
    assert!(
        rw_outcome.all_mules_survived(),
        "RW-TCTP keeps the fleet alive"
    );
    assert!(rw_outcome.mules.iter().any(|m| m.recharges > 0));

    let w_plan = WTctp::new(BreakEdgePolicy::ShortestLength)
        .plan(&scenario)
        .unwrap();
    let w_outcome = Simulation::with_config(&scenario, &w_plan, config).run_for(120_000.0);
    assert!(
        !w_outcome.all_mules_survived(),
        "without recharge planning the same battery strands the fleet"
    );

    // RW-TCTP also keeps collecting for the whole horizon, so it delivers
    // strictly more data.
    assert!(rw_outcome.total_visits() > w_outcome.total_visits());
}

#[test]
fn metrics_pipeline_is_consistent_across_crates() {
    let scenario = paper_scenario(123);
    let plan = BTctp::new().plan(&scenario).unwrap();
    let outcome = simulate(&scenario, &plan, 50_000.0);

    let intervals = IntervalReport::from_outcome(&outcome);
    let dcdt = DcdtSeries::from_outcome(&outcome);
    let summary: SummaryStatistics = intervals.summary();

    // In steady state the DCDT of a visit equals the preceding visiting
    // interval, so the two metrics must agree closely for B-TCTP.
    assert!(
        (intervals.mean_interval() - dcdt.average_dcdt(2)).abs()
            < intervals.mean_interval() * 0.05 + 1.0
    );
    assert!(summary.count > 0);
    assert!(summary.max >= summary.mean && summary.mean >= summary.min);
    // Energy report is consistent even for the timing-only configuration.
    let energy = wmdm_patrol::metrics::EnergyEfficiencyReport::from_outcome(&outcome);
    assert!(energy.fleet_survived());
    assert_eq!(energy.fleet_size, 4);
}
