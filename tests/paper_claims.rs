//! Cross-crate property tests of the qualitative claims the paper makes,
//! randomised over scenario seeds and sizes with proptest.

use proptest::prelude::*;
use wmdm_patrol::prelude::*;
use wmdm_patrol::sim::SimulationConfig;
use wmdm_patrol::workload::WeightSpec;

fn simulate(
    scenario: &Scenario,
    plan: &wmdm_patrol::patrol::PatrolPlan,
    horizon: f64,
) -> SimulationOutcome {
    Simulation::with_config(scenario, plan, SimulationConfig::timing_only()).run_for(horizon)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Definition 3: the weighted patrolling path visits a VIP `w` times per
    /// traversal and every NTP exactly once, for every policy and any
    /// scenario.
    #[test]
    fn wpp_visit_counts_match_weights(
        seed in 0u64..5_000,
        targets in 5usize..25,
        vips in 1usize..5,
        weight in 2u32..6,
    ) {
        let scenario = ScenarioConfig::paper_default()
            .with_targets(targets)
            .with_weights(WeightSpec::UniformVips { count: vips, weight })
            .with_seed(seed)
            .generate();
        for policy in [BreakEdgePolicy::ShortestLength, BreakEdgePolicy::BalancingLength] {
            let plan = WTctp::new(policy).plan(&scenario).unwrap();
            let it = &plan.itineraries[0];
            for node in scenario.field().patrolled_nodes() {
                prop_assert_eq!(
                    it.visits_per_round(node.id),
                    node.weight.value() as usize,
                    "{:?} node {}",
                    policy,
                    node.id
                );
            }
        }
    }

    /// B-TCTP's plan always spreads the mules exactly |P|/n apart along the
    /// shared circuit.
    #[test]
    fn btctp_entry_offsets_are_equally_spaced(
        seed in 0u64..5_000,
        targets in 3usize..30,
        mules in 1usize..8,
    ) {
        let scenario = ScenarioConfig::paper_default()
            .with_targets(targets)
            .with_mules(mules)
            .with_seed(seed)
            .generate();
        let plan = BTctp::new().plan(&scenario).unwrap();
        let total = plan.itineraries[0].cycle_length();
        prop_assume!(total > 1.0);
        let mut offsets: Vec<f64> = plan.itineraries.iter().map(|i| i.entry_offset_m).collect();
        offsets.sort_by(|a, b| a.total_cmp(b));
        let gap = total / mules as f64;
        for w in offsets.windows(2) {
            prop_assert!((w[1] - w[0] - gap).abs() < 1e-6);
        }
    }

    /// The simulator respects its horizon and reports monotone visit times
    /// for any planner.
    #[test]
    fn simulation_times_are_bounded_and_monotone(
        seed in 0u64..5_000,
        targets in 3usize..15,
        mules in 1usize..5,
        horizon in 1_000.0f64..30_000.0,
    ) {
        let scenario = ScenarioConfig::paper_default()
            .with_targets(targets)
            .with_mules(mules)
            .with_seed(seed)
            .generate();
        let plan = BTctp::new().plan(&scenario).unwrap();
        let outcome = simulate(&scenario, &plan, horizon);
        prop_assert!(outcome.visits.iter().all(|v| v.time_s <= horizon + 1e-9));
        for w in outcome.visits.windows(2) {
            prop_assert!(w[1].time_s >= w[0].time_s - 1e-9);
        }
        prop_assert!(outcome.visits.iter().all(|v| v.data_age_s >= 0.0));
    }

    /// The Shortest-Length policy never builds a longer weighted path than
    /// the Balancing-Length policy.
    #[test]
    fn shortest_policy_path_is_never_longer(
        seed in 0u64..5_000,
        targets in 6usize..20,
        vips in 1usize..4,
        weight in 2u32..5,
    ) {
        let scenario = ScenarioConfig::paper_default()
            .with_targets(targets)
            .with_weights(WeightSpec::UniformVips { count: vips, weight })
            .with_seed(seed)
            .generate();
        let shortest = WTctp::new(BreakEdgePolicy::ShortestLength)
            .plan(&scenario)
            .unwrap()
            .itineraries[0]
            .cycle_length();
        let balancing = WTctp::new(BreakEdgePolicy::BalancingLength)
            .plan(&scenario)
            .unwrap()
            .itineraries[0]
            .cycle_length();
        prop_assert!(shortest <= balancing + 1e-6);
    }

    /// Energy conservation: the energy drawn from every battery equals the
    /// ledgered consumption, and never exceeds the capacity between
    /// recharges.
    #[test]
    fn energy_accounting_is_conservative(
        seed in 0u64..5_000,
        targets in 4usize..12,
        mules in 1usize..4,
    ) {
        let scenario = ScenarioConfig::paper_default()
            .with_targets(targets)
            .with_mules(mules)
            .with_seed(seed)
            .generate();
        let plan = BTctp::new().plan(&scenario).unwrap();
        let outcome = Simulation::new(&scenario, &plan).run_for(20_000.0);
        for m in &outcome.mules {
            let capacity = wmdm_patrol::energy::EnergyModel::paper_default().initial_energy_j;
            prop_assert!(m.remaining_energy_j >= -1e-9);
            prop_assert!(m.remaining_energy_j <= capacity + 1e-9);
            // Ledger total never exceeds what the battery could supply
            // (no recharge station in this scenario).
            prop_assert!(m.ledger.total() <= capacity + 1e-6);
        }
    }
}
