//! # mule-fault
//!
//! Seeded, deterministic fault injection for the patrolling workspace, in
//! the same opt-in style as `mule-obs` tracing: code under test declares
//! **named fault points** (`mule_fault::point("serve.plan")`), and a
//! process-wide [`FaultPlan`] decides — purely as a function of the plan
//! seed and each rule's hit counter — whether a visit to that point fires
//! a fault.
//!
//! ## Contract
//!
//! * **Disarmed ⇒ inert.** With no plan armed (the default), every fault
//!   point is a single relaxed atomic load returning `None`. No fault can
//!   fire, no state is touched, and all byte-identity contracts elsewhere
//!   in the workspace (golden plan bytes, cache bytes, trace shapes) hold
//!   exactly as if this crate did not exist.
//! * **Armed ⇒ deterministic.** Each [`FaultRule`] owns a monotonically
//!   increasing hit counter. Whether the rule fires on its *n*-th hit is a
//!   pure function of `(plan.seed, rule index, n)` — a SplitMix64 draw
//!   compared against the rule's probability — so re-arming the same plan
//!   and replaying the same sequence of point visits reproduces the exact
//!   same firing sequence, regardless of wall-clock timing.
//! * **Every firing is observable.** Firings are appended to a global
//!   [`Firing`] log (see [`firing_log`]), aggregated into per-point/kind
//!   counters (see [`injection_counts`], exported by `mule-serve` as
//!   `mule_fault_injected_total{point,kind}`), and counted onto the
//!   current `mule-obs` span as `fault.injected` when a trace is active.
//!
//! ## Fault kinds
//!
//! | kind | spec syntax | behaviour at the point |
//! |------|-------------|------------------------|
//! | [`FaultKind::Delay`] | `delay:MS` | sleeps `MS` milliseconds, then continues |
//! | [`FaultKind::Panic`] | `panic` | panics with [`INJECTED_PANIC_PREFIX`] + point name |
//! | [`FaultKind::Io`] | `io` | returns [`Injected::Io`]; call sites surface an [`std::io::Error`] |
//! | [`FaultKind::Evict`] | `evict` | returns [`Injected::Evict`]; call sites drop the cache entry |
//!
//! `Delay` and `Panic` are applied *inside* the fault point (the caller
//! never sees them as a return value); `Io` and `Evict` need call-site
//! cooperation and are returned as [`Injected`] values.
//!
//! ```
//! use mule_fault::{FaultKind, FaultPlan};
//!
//! // Disarmed: inert.
//! assert!(mule_fault::point("doc.example").is_none());
//!
//! let plan = FaultPlan::parse(7, "doc.example=evict@1.0#2").unwrap();
//! mule_fault::arm(plan);
//! assert!(matches!(
//!     mule_fault::point("doc.example"),
//!     Some(mule_fault::Injected::Evict)
//! ));
//! mule_fault::disarm();
//! assert!(mule_fault::point("doc.example").is_none());
//! # let _ = FaultKind::Evict;
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Prefix of the panic payload produced by [`FaultKind::Panic`] firings;
/// sweep quarantine and chaos assertions recognise injected panics by it.
pub const INJECTED_PANIC_PREFIX: &str = "mule-fault: injected panic at";

/// What a firing rule does at its fault point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Sleep for the given number of milliseconds, then continue normally.
    Delay {
        /// Injected latency in milliseconds.
        ms: u64,
    },
    /// Panic with a recognisable [`INJECTED_PANIC_PREFIX`] message.
    Panic,
    /// Ask the call site to surface an I/O error ([`Injected::Io`]).
    Io,
    /// Ask the call site to drop a cache entry ([`Injected::Evict`]).
    Evict,
}

impl FaultKind {
    /// Stable lowercase label used in metrics and the firing log.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Delay { .. } => "delay",
            FaultKind::Panic => "panic",
            FaultKind::Io => "io",
            FaultKind::Evict => "evict",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Delay { ms } => write!(f, "delay:{ms}"),
            _ => f.write_str(self.label()),
        }
    }
}

/// One injection rule: at every visit of `point`, draw deterministically
/// and fire `kind` with the given probability, at most `limit` times.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Fault point name the rule applies to (exact match).
    pub point: String,
    /// What firing does.
    pub kind: FaultKind,
    /// Per-hit firing probability in `[0, 1]`; `1.0` fires on every hit.
    pub probability: f64,
    /// Maximum number of firings, `None` for unlimited.
    pub limit: Option<u64>,
}

impl fmt::Display for FaultRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.point, self.kind)?;
        if self.probability != 1.0 {
            write!(f, "@{}", self.probability)?;
        }
        if let Some(limit) = self.limit {
            write!(f, "#{limit}")?;
        }
        Ok(())
    }
}

/// A seeded set of [`FaultRule`]s; arming one (see [`arm`]) makes fault
/// points live until [`disarm`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the deterministic per-rule firing decisions.
    pub seed: u64,
    /// Rules, evaluated in order at each point visit (first firing wins).
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Builder-style rule append.
    pub fn with_rule(
        mut self,
        point: &str,
        kind: FaultKind,
        probability: f64,
        limit: Option<u64>,
    ) -> Self {
        self.rules.push(FaultRule {
            point: point.to_string(),
            kind,
            probability,
            limit,
        });
        self
    }

    /// Parses the compact rule syntax used by `patrolctl`:
    /// comma-separated `point=kind[:arg][@probability][#limit]` rules,
    /// e.g. `serve.plan=panic@0.25#3,serve.conn.read=io@0.1` or
    /// `serve.plan=delay:50`.
    pub fn parse(seed: u64, spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new(seed);
        for raw in spec.split(',') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            plan.rules.push(parse_rule(raw)?);
        }
        if plan.rules.is_empty() {
            return Err(format!("fault plan `{spec}` contains no rules"));
        }
        Ok(plan)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, rule) in self.rules.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{rule}")?;
        }
        Ok(())
    }
}

fn parse_rule(raw: &str) -> Result<FaultRule, String> {
    let (point, rest) = raw
        .split_once('=')
        .ok_or_else(|| format!("fault rule `{raw}` is missing `point=kind`"))?;
    let point = point.trim();
    if point.is_empty() {
        return Err(format!("fault rule `{raw}` has an empty point name"));
    }
    let (rest, limit) = match rest.split_once('#') {
        Some((head, limit)) => {
            let limit: u64 = limit
                .trim()
                .parse()
                .map_err(|_| format!("fault rule `{raw}` has a non-integer limit"))?;
            (head, Some(limit))
        }
        None => (rest, None),
    };
    let (kind, probability) = match rest.split_once('@') {
        Some((kind, prob)) => {
            let p: f64 = prob
                .trim()
                .parse()
                .map_err(|_| format!("fault rule `{raw}` has a non-numeric probability"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!(
                    "fault rule `{raw}` probability must be within [0, 1]"
                ));
            }
            (kind, p)
        }
        None => (rest, 1.0),
    };
    let kind = match kind.trim() {
        "panic" => FaultKind::Panic,
        "io" => FaultKind::Io,
        "evict" => FaultKind::Evict,
        other => match other.split_once(':') {
            Some(("delay", ms)) => {
                let ms: u64 = ms
                    .trim()
                    .parse()
                    .map_err(|_| format!("fault rule `{raw}` has a non-integer delay"))?;
                FaultKind::Delay { ms }
            }
            _ => {
                return Err(format!(
                    "fault rule `{raw}` has unknown kind `{other}` \
                     (expected delay:MS, panic, io, or evict)"
                ))
            }
        },
    };
    Ok(FaultRule {
        point: point.to_string(),
        kind,
        probability,
        limit,
    })
}

/// A fault the call site must apply itself (returned by [`point`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injected {
    /// Surface an I/O error (see [`io_error`] for a ready-made one).
    Io,
    /// Drop the cache entry the call site is about to consult.
    Evict,
}

/// One recorded firing, in global firing order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Firing {
    /// Global 0-based firing sequence number.
    pub sequence: u64,
    /// Fault point that fired.
    pub point: String,
    /// Kind label (`delay` / `panic` / `io` / `evict`).
    pub kind: &'static str,
    /// Index of the firing rule within the armed plan.
    pub rule: usize,
    /// The rule's 0-based hit index at which it fired.
    pub hit: u64,
}

struct ArmedState {
    plan: FaultPlan,
    /// Per-rule visit counters (every visit of a matching point).
    hits: Vec<AtomicU64>,
    /// Per-rule firing counters (visits where the rule actually fired).
    fired: Vec<AtomicU64>,
    sequence: AtomicU64,
    log: Mutex<Vec<Firing>>,
}

/// Fast-path flag: `false` means no plan is armed and [`point`] returns
/// `None` after a single relaxed load.
static ARMED: AtomicBool = AtomicBool::new(false);

static STATE: Mutex<Option<Arc<ArmedState>>> = Mutex::new(None);

fn state() -> Option<Arc<ArmedState>> {
    STATE.lock().unwrap_or_else(PoisonError::into_inner).clone()
}

/// Arms `plan` process-wide, resetting all hit counters, firing counters,
/// and the firing log. Fault points become live immediately on all
/// threads.
pub fn arm(plan: FaultPlan) {
    let rules = plan.rules.len();
    let armed = Arc::new(ArmedState {
        plan,
        hits: (0..rules).map(|_| AtomicU64::new(0)).collect(),
        fired: (0..rules).map(|_| AtomicU64::new(0)).collect(),
        sequence: AtomicU64::new(0),
        log: Mutex::new(Vec::new()),
    });
    *STATE.lock().unwrap_or_else(PoisonError::into_inner) = Some(armed);
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarms fault injection; all fault points return to the inert fast
/// path. Counters and the firing log are discarded.
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
    *STATE.lock().unwrap_or_else(PoisonError::into_inner) = None;
}

/// Returns `true` while a plan is armed.
pub fn is_armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// SplitMix64 — the same mixer the workspace's seeded RNGs use.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Uniform `[0, 1)` draw for rule `rule` on its `hit`-th visit — a pure
/// function of the triple, which is what makes firing sequences
/// reproducible across runs and thread interleavings.
fn decision_draw(seed: u64, rule: usize, hit: u64) -> f64 {
    let mixed = splitmix64(
        seed ^ splitmix64(rule as u64 ^ 0xA076_1D64_78BD_642F)
            ^ splitmix64(hit ^ 0xE703_7ED1_A0B4_28DB),
    );
    (mixed >> 11) as f64 / (1u64 << 53) as f64
}

/// Declares a fault point. Returns `None` when nothing fires (the
/// overwhelmingly common case, and always when disarmed); `Delay` and
/// `Panic` firings are applied in place, `Io`/`Evict` firings are
/// returned for the call site to apply.
pub fn point(name: &str) -> Option<Injected> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    let armed = state()?;
    // Every matching rule's hit counter advances on every visit, so each
    // rule's decision stream is independent of whether earlier rules in
    // the plan fired.
    let mut winner: Option<(usize, u64)> = None;
    for (i, rule) in armed.plan.rules.iter().enumerate() {
        if rule.point != name {
            continue;
        }
        let hit = armed.hits[i].fetch_add(1, Ordering::Relaxed);
        if winner.is_some() {
            continue;
        }
        if decision_draw(armed.plan.seed, i, hit) >= rule.probability {
            continue;
        }
        if let Some(limit) = rule.limit {
            // Claim a firing slot; rules past their limit stay quiet.
            let claimed = armed.fired[i]
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                    (n < limit).then_some(n + 1)
                })
                .is_ok();
            if !claimed {
                continue;
            }
        } else {
            armed.fired[i].fetch_add(1, Ordering::Relaxed);
        }
        winner = Some((i, hit));
    }
    let (rule_idx, hit) = winner?;
    let rule = &armed.plan.rules[rule_idx];
    let firing = Firing {
        sequence: armed.sequence.fetch_add(1, Ordering::Relaxed),
        point: rule.point.clone(),
        kind: rule.kind.label(),
        rule: rule_idx,
        hit,
    };
    armed
        .log
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(firing.clone());
    mule_obs::add("fault.injected", 1);
    // Mirror the firing into the structured event log (inert when no
    // sink is installed — the disarmed/offline byte-identity contract
    // only concerns disarmed runs, but armed runs without a logger must
    // not pay for rendering either).
    if mule_obs::log::enabled_at(mule_obs::log::Severity::Warn) {
        mule_obs::log::emit(
            mule_obs::log::LogEvent::new(mule_obs::log::Severity::Warn, "fault.injected")
                .field("point", firing.point.as_str())
                .field("kind", firing.kind)
                .field("rule", firing.rule)
                .field("hit", firing.hit)
                .field("sequence", firing.sequence),
        );
    }
    match rule.kind {
        FaultKind::Delay { ms } => {
            std::thread::sleep(Duration::from_millis(ms));
            None
        }
        FaultKind::Panic => {
            panic!("{INJECTED_PANIC_PREFIX} `{name}`");
        }
        FaultKind::Io => Some(Injected::Io),
        FaultKind::Evict => Some(Injected::Evict),
    }
}

/// [`point`] specialised for I/O call sites: a firing `io` rule becomes a
/// ready-made [`std::io::Error`] (other kinds behave as in [`point`];
/// an `evict` firing at an I/O point is ignored).
pub fn io_error(name: &str) -> Option<std::io::Error> {
    match point(name) {
        Some(Injected::Io) => Some(std::io::Error::new(
            std::io::ErrorKind::BrokenPipe,
            format!("mule-fault: injected i/o error at `{name}`"),
        )),
        _ => None,
    }
}

/// Aggregated firing counters of the armed plan as sorted
/// `(point, kind, count)` rows — the backing data of the
/// `mule_fault_injected_total{point,kind}` metric family. Empty when
/// disarmed.
pub fn injection_counts() -> Vec<(String, &'static str, u64)> {
    let Some(armed) = state() else {
        return Vec::new();
    };
    let mut counts: Vec<(String, &'static str, u64)> = Vec::new();
    for (i, rule) in armed.plan.rules.iter().enumerate() {
        let fired = armed.fired[i].load(Ordering::Relaxed);
        if fired == 0 {
            continue;
        }
        match counts
            .iter_mut()
            .find(|(p, k, _)| *p == rule.point && *k == rule.kind.label())
        {
            Some(row) => row.2 += fired,
            None => counts.push((rule.point.clone(), rule.kind.label(), fired)),
        }
    }
    counts.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
    counts
}

/// The firing log of the armed plan, in global firing order. Empty when
/// disarmed.
pub fn firing_log() -> Vec<Firing> {
    match state() {
        Some(armed) => armed
            .log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone(),
        None => Vec::new(),
    }
}

/// Total number of firings of the armed plan so far (0 when disarmed).
pub fn firings_total() -> u64 {
    state().map_or(0, |armed| armed.sequence.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Fault state is process-global; tests that arm plans serialise on
    /// this lock so cargo's parallel test threads cannot interleave.
    fn armed_guard() -> MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disarmed_points_are_inert() {
        let _guard = armed_guard();
        disarm();
        assert!(!is_armed());
        assert!(point("anything").is_none());
        assert!(io_error("anything").is_none());
        assert!(injection_counts().is_empty());
        assert!(firing_log().is_empty());
        assert_eq!(firings_total(), 0);
    }

    #[test]
    fn parse_round_trips_the_compact_syntax() {
        let plan = FaultPlan::parse(
            9,
            "serve.plan=panic@0.25#3, serve.plan=delay:50, conn.read=io@0.1, c=evict",
        )
        .unwrap();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.rules.len(), 4);
        assert_eq!(
            plan.rules[0],
            FaultRule {
                point: "serve.plan".into(),
                kind: FaultKind::Panic,
                probability: 0.25,
                limit: Some(3),
            }
        );
        assert_eq!(plan.rules[1].kind, FaultKind::Delay { ms: 50 });
        assert_eq!(plan.rules[2].probability, 0.1);
        assert_eq!(plan.rules[3].kind, FaultKind::Evict);
        let rendered = plan.to_string();
        assert_eq!(FaultPlan::parse(9, &rendered).unwrap(), plan);
    }

    #[test]
    fn parse_rejects_malformed_rules() {
        assert!(FaultPlan::parse(1, "").is_err());
        assert!(FaultPlan::parse(1, "no-equals").is_err());
        assert!(FaultPlan::parse(1, "p=unknown").is_err());
        assert!(FaultPlan::parse(1, "p=delay:abc").is_err());
        assert!(FaultPlan::parse(1, "p=panic@1.5").is_err());
        assert!(FaultPlan::parse(1, "p=panic#x").is_err());
        assert!(FaultPlan::parse(1, "=panic").is_err());
    }

    #[test]
    fn same_seed_reproduces_the_exact_firing_sequence() {
        let _guard = armed_guard();
        let plan = FaultPlan::parse(42, "a=evict@0.3,a=io@0.2,b=evict@0.5").unwrap();
        let mut runs = Vec::new();
        for _ in 0..2 {
            arm(plan.clone());
            for i in 0..200 {
                let name = if i % 3 == 0 { "b" } else { "a" };
                let _ = point(name);
            }
            runs.push(firing_log());
            disarm();
        }
        assert!(!runs[0].is_empty(), "plan should fire at this volume");
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn different_seeds_differ() {
        let _guard = armed_guard();
        let mut logs = Vec::new();
        for seed in [1u64, 2] {
            arm(FaultPlan::parse(seed, "a=evict@0.5").unwrap());
            for _ in 0..64 {
                let _ = point("a");
            }
            logs.push(firing_log());
            disarm();
        }
        assert_ne!(logs[0], logs[1]);
    }

    #[test]
    fn limit_caps_firings_and_counts_only_real_firings() {
        let _guard = armed_guard();
        arm(FaultPlan::parse(3, "a=evict#2").unwrap());
        let fired: usize = (0..10)
            .filter(|_| matches!(point("a"), Some(Injected::Evict)))
            .count();
        assert_eq!(fired, 2);
        assert_eq!(injection_counts(), vec![("a".to_string(), "evict", 2)]);
        assert_eq!(firings_total(), 2);
        disarm();
    }

    #[test]
    fn panic_kind_panics_with_the_recognisable_prefix() {
        let _guard = armed_guard();
        arm(FaultPlan::new(5).with_rule("boom", FaultKind::Panic, 1.0, Some(1)));
        let err = std::panic::catch_unwind(|| point("boom")).unwrap_err();
        let message = err
            .downcast_ref::<String>()
            .cloned()
            .expect("panic payload should be a String");
        assert!(message.starts_with(INJECTED_PANIC_PREFIX), "{message}");
        assert!(message.contains("boom"));
        // After the limit, the point is quiet again.
        assert!(point("boom").is_none());
        disarm();
    }

    #[test]
    fn io_error_helper_produces_an_error_for_io_rules() {
        let _guard = armed_guard();
        arm(FaultPlan::parse(6, "net=io#1").unwrap());
        let err = io_error("net").expect("first hit should fire");
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
        assert!(io_error("net").is_none(), "limit reached");
        disarm();
    }

    #[test]
    fn probability_zero_never_fires_and_one_always_fires() {
        let _guard = armed_guard();
        arm(FaultPlan::parse(8, "never=evict@0.0,always=evict@1.0").unwrap());
        for _ in 0..50 {
            assert!(point("never").is_none());
            assert_eq!(point("always"), Some(Injected::Evict));
        }
        disarm();
    }

    #[test]
    fn first_matching_firing_wins_but_all_hit_streams_advance() {
        let _guard = armed_guard();
        // Two always-firing rules on one point: the first rule wins every
        // visit, the second stays unfired.
        arm(FaultPlan::parse(4, "p=evict,p=io").unwrap());
        for _ in 0..10 {
            assert_eq!(point("p"), Some(Injected::Evict));
        }
        assert_eq!(injection_counts(), vec![("p".to_string(), "evict", 10)]);
        disarm();
    }

    #[test]
    fn decision_draw_is_uniform_enough_and_pure() {
        let n = 10_000;
        let hits = (0..n).filter(|&h| decision_draw(77, 0, h) < 0.3).count() as f64;
        let rate = hits / n as f64;
        assert!((rate - 0.3).abs() < 0.03, "empirical rate {rate}");
        assert_eq!(decision_draw(1, 2, 3), decision_draw(1, 2, 3));
    }
}
