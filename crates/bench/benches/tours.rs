//! Criterion bench: Hamiltonian-circuit construction heuristics and the
//! W-TCTP weighted-path construction, across instance sizes. This is the
//! tour-construction ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mule_graph::{ChbConfig, SearchMode, TourConstruction};
use mule_workload::layout::bench_layout;
use mule_workload::{ScenarioConfig, WeightSpec};
use patrol_core::{BreakEdgePolicy, WTctp};
use std::hint::black_box;

fn tour_constructions(c: &mut Criterion) {
    let mut group = c.benchmark_group("tour_construction");
    for &targets in &[10usize, 25, 50] {
        let scenario = ScenarioConfig::paper_default()
            .with_targets(targets)
            .with_seed(42)
            .generate();
        let points = scenario.patrolled_positions();
        for construction in TourConstruction::ALL {
            group.bench_with_input(
                BenchmarkId::new(construction.label(), targets),
                &points,
                |b, pts| b.iter(|| black_box(construction.build(black_box(pts)))),
            );
        }
        group.bench_with_input(
            BenchmarkId::new("chb_polished", targets),
            &points,
            |b, pts| {
                b.iter(|| {
                    black_box(mule_graph::construct_circuit_with(
                        black_box(pts),
                        &ChbConfig::default(),
                    ))
                })
            },
        );
    }
    group.finish();
}

/// Exact vs. candidate-list pipeline at scale: n ∈ {50, 200, 1000, 5000}.
/// The exact pipeline is `O(n³)` in construction, so it is only timed up to
/// 1000 points (the same cap `patrolctl bench-tours` applies by default).
fn scaled_tour_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("tour_construction_scaled");
    let exact = ChbConfig::default().with_search(SearchMode::Exact);
    let fast = ChbConfig::default().with_search(SearchMode::Candidates(10));
    for &targets in &[50usize, 200, 1000, 5000] {
        let points = bench_layout(42, targets);
        group.bench_with_input(
            BenchmarkId::new("candidates", targets),
            &points,
            |b, pts| {
                b.iter(|| black_box(mule_graph::construct_circuit_with(black_box(pts), &fast)))
            },
        );
        if targets <= 1000 {
            group.bench_with_input(BenchmarkId::new("exact", targets), &points, |b, pts| {
                b.iter(|| black_box(mule_graph::construct_circuit_with(black_box(pts), &exact)))
            });
        }
    }
    group.finish();
}

fn wpp_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("wpp_construction");
    for &vips in &[2usize, 6] {
        let scenario = ScenarioConfig::paper_default()
            .with_targets(25)
            .with_weights(WeightSpec::UniformVips {
                count: vips,
                weight: 4,
            })
            .with_seed(43)
            .generate();
        for policy in BreakEdgePolicy::ALL {
            group.bench_with_input(BenchmarkId::new(policy.label(), vips), &scenario, |b, s| {
                let planner = WTctp::new(policy);
                b.iter(|| black_box(planner.build_wpp_waypoints(black_box(s)).unwrap()))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = tour_constructions, wpp_construction
}
// The scaled group re-runs the exact O(n³) pipeline at n = 1000, so it gets
// a small sample budget of its own.
criterion_group! {
    name = scaled;
    config = Criterion::default().sample_size(2);
    targets = scaled_tour_construction
}
criterion_main!(benches, scaled);
