//! Criterion bench: Hamiltonian-circuit construction heuristics and the
//! W-TCTP weighted-path construction, across instance sizes. This is the
//! tour-construction ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mule_graph::{ChbConfig, TourConstruction};
use mule_workload::{ScenarioConfig, WeightSpec};
use patrol_core::{BreakEdgePolicy, WTctp};
use std::hint::black_box;

fn tour_constructions(c: &mut Criterion) {
    let mut group = c.benchmark_group("tour_construction");
    for &targets in &[10usize, 25, 50] {
        let scenario = ScenarioConfig::paper_default()
            .with_targets(targets)
            .with_seed(42)
            .generate();
        let points = scenario.patrolled_positions();
        for construction in TourConstruction::ALL {
            group.bench_with_input(
                BenchmarkId::new(construction.label(), targets),
                &points,
                |b, pts| b.iter(|| black_box(construction.build(black_box(pts)))),
            );
        }
        group.bench_with_input(
            BenchmarkId::new("chb_polished", targets),
            &points,
            |b, pts| {
                b.iter(|| {
                    black_box(mule_graph::construct_circuit_with(
                        black_box(pts),
                        &ChbConfig::default(),
                    ))
                })
            },
        );
    }
    group.finish();
}

fn wpp_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("wpp_construction");
    for &vips in &[2usize, 6] {
        let scenario = ScenarioConfig::paper_default()
            .with_targets(25)
            .with_weights(WeightSpec::UniformVips {
                count: vips,
                weight: 4,
            })
            .with_seed(43)
            .generate();
        for policy in BreakEdgePolicy::ALL {
            group.bench_with_input(BenchmarkId::new(policy.label(), vips), &scenario, |b, s| {
                let planner = WTctp::new(policy);
                b.iter(|| black_box(planner.build_wpp_waypoints(black_box(s)).unwrap()))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = tour_constructions, wpp_construction
}
criterion_main!(benches);
