//! Criterion bench: times one Figure 10 grid cell (both break-edge
//! policies, VIP-interval SD metric).

use criterion::{criterion_group, criterion_main, Criterion};
use mule_bench::fig10::run;
use mule_bench::fig9::VipSweepParams;
use std::hint::black_box;

fn fig10_cell(c: &mut Criterion) {
    let params = VipSweepParams {
        targets: 15,
        mules: 4,
        vip_counts: vec![4],
        vip_weights: vec![3],
        replicas: 3,
        horizon_s: 60_000.0,
        seed: 100,
    };
    c.bench_function("fig10/one_cell_3_replicas", |b| {
        b.iter(|| black_box(run(black_box(&params))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig10_cell
}
criterion_main!(benches);
