//! Criterion bench: times the Figure 7 pipeline (plan + simulate + DCDT
//! series) for each compared mechanism at a reduced replica count.

use criterion::{criterion_group, criterion_main, Criterion};
use mule_bench::fig7::{run, Fig7Params};
use std::hint::black_box;

fn bench_params() -> Fig7Params {
    Fig7Params {
        targets: 10,
        mules: 4,
        visit_indices: 20,
        replicas: 3,
        horizon_s: 40_000.0,
        seed: 70,
    }
}

fn fig7_pipeline(c: &mut Criterion) {
    let params = bench_params();
    c.bench_function("fig7/all_planners_3_replicas", |b| {
        b.iter(|| black_box(run(black_box(&params))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig7_pipeline
}
criterion_main!(benches);
