//! Criterion bench: times one Figure 8 grid cell (CHB + TCTP, SD metric).

use criterion::{criterion_group, criterion_main, Criterion};
use mule_bench::fig8::{run, Fig8Params};
use std::hint::black_box;

fn fig8_cell(c: &mut Criterion) {
    let params = Fig8Params {
        target_counts: vec![20],
        mule_counts: vec![4],
        replicas: 3,
        horizon_s: 40_000.0,
        seed: 80,
    };
    c.bench_function("fig8/one_cell_3_replicas", |b| {
        b.iter(|| black_box(run(black_box(&params))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig8_cell
}
criterion_main!(benches);
