//! Criterion bench: times one Figure 9 grid cell (both break-edge policies,
//! DCDT metric).

use criterion::{criterion_group, criterion_main, Criterion};
use mule_bench::fig9::{run, VipSweepParams};
use std::hint::black_box;

fn fig9_cell(c: &mut Criterion) {
    let params = VipSweepParams {
        targets: 15,
        mules: 4,
        vip_counts: vec![4],
        vip_weights: vec![3],
        replicas: 3,
        horizon_s: 60_000.0,
        seed: 90,
    };
    c.bench_function("fig9/one_cell_3_replicas", |b| {
        b.iter(|| black_box(run(black_box(&params))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig9_cell
}
criterion_main!(benches);
