//! The tracked tour-engine benchmark behind `patrolctl bench-tours`.
//!
//! Measures `construct_circuit` wall-clock and tour quality across instance
//! sizes, exact pipeline vs. candidate-list pipeline, and serialises the
//! result as the `BENCH_tours.json` artefact the repo tracks from PR 3
//! onward. The JSON is written by hand (the in-tree `serde` shim has no
//! real serialisers) and kept deliberately flat so CI can validate it with
//! any JSON parser.
//!
//! The exact pipeline is `O(n³)` in construction, so it is only timed up to
//! [`TourBenchParams::exact_cap`] points; above the cap the speedup and
//! length-ratio columns are `null` in the JSON (explicitly, not silently
//! dropped).

use mule_graph::{construct_circuit_with, ChbConfig, SearchMode};
use mule_metrics::TextTable;
use mule_workload::layout::bench_layout;
use std::time::Instant;

/// Parameters of one `bench-tours` run.
#[derive(Debug, Clone, PartialEq)]
pub struct TourBenchParams {
    /// Instance sizes (target counts) to bench.
    pub sizes: Vec<usize>,
    /// Seed of the deterministic topologies.
    pub seed: u64,
    /// Candidate-list width for the candidates pipeline.
    pub k: usize,
    /// Largest size at which the exact pipeline is still timed; above it
    /// only the candidate pipeline runs (`O(n³)` exact construction is
    /// minutes-to-hours at 5000 points).
    pub exact_cap: usize,
    /// Timed repetitions per measurement; the minimum is reported, which
    /// is the stablest wall-clock statistic on a noisy machine.
    pub samples: usize,
}

impl Default for TourBenchParams {
    fn default() -> Self {
        TourBenchParams {
            sizes: vec![50, 200, 1000, 5000],
            seed: 42,
            k: mule_graph::chb::DEFAULT_CANDIDATES_K,
            exact_cap: 1000,
            samples: 3,
        }
    }
}

/// One benched instance size.
#[derive(Debug, Clone, PartialEq)]
pub struct TourBenchRow {
    /// Number of targets.
    pub n: usize,
    /// Exact-pipeline wall clock, milliseconds (`None` above `exact_cap`).
    pub exact_ms: Option<f64>,
    /// Candidate-pipeline wall clock, milliseconds.
    pub candidates_ms: f64,
    /// Exact tour length, metres (`None` above `exact_cap`).
    pub exact_len: Option<f64>,
    /// Candidate tour length, metres.
    pub candidates_len: f64,
    /// Construction-phase time (seed tour + candidate lists) of one traced
    /// candidates run, milliseconds. Measured separately from the timed
    /// samples, so span collection never pollutes `candidates_ms`.
    pub phase_construction_ms: f64,
    /// Local-search time (2-opt + Or-opt passes) of the same traced run,
    /// milliseconds.
    pub phase_local_search_ms: f64,
    /// Peak resident set size after the traced candidates run, kB
    /// (`None` off-Linux). Never pinned by a gate: RSS depends on the
    /// allocator and the platform.
    pub peak_rss_kb: Option<u64>,
    /// Bytes allocated by one candidates construction, measured with the
    /// counting allocator armed around the traced run.
    pub alloc_bytes: u64,
}

impl TourBenchRow {
    /// Exact time over candidate time (`None` when exact was not run).
    pub fn speedup(&self) -> Option<f64> {
        self.exact_ms.map(|e| {
            if self.candidates_ms > 0.0 {
                e / self.candidates_ms
            } else {
                f64::INFINITY
            }
        })
    }

    /// Candidate tour length over exact tour length (`None` when exact was
    /// not run). 1.0 means identical quality; the tracked bound is 1.02.
    pub fn len_ratio(&self) -> Option<f64> {
        self.exact_len.map(|e| {
            if e > 0.0 {
                self.candidates_len / e
            } else {
                1.0
            }
        })
    }
}

/// The full benchmark result.
#[derive(Debug, Clone, PartialEq)]
pub struct TourBenchReport {
    /// Parameters the report was generated with.
    pub params: TourBenchParams,
    /// One row per benched size, in input order.
    pub rows: Vec<TourBenchRow>,
}

impl TourBenchReport {
    /// Largest tour-length ratio across rows where exact ran, if any.
    pub fn max_len_ratio(&self) -> Option<f64> {
        self.rows
            .iter()
            .filter_map(TourBenchRow::len_ratio)
            .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))))
    }

    /// Renders the human-readable summary table.
    pub fn to_table(&self) -> TextTable {
        let mut table = TextTable::new(vec![
            "n",
            "exact (ms)",
            "candidates (ms)",
            "speedup",
            "length ratio",
            "constr (ms)",
            "search (ms)",
            "alloc (MB)",
            "peak RSS (MB)",
        ]);
        let na = "-".to_string();
        for row in &self.rows {
            table.add_row(vec![
                row.n.to_string(),
                row.exact_ms
                    .map(|m| format!("{m:.2}"))
                    .unwrap_or_else(|| na.clone()),
                format!("{:.2}", row.candidates_ms),
                row.speedup()
                    .map(|s| format!("{s:.1}×"))
                    .unwrap_or_else(|| na.clone()),
                row.len_ratio()
                    .map(|r| format!("{r:.4}"))
                    .unwrap_or_else(|| na.clone()),
                format!("{:.2}", row.phase_construction_ms),
                format!("{:.2}", row.phase_local_search_ms),
                format!("{:.1}", row.alloc_bytes as f64 / (1024.0 * 1024.0)),
                row.peak_rss_kb
                    .map(|kb| format!("{:.1}", kb as f64 / 1024.0))
                    .unwrap_or_else(|| na.clone()),
            ]);
        }
        table
    }

    /// Serialises the report as the tracked `BENCH_tours.json` document.
    /// Schema `v2` appends `alloc_bytes` and `peak_rss_kb` per row; every
    /// `v1` field is unchanged.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"bench-tours/v2\",\n");
        out.push_str(&format!("  \"seed\": {},\n", self.params.seed));
        out.push_str(&format!("  \"k\": {},\n", self.params.k));
        out.push_str(&format!("  \"exact_cap\": {},\n", self.params.exact_cap));
        out.push_str(&format!("  \"samples\": {},\n", self.params.samples));
        out.push_str("  \"sizes\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"n\": {}", row.n));
            out.push_str(&format!(", \"exact_ms\": {}", json_opt(row.exact_ms, 3)));
            out.push_str(&format!(", \"candidates_ms\": {:.3}", row.candidates_ms));
            out.push_str(&format!(", \"speedup\": {}", json_opt(row.speedup(), 2)));
            out.push_str(&format!(", \"exact_len\": {}", json_opt(row.exact_len, 1)));
            out.push_str(&format!(", \"candidates_len\": {:.1}", row.candidates_len));
            out.push_str(&format!(
                ", \"len_ratio\": {}",
                json_opt(row.len_ratio(), 6)
            ));
            out.push_str(&format!(
                ", \"phase_construction_ms\": {:.3}",
                row.phase_construction_ms
            ));
            out.push_str(&format!(
                ", \"phase_local_search_ms\": {:.3}",
                row.phase_local_search_ms
            ));
            out.push_str(&format!(", \"alloc_bytes\": {}", row.alloc_bytes));
            out.push_str(&format!(
                ", \"peak_rss_kb\": {}",
                row.peak_rss_kb
                    .map(|kb| kb.to_string())
                    .unwrap_or_else(|| "null".to_string())
            ));
            out.push('}');
            if i + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn json_opt(value: Option<f64>, decimals: usize) -> String {
    match value {
        Some(v) if v.is_finite() => format!("{v:.decimals$}"),
        _ => "null".to_string(),
    }
}

/// Times `build()` `samples` times and returns the minimum wall-clock in
/// milliseconds alongside the (deterministic) tour length.
fn time_pipeline<F: Fn() -> f64>(samples: usize, build: F) -> (f64, f64) {
    let mut best_ms = f64::INFINITY;
    let mut length = 0.0;
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        length = build();
        let elapsed = start.elapsed().as_secs_f64() * 1000.0;
        best_ms = best_ms.min(elapsed);
    }
    (best_ms, length)
}

/// Runs the tour benchmark over the configured sizes.
pub fn run_tour_bench(params: &TourBenchParams) -> TourBenchReport {
    let exact_config = ChbConfig::default().with_search(SearchMode::Exact);
    let fast_config = ChbConfig::default().with_search(SearchMode::Candidates(params.k.max(1)));

    let rows = params
        .sizes
        .iter()
        .map(|&n| {
            let points = bench_layout(params.seed, n);
            let (candidates_ms, candidates_len) = time_pipeline(params.samples, || {
                construct_circuit_with(&points, &fast_config).length(&points)
            });
            let (exact_ms, exact_len) = if n <= params.exact_cap {
                let (ms, len) = time_pipeline(params.samples, || {
                    construct_circuit_with(&points, &exact_config).length(&points)
                });
                (Some(ms), Some(len))
            } else {
                (None, None)
            };
            // One extra traced run — after the timed samples — yields the
            // per-phase breakdown without touching the timed numbers. The
            // counting allocator is armed around it so the same run also
            // yields the memory columns (thread-local tallies, so other
            // threads cannot pollute the delta).
            mule_obs::alloc::reset_rss_peak();
            let before = mule_obs::alloc::thread_stats();
            mule_obs::alloc::arm();
            let (_, trace) = mule_obs::capture(|| {
                construct_circuit_with(&points, &fast_config);
            });
            mule_obs::alloc::disarm();
            let after = mule_obs::alloc::thread_stats();
            let alloc_bytes = after.allocated_bytes - before.allocated_bytes;
            let peak_rss_kb = mule_obs::alloc::rss_peak_kb();
            let profile = mule_obs::FlatProfile::of(&trace);
            let phase_construction_ms = profile.total_ms_where(|name| {
                matches!(
                    name,
                    "chb.hull_seed"
                        | "chb.nn_seed"
                        | "chb.hull_insertion"
                        | "chb.candidate_lists"
                        | "graph.distance_matrix"
                )
            });
            let phase_local_search_ms =
                profile.total_ms_where(|name| matches!(name, "chb.two_opt" | "chb.or_opt"));
            TourBenchRow {
                n,
                exact_ms,
                candidates_ms,
                exact_len,
                candidates_len,
                phase_construction_ms,
                phase_local_search_ms,
                peak_rss_kb,
                alloc_bytes,
            }
        })
        .collect();

    TourBenchReport {
        params: params.clone(),
        rows,
    }
}

/// Measures the wall-clock overhead of span collection *plus the armed
/// counting allocator* on the candidates pipeline at the largest
/// configured size: `min(traced+armed) / min(plain)`. The CI gate
/// (`bench-tours --overhead-gate 1.05`) pins this ratio — both tracing
/// and allocation accounting must stay cheap enough to leave on in
/// production paths.
pub fn tracing_overhead_ratio(params: &TourBenchParams) -> f64 {
    let n = params.sizes.iter().copied().max().unwrap_or(200);
    let points = bench_layout(params.seed, n);
    let config = ChbConfig::default().with_search(SearchMode::Candidates(params.k.max(1)));
    // Minimum-of-samples on both sides; a floor of 5 samples keeps the
    // ratio stable on noisy machines even when `--samples` is lower.
    let samples = params.samples.max(5);
    let (plain_ms, _) = time_pipeline(samples, || {
        construct_circuit_with(&points, &config).length(&points)
    });
    let mut traced_ms = f64::INFINITY;
    mule_obs::alloc::arm();
    for _ in 0..samples {
        let start = Instant::now();
        let _ = mule_obs::capture(|| construct_circuit_with(&points, &config).length(&points));
        traced_ms = traced_ms.min(start.elapsed().as_secs_f64() * 1000.0);
    }
    mule_obs::alloc::disarm();
    if plain_ms > 0.0 {
        traced_ms / plain_ms
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> TourBenchParams {
        TourBenchParams {
            sizes: vec![30, 60],
            seed: 7,
            k: 8,
            exact_cap: 50,
            samples: 1,
        }
    }

    #[test]
    fn report_has_one_row_per_size_and_respects_the_exact_cap() {
        let report = run_tour_bench(&quick_params());
        assert_eq!(report.rows.len(), 2);
        let small = &report.rows[0];
        assert_eq!(small.n, 30);
        assert!(small.exact_ms.is_some());
        assert!(small.speedup().is_some());
        assert!(small.len_ratio().is_some());
        let large = &report.rows[1];
        assert_eq!(large.n, 60);
        assert!(large.exact_ms.is_none(), "above the cap exact is skipped");
        assert!(large.speedup().is_none());
        assert!(large.candidates_ms >= 0.0);
        assert!(large.candidates_len > 0.0);
    }

    #[test]
    fn quality_stays_within_the_tracked_bound_on_small_instances() {
        let report = run_tour_bench(&quick_params());
        let ratio = report.max_len_ratio().unwrap();
        assert!(ratio <= 1.02, "length ratio {ratio}");
    }

    #[test]
    fn json_is_flat_well_formed_and_null_aware() {
        let report = run_tour_bench(&quick_params());
        let json = report.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.trim_end().ends_with('}'));
        assert!(json.contains("\"schema\": \"bench-tours/v2\""));
        assert!(json.contains("\"n\": 30"));
        assert!(json.contains("\"exact_ms\": null"), "cap row is explicit");
        // Balanced braces/brackets — a cheap structural sanity check that
        // catches every way the hand serialiser could break.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // No NaN/inf can leak into the document.
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }

    #[test]
    fn phase_breakdown_is_populated_and_serialised() {
        let report = run_tour_bench(&quick_params());
        for row in &report.rows {
            assert!(row.phase_construction_ms >= 0.0);
            assert!(
                row.phase_local_search_ms > 0.0,
                "local search always runs at n={}",
                row.n
            );
        }
        let json = report.to_json();
        assert!(json.contains("\"phase_construction_ms\""));
        assert!(json.contains("\"phase_local_search_ms\""));
    }

    #[test]
    fn memory_columns_are_measured_and_serialised() {
        let report = run_tour_bench(&quick_params());
        for row in &report.rows {
            assert!(
                row.alloc_bytes > 0,
                "armed traced run allocates at n={}",
                row.n
            );
            if cfg!(target_os = "linux") {
                assert!(row.peak_rss_kb.is_some(), "procfs RSS available on Linux");
            }
        }
        let json = report.to_json();
        assert!(json.contains("\"alloc_bytes\""));
        assert!(json.contains("\"peak_rss_kb\""));
    }

    #[test]
    fn tracing_overhead_is_modest() {
        let params = TourBenchParams {
            sizes: vec![200],
            samples: 3,
            ..quick_params()
        };
        let ratio = tracing_overhead_ratio(&params);
        // Generous bound for a shared test machine; the tracked CI gate
        // pins 1.05 on the dedicated bench-smoke job.
        assert!(ratio < 1.5, "tracing overhead ratio {ratio}");
    }

    #[test]
    fn table_renders_all_columns() {
        let report = run_tour_bench(&quick_params());
        let rendered = report.to_table().render();
        assert!(rendered.contains("speedup"));
        assert!(rendered.contains("length ratio"));
        assert!(rendered.contains(" - "), "capped cells show a dash");
    }
}
