//! Path-length comparison (the §V text claim that the proposed algorithms
//! also win on "length of patrolling path").
//!
//! Three tables in one:
//!
//! 1. Hamiltonian-circuit length per construction heuristic, over a sweep of
//!    target counts.
//! 2. WPP length overhead of each break-edge policy relative to the base
//!    circuit.
//! 3. WRP splice overhead (the extra distance of detouring through the
//!    recharge station).

use mule_geom::Polyline;
use mule_graph::TourConstruction;
use mule_metrics::TextTable;
use mule_workload::{ReplicationPlan, ScenarioConfig, WeightSpec};
use patrol_core::{BreakEdgePolicy, RwTctp, WTctp};

/// Parameters of the path-length sweep.
#[derive(Debug, Clone)]
pub struct PathLenParams {
    /// Target counts to sweep.
    pub target_counts: Vec<usize>,
    /// Replicas per point.
    pub replicas: usize,
    /// VIP configuration used for the WPP/WRP overhead tables.
    pub vips: usize,
    /// VIP weight used for the WPP/WRP overhead tables.
    pub vip_weight: u32,
    /// Base seed.
    pub seed: u64,
}

impl Default for PathLenParams {
    fn default() -> Self {
        PathLenParams {
            target_counts: vec![10, 20, 30, 40, 50],
            replicas: crate::PAPER_REPLICAS,
            vips: 3,
            vip_weight: 3,
            seed: 11,
        }
    }
}

/// Average Hamiltonian-circuit length per construction heuristic.
pub fn tour_length_table(params: &PathLenParams) -> TextTable {
    let mut header = vec!["targets".to_string()];
    header.extend(TourConstruction::ALL.iter().map(|c| c.label().to_string()));
    let mut table = TextTable::new(header);

    let rows = crate::par_grid(&params.target_counts, |&targets| {
        let plan = ReplicationPlan {
            base: ScenarioConfig::paper_default()
                .with_targets(targets)
                .with_seed(params.seed),
            replicas: params.replicas,
        };
        let mut row = vec![targets.to_string()];
        for construction in TourConstruction::ALL {
            let avg = plan
                .average(|scenario| {
                    let pts = scenario.patrolled_positions();
                    construction.build(&pts).length(&pts)
                })
                .unwrap_or(0.0);
            row.push(format!("{avg:.0}"));
        }
        row
    });
    for row in rows {
        table.add_row(row);
    }
    table
}

/// Average WPP length per break-edge policy (and the base circuit) for a
/// weighted scenario.
pub fn wpp_overhead_table(params: &PathLenParams) -> TextTable {
    let mut table = TextTable::new(vec![
        "targets",
        "base circuit (m)",
        "WPP shortest (m)",
        "WPP balancing (m)",
    ]);
    let rows = crate::par_grid(&params.target_counts, |&targets| {
        let plan = ReplicationPlan {
            base: ScenarioConfig::paper_default()
                .with_targets(targets)
                .with_weights(WeightSpec::UniformVips {
                    count: params.vips,
                    weight: params.vip_weight,
                })
                .with_seed(params.seed),
            replicas: params.replicas,
        };
        let base_len = plan
            .average(|s| {
                let pts = s.patrolled_positions();
                mule_graph::construct_circuit(&pts).length(&pts)
            })
            .unwrap_or(0.0);
        let wpp_len = |policy: BreakEdgePolicy| {
            plan.average(|s| {
                let wpp = WTctp::new(policy)
                    .build_wpp_waypoints(s)
                    .expect("plannable scenario");
                Polyline::closed(wpp.iter().map(|w| w.position).collect()).length()
            })
            .unwrap_or(0.0)
        };
        vec![
            targets.to_string(),
            format!("{base_len:.0}"),
            format!("{:.0}", wpp_len(BreakEdgePolicy::ShortestLength)),
            format!("{:.0}", wpp_len(BreakEdgePolicy::BalancingLength)),
        ]
    });
    for row in rows {
        table.add_row(row);
    }
    table
}

/// Average WRP splice overhead (extra metres of the recharge detour).
pub fn wrp_overhead_table(params: &PathLenParams) -> TextTable {
    let mut table = TextTable::new(vec!["targets", "WPP (m)", "WRP (m)", "detour (m)"]);
    let rows = crate::par_grid(&params.target_counts, |&targets| {
        let plan = ReplicationPlan {
            base: ScenarioConfig::paper_default()
                .with_targets(targets)
                .with_weights(WeightSpec::UniformVips {
                    count: params.vips,
                    weight: params.vip_weight,
                })
                .with_recharge_station(true)
                .with_seed(params.seed),
            replicas: params.replicas,
        };
        let mut wpp_total = 0.0;
        let mut wrp_total = 0.0;
        let mut count = 0usize;
        for cfg in plan.configurations() {
            let scenario = cfg.generate();
            if let Ok(schedule) = RwTctp::default().build_schedule(&scenario) {
                wpp_total += schedule.wpp_length();
                wrp_total += schedule.wrp_length();
                count += 1;
            }
        }
        if count == 0 {
            return None;
        }
        let wpp = wpp_total / count as f64;
        let wrp = wrp_total / count as f64;
        Some(vec![
            targets.to_string(),
            format!("{wpp:.0}"),
            format!("{wrp:.0}"),
            format!("{:.0}", wrp - wpp),
        ])
    });
    for row in rows.into_iter().flatten() {
        table.add_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> PathLenParams {
        PathLenParams {
            target_counts: vec![8, 16],
            replicas: 3,
            vips: 2,
            vip_weight: 3,
            seed: 4,
        }
    }

    #[test]
    fn tour_length_table_has_one_row_per_target_count() {
        let t = tour_length_table(&small_params());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn wpp_overhead_is_nonnegative_and_shortest_is_tightest() {
        let p = small_params();
        let t = wpp_overhead_table(&p);
        let csv = t.to_csv();
        for line in csv.lines().skip(1) {
            let cells: Vec<f64> = line
                .split(',')
                .skip(1)
                .map(|c| c.parse::<f64>().unwrap())
                .collect();
            let (base, shortest, balancing) = (cells[0], cells[1], cells[2]);
            assert!(
                shortest >= base - 1.0,
                "WPP at least as long as the circuit"
            );
            assert!(shortest <= balancing + 1.0, "shortest policy is tightest");
        }
    }

    #[test]
    fn wrp_detour_is_nonnegative() {
        let t = wrp_overhead_table(&small_params());
        assert_eq!(t.len(), 2);
        for line in t.to_csv().lines().skip(1) {
            let detour: f64 = line.split(',').nth(3).unwrap().parse().unwrap();
            assert!(detour >= -1.0);
        }
    }
}
