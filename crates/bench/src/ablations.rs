//! Design-choice ablations called out in DESIGN.md.
//!
//! * [`recharge_ablation`] — RW-TCTP vs. W-TCTP without recharge under a
//!   battery sweep: does the Eq. 4 schedule actually keep the fleet alive,
//!   and what does the recharge detour cost?
//! * [`spread_ablation`] — B-TCTP with and without the phase-2 start-point
//!   spreading: how much of the interval stability comes from the spreading
//!   versus the shared circuit alone?

use crate::{run_energy_sweep, run_timing_sweep};
use mule_energy::EnergyModel;
use mule_metrics::{EnergyEfficiencyReport, IntervalReport, TextTable};
use mule_sim::SimulationConfig;
use mule_workload::{ScenarioConfig, WeightSpec};
use patrol_core::{BTctp, BreakEdgePolicy, RwTctp, WTctp};

/// Parameters of the recharge ablation.
#[derive(Debug, Clone)]
pub struct RechargeAblationParams {
    /// Battery capacities (joules) to sweep.
    pub battery_capacities_j: Vec<f64>,
    /// Number of targets.
    pub targets: usize,
    /// Number of mules.
    pub mules: usize,
    /// Replicas per point.
    pub replicas: usize,
    /// Horizon per replica, seconds.
    pub horizon_s: f64,
    /// Base seed.
    pub seed: u64,
}

impl Default for RechargeAblationParams {
    fn default() -> Self {
        RechargeAblationParams {
            battery_capacities_j: vec![30_000.0, 60_000.0, 120_000.0, 240_000.0],
            targets: 15,
            mules: 4,
            replicas: 10,
            horizon_s: 120_000.0,
            seed: 21,
        }
    }
}

/// Runs the recharge ablation and returns a table with one row per battery
/// capacity: fleet survival and recharge counts for RW-TCTP vs. the
/// recharge-unaware W-TCTP.
pub fn recharge_ablation(params: &RechargeAblationParams) -> TextTable {
    let mut table = TextTable::new(vec![
        "battery (kJ)",
        "rounds r (Eq.4)",
        "RW-TCTP survival",
        "RW-TCTP recharges",
        "W-TCTP survival",
        "RW-TCTP useful energy",
    ]);

    let rows = crate::par_grid(&params.battery_capacities_j, |&capacity| {
        let energy = EnergyModel {
            initial_energy_j: capacity,
            ..EnergyModel::paper_default()
        };
        let base = ScenarioConfig::paper_default()
            .with_targets(params.targets)
            .with_mules(params.mules)
            .with_weights(WeightSpec::UniformVips {
                count: 2,
                weight: 2,
            })
            .with_recharge_station(true)
            .with_seed(params.seed);
        let sim_config = SimulationConfig::default().with_energy(energy);

        let rw = RwTctp::with_energy(BreakEdgePolicy::ShortestLength, energy);
        let rw_rep = run_energy_sweep(&rw, base, params.replicas, &sim_config, params.horizon_s);
        let rw_survival = rw_rep
            .average(|o| if o.all_mules_survived() { 1.0 } else { 0.0 })
            .unwrap_or(0.0);
        let rw_recharges = rw_rep
            .average(|o| o.mules.iter().map(|m| m.recharges).sum::<usize>() as f64)
            .unwrap_or(0.0);
        let rw_useful = rw_rep
            .average(|o| EnergyEfficiencyReport::from_outcome(o).useful_fraction())
            .unwrap_or(0.0);

        // Eq. 4 rounds on the first replica (the schedule is per-scenario).
        let first_cfg = mule_workload::ReplicationPlan {
            base,
            replicas: params.replicas,
        }
        .configurations()[0];
        let rounds = rw
            .build_schedule(&first_cfg.generate())
            .map(|s| s.rounds.rounds_per_charge)
            .unwrap_or(0);

        let wtctp = WTctp::new(BreakEdgePolicy::ShortestLength);
        let w_rep = run_energy_sweep(&wtctp, base, params.replicas, &sim_config, params.horizon_s);
        let w_survival = w_rep
            .average(|o| if o.all_mules_survived() { 1.0 } else { 0.0 })
            .unwrap_or(0.0);

        vec![
            format!("{:.0}", capacity / 1000.0),
            rounds.to_string(),
            format!("{:.0}%", rw_survival * 100.0),
            format!("{rw_recharges:.1}"),
            format!("{:.0}%", w_survival * 100.0),
            format!("{:.2}", rw_useful),
        ]
    });
    for row in rows {
        table.add_row(row);
    }
    table
}

/// Parameters of the start-point-spreading ablation.
#[derive(Debug, Clone)]
pub struct SpreadAblationParams {
    /// Mule counts to sweep.
    pub mule_counts: Vec<usize>,
    /// Number of targets.
    pub targets: usize,
    /// Replicas per point.
    pub replicas: usize,
    /// Horizon per replica, seconds.
    pub horizon_s: f64,
    /// Base seed.
    pub seed: u64,
}

impl Default for SpreadAblationParams {
    fn default() -> Self {
        SpreadAblationParams {
            mule_counts: vec![2, 4, 6, 8],
            targets: 15,
            replicas: 10,
            horizon_s: 80_000.0,
            seed: 23,
        }
    }
}

/// Runs the spreading ablation: max interval and SD with and without the
/// B-TCTP phase-2 spreading.
pub fn spread_ablation(params: &SpreadAblationParams) -> TextTable {
    let mut table = TextTable::new(vec![
        "mules",
        "spread max interval (s)",
        "spread SD (s)",
        "no-spread max interval (s)",
        "no-spread SD (s)",
    ]);
    let rows = crate::par_grid(&params.mule_counts, |&mules| {
        let base = ScenarioConfig::paper_default()
            .with_targets(params.targets)
            .with_mules(mules)
            .with_seed(params.seed);
        let metrics = |planner: &BTctp| {
            let rep = run_timing_sweep(planner, base, params.replicas, params.horizon_s);
            let max = rep
                .average(|o| IntervalReport::from_outcome(o).max_interval())
                .unwrap_or(0.0);
            let sd = rep
                .average(|o| IntervalReport::from_outcome(o).average_sd())
                .unwrap_or(0.0);
            (max, sd)
        };
        let (spread_max, spread_sd) = metrics(&BTctp::new());
        let (plain_max, plain_sd) = metrics(&BTctp::without_spreading());
        vec![
            mules.to_string(),
            format!("{spread_max:.0}"),
            format!("{spread_sd:.2}"),
            format!("{plain_max:.0}"),
            format!("{plain_sd:.2}"),
        ]
    });
    for row in rows {
        table.add_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recharge_ablation_produces_one_row_per_capacity() {
        let params = RechargeAblationParams {
            battery_capacities_j: vec![40_000.0],
            targets: 8,
            mules: 2,
            replicas: 2,
            horizon_s: 40_000.0,
            seed: 1,
        };
        let t = recharge_ablation(&params);
        assert_eq!(t.len(), 1);
        let row = t.to_csv().lines().nth(1).unwrap().to_string();
        // RW-TCTP survives on every replica.
        assert!(row.contains("100%"), "row was: {row}");
    }

    #[test]
    fn spread_ablation_shows_spreading_never_hurts_sd() {
        let params = SpreadAblationParams {
            mule_counts: vec![4],
            targets: 8,
            replicas: 2,
            horizon_s: 50_000.0,
            seed: 2,
        };
        let t = spread_ablation(&params);
        assert_eq!(t.len(), 1);
        let cells: Vec<f64> = t
            .to_csv()
            .lines()
            .nth(1)
            .unwrap()
            .split(',')
            .skip(1)
            .map(|c| c.parse::<f64>().unwrap())
            .collect();
        let (spread_sd, plain_sd) = (cells[1], cells[3]);
        assert!(spread_sd <= plain_sd + 1e-6);
    }
}
