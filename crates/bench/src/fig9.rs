//! Figure 9 — average DCDT for the Shortest-Length vs Balancing-Length
//! break-edge policies, swept over the number of VIPs and the VIP weight.
//!
//! The shape to reproduce: DCDT grows with both the VIP count and the VIP
//! weight (the weighted patrolling path gets longer), and the
//! Shortest-Length policy always yields a DCDT no larger than the
//! Balancing-Length policy because its WPP is shorter.

use crate::run_timing_sweep;
use mule_metrics::{DcdtSeries, TextTable};
use mule_workload::{ScenarioConfig, WeightSpec};
use patrol_core::{BreakEdgePolicy, WTctp};

/// Parameters of the Figure 9 / Figure 10 sweeps (they share the grid).
#[derive(Debug, Clone)]
pub struct VipSweepParams {
    /// Total number of targets (paper: 20).
    pub targets: usize,
    /// Number of mules.
    pub mules: usize,
    /// VIP counts to sweep.
    pub vip_counts: Vec<usize>,
    /// VIP weights to sweep.
    pub vip_weights: Vec<u32>,
    /// Replicas per cell.
    pub replicas: usize,
    /// Horizon per replica, seconds.
    pub horizon_s: f64,
    /// Base seed.
    pub seed: u64,
}

impl Default for VipSweepParams {
    fn default() -> Self {
        VipSweepParams {
            targets: 20,
            // A single data mule: with several mules the merged visit
            // pattern at a VIP is set by the mule spacing rather than by the
            // break-edge policy, which would mask the effect Figures 9/10
            // isolate (see EXPERIMENTS.md).
            mules: 1,
            vip_counts: vec![1, 2, 4, 6, 8],
            vip_weights: vec![2, 3, 4, 5],
            replicas: crate::PAPER_REPLICAS,
            horizon_s: 400_000.0,
            seed: 9,
        }
    }
}

/// One cell of the Figure 9 grid.
#[derive(Debug, Clone, Copy)]
pub struct Fig9Cell {
    /// Number of VIPs.
    pub vips: usize,
    /// VIP weight.
    pub weight: u32,
    /// Average DCDT under the Shortest-Length policy, seconds.
    pub shortest_dcdt: f64,
    /// Average DCDT under the Balancing-Length policy, seconds.
    pub balancing_dcdt: f64,
}

/// Average post-warm-up DCDT over all targets for one policy and one cell.
pub fn average_dcdt_for_policy(
    policy: BreakEdgePolicy,
    base: ScenarioConfig,
    replicas: usize,
    horizon_s: f64,
) -> f64 {
    let planner = WTctp::new(policy);
    let rep = run_timing_sweep(&planner, base, replicas, horizon_s);
    rep.average(|o| DcdtSeries::from_outcome(o).average_dcdt(2))
        .unwrap_or(0.0)
}

/// Runs the Figure 9 sweep (grid cells in parallel on the worker pool).
pub fn run(params: &VipSweepParams) -> Vec<Fig9Cell> {
    let mut grid = Vec::new();
    for &vips in &params.vip_counts {
        for &weight in &params.vip_weights {
            grid.push((vips, weight));
        }
    }
    crate::par_grid(&grid, |&(vips, weight)| {
        let base = ScenarioConfig::paper_default()
            .with_targets(params.targets)
            .with_mules(params.mules)
            .with_weights(WeightSpec::UniformVips {
                count: vips,
                weight,
            })
            .with_seed(params.seed);
        let shortest = average_dcdt_for_policy(
            BreakEdgePolicy::ShortestLength,
            base,
            params.replicas,
            params.horizon_s,
        );
        let balancing = average_dcdt_for_policy(
            BreakEdgePolicy::BalancingLength,
            base,
            params.replicas,
            params.horizon_s,
        );
        Fig9Cell {
            vips,
            weight,
            shortest_dcdt: shortest,
            balancing_dcdt: balancing,
        }
    })
}

/// Formats the grid as a table.
pub fn table(cells: &[Fig9Cell]) -> TextTable {
    let mut t = TextTable::new(vec![
        "VIPs",
        "weight",
        "Shortest DCDT (s)",
        "Balancing DCDT (s)",
    ]);
    for c in cells {
        t.add_row(vec![
            c.vips.to_string(),
            c.weight.to_string(),
            format!("{:.1}", c.shortest_dcdt),
            format!("{:.1}", c.balancing_dcdt),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> VipSweepParams {
        VipSweepParams {
            targets: 12,
            mules: 1,
            vip_counts: vec![1, 3],
            vip_weights: vec![2, 4],
            replicas: 3,
            horizon_s: 200_000.0,
            seed: 3,
        }
    }

    #[test]
    fn grid_covers_every_combination() {
        let cells = run(&small_params());
        assert_eq!(cells.len(), 4);
        assert_eq!(table(&cells).len(), 4);
        assert!(cells.iter().all(|c| c.shortest_dcdt > 0.0));
        assert!(cells.iter().all(|c| c.balancing_dcdt > 0.0));
    }

    #[test]
    fn shortest_policy_dcdt_does_not_exceed_balancing() {
        let cells = run(&small_params());
        for c in &cells {
            assert!(
                c.shortest_dcdt <= c.balancing_dcdt * 1.05 + 1.0,
                "VIPs {} weight {}: shortest {} vs balancing {}",
                c.vips,
                c.weight,
                c.shortest_dcdt,
                c.balancing_dcdt
            );
        }
    }

    #[test]
    fn dcdt_grows_with_vip_weight() {
        let cells = run(&small_params());
        // Compare weight 2 vs weight 4 at the same VIP count.
        let get = |vips: usize, weight: u32| {
            cells
                .iter()
                .find(|c| c.vips == vips && c.weight == weight)
                .unwrap()
                .shortest_dcdt
        };
        assert!(
            get(3, 4) >= get(3, 2) * 0.9,
            "heavier VIPs lengthen the path"
        );
    }
}
