//! Figure 10 — standard deviation of the VIPs' visiting intervals for the
//! Shortest-Length vs Balancing-Length policies.
//!
//! The shape to reproduce: the Shortest-Length policy creates cycles of very
//! different lengths around each VIP, so the VIP's visiting intervals are
//! uneven and their SD grows quickly with the VIP count and weight; the
//! Balancing-Length policy keeps the cycles similar and its SD grows only
//! slightly.

use crate::fig9::VipSweepParams;
use crate::run_timing_sweep;
use mule_metrics::{IntervalReport, TextTable};
use mule_net::NodeId;
use mule_sim::SimulationOutcome;
use mule_workload::{Scenario, ScenarioConfig, WeightSpec};
use patrol_core::{BreakEdgePolicy, WTctp};

/// One cell of the Figure 10 grid.
#[derive(Debug, Clone, Copy)]
pub struct Fig10Cell {
    /// Number of VIPs.
    pub vips: usize,
    /// VIP weight.
    pub weight: u32,
    /// Average SD of the VIPs' visiting intervals, Shortest-Length policy.
    pub shortest_sd: f64,
    /// Average SD of the VIPs' visiting intervals, Balancing-Length policy.
    pub balancing_sd: f64,
}

/// Average per-VIP SD of visiting intervals for one outcome. The VIP set is
/// recomputed from the scenario configuration (same seed → same scenario),
/// because the outcome itself only stores node ids.
fn vip_sd(outcome: &SimulationOutcome, vip_ids: &[NodeId]) -> f64 {
    let report = IntervalReport::from_outcome(outcome);
    let sds: Vec<f64> = vip_ids
        .iter()
        .filter_map(|id| report.node_sd(*id))
        .collect();
    if sds.is_empty() {
        0.0
    } else {
        sds.iter().sum::<f64>() / sds.len() as f64
    }
}

fn vip_ids_of(scenario: &Scenario) -> Vec<NodeId> {
    scenario.field().vips().iter().map(|n| n.id).collect()
}

/// Average VIP-interval SD over the replicas of one (policy, cell) pair.
pub fn average_vip_sd_for_policy(
    policy: BreakEdgePolicy,
    base: ScenarioConfig,
    replicas: usize,
    horizon_s: f64,
) -> f64 {
    let planner = WTctp::new(policy);
    let rep = run_timing_sweep(&planner, base, replicas, horizon_s);
    if rep.is_empty() {
        return 0.0;
    }
    // Regenerate each replica's scenario to recover its VIP ids; the seed
    // fan is deterministic so the k-th outcome corresponds to the k-th
    // configuration.
    let configs = mule_workload::ReplicationPlan { base, replicas }.configurations();
    let mut total = 0.0;
    let mut count = 0usize;
    for (outcome, cfg) in rep.outcomes.iter().zip(configs.iter()) {
        let scenario = cfg.generate();
        let vips = vip_ids_of(&scenario);
        if vips.is_empty() {
            continue;
        }
        total += vip_sd(outcome, &vips);
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Runs the Figure 10 sweep (same grid as Figure 9, cells in parallel on
/// the worker pool).
pub fn run(params: &VipSweepParams) -> Vec<Fig10Cell> {
    let mut grid = Vec::new();
    for &vips in &params.vip_counts {
        for &weight in &params.vip_weights {
            grid.push((vips, weight));
        }
    }
    crate::par_grid(&grid, |&(vips, weight)| {
        let base = ScenarioConfig::paper_default()
            .with_targets(params.targets)
            .with_mules(params.mules)
            .with_weights(WeightSpec::UniformVips {
                count: vips,
                weight,
            })
            .with_seed(params.seed);
        let shortest = average_vip_sd_for_policy(
            BreakEdgePolicy::ShortestLength,
            base,
            params.replicas,
            params.horizon_s,
        );
        let balancing = average_vip_sd_for_policy(
            BreakEdgePolicy::BalancingLength,
            base,
            params.replicas,
            params.horizon_s,
        );
        Fig10Cell {
            vips,
            weight,
            shortest_sd: shortest,
            balancing_sd: balancing,
        }
    })
}

/// Formats the grid as a table.
pub fn table(cells: &[Fig10Cell]) -> TextTable {
    let mut t = TextTable::new(vec![
        "VIPs",
        "weight",
        "Shortest SD (s)",
        "Balancing SD (s)",
    ]);
    for c in cells {
        t.add_row(vec![
            c.vips.to_string(),
            c.weight.to_string(),
            format!("{:.1}", c.shortest_sd),
            format!("{:.1}", c.balancing_sd),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> VipSweepParams {
        VipSweepParams {
            targets: 12,
            mules: 1,
            vip_counts: vec![2],
            vip_weights: vec![3],
            replicas: 4,
            horizon_s: 250_000.0,
            seed: 5,
        }
    }

    #[test]
    fn grid_is_produced_and_formatted() {
        let cells = run(&small_params());
        assert_eq!(cells.len(), 1);
        assert_eq!(table(&cells).len(), 1);
    }

    #[test]
    fn balancing_policy_has_lower_or_equal_vip_sd() {
        let cells = run(&small_params());
        for c in &cells {
            assert!(
                c.balancing_sd <= c.shortest_sd + 1.0,
                "VIPs {} weight {}: balancing {} vs shortest {}",
                c.vips,
                c.weight,
                c.balancing_sd,
                c.shortest_sd
            );
        }
    }
}
