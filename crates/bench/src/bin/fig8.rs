//! Regenerates Figure 8: SD of visiting intervals, CHB vs TCTP, swept over
//! target and mule counts. `--quick` reduces the sweep; `--csv` emits CSV.

use mule_bench::fig8::{self, Fig8Params};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");

    let params = if quick {
        Fig8Params {
            target_counts: vec![10, 20],
            mule_counts: vec![2, 4, 8],
            replicas: 5,
            horizon_s: 60_000.0,
            ..Fig8Params::default()
        }
    } else {
        Fig8Params::default()
    };

    eprintln!(
        "Figure 8: SD of visiting interval, CHB vs TCTP ({} replicas per cell)",
        params.replicas
    );
    let cells = fig8::run(&params);
    let table = fig8::table(&cells);
    if csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.render());
    }
}
