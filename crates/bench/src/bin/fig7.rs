//! Regenerates Figure 7: DCDT per visit index for Random, Sweep, CHB and
//! TCTP. Pass `--quick` for a reduced sweep (fewer replicas, shorter
//! horizon) and `--csv` to emit CSV instead of an aligned table.

use mule_bench::fig7::{self, Fig7Params};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");

    let params = if quick {
        Fig7Params {
            replicas: 5,
            horizon_s: 60_000.0,
            ..Fig7Params::default()
        }
    } else {
        Fig7Params::default()
    };

    eprintln!(
        "Figure 7: DCDT vs visit index ({} targets, {} mules, {} replicas)",
        params.targets, params.mules, params.replicas
    );
    let series = fig7::run(&params);
    let table = fig7::table(&series);
    if csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.render());
    }
    eprintln!();
    for s in &series {
        eprintln!(
            "{:<8} steady-state oscillation: {:.1} s",
            s.planner,
            s.oscillation()
        );
    }
}
