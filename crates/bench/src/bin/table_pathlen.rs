//! Regenerates the path-length comparison (the §V text claim): circuit
//! length per construction heuristic, WPP overhead per policy, and the WRP
//! recharge-detour overhead. `--quick` reduces the sweep; `--csv` emits CSV.

use mule_bench::pathlen::{self, PathLenParams};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");

    let params = if quick {
        PathLenParams {
            target_counts: vec![10, 20, 30],
            replicas: 5,
            ..PathLenParams::default()
        }
    } else {
        PathLenParams::default()
    };

    let emit = |title: &str, table: &mule_metrics::TextTable| {
        eprintln!("{title}");
        if csv {
            print!("{}", table.to_csv());
        } else {
            print!("{}", table.render());
        }
        println!();
    };

    emit(
        "Hamiltonian-circuit length by construction heuristic (m)",
        &pathlen::tour_length_table(&params),
    );
    emit(
        "WPP length by break-edge policy (m)",
        &pathlen::wpp_overhead_table(&params),
    );
    emit(
        "WRP recharge-detour overhead (m)",
        &pathlen::wrp_overhead_table(&params),
    );
}
