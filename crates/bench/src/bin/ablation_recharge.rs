//! Recharge ablation: does the Eq. 4 schedule keep the fleet alive across a
//! battery-capacity sweep, and what does the detour cost? `--quick` reduces
//! the sweep; `--csv` emits CSV.

use mule_bench::ablations::{recharge_ablation, RechargeAblationParams};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");

    let params = if quick {
        RechargeAblationParams {
            battery_capacities_j: vec![40_000.0, 160_000.0],
            replicas: 4,
            horizon_s: 60_000.0,
            ..RechargeAblationParams::default()
        }
    } else {
        RechargeAblationParams::default()
    };

    eprintln!(
        "RW-TCTP recharge ablation ({} replicas per row)",
        params.replicas
    );
    let table = recharge_ablation(&params);
    if csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.render());
    }
}
