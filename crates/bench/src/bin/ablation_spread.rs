//! Start-point-spreading ablation: B-TCTP with and without its phase-2
//! location initialisation. `--quick` reduces the sweep; `--csv` emits CSV.

use mule_bench::ablations::{spread_ablation, SpreadAblationParams};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");

    let params = if quick {
        SpreadAblationParams {
            mule_counts: vec![2, 6],
            replicas: 4,
            horizon_s: 50_000.0,
            ..SpreadAblationParams::default()
        }
    } else {
        SpreadAblationParams::default()
    };

    eprintln!(
        "B-TCTP start-point-spreading ablation ({} replicas per row)",
        params.replicas
    );
    let table = spread_ablation(&params);
    if csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.render());
    }
}
