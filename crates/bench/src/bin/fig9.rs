//! Regenerates Figure 9: average DCDT for the Shortest-Length vs
//! Balancing-Length policies over the VIP count × weight grid. `--quick`
//! reduces the sweep; `--csv` emits CSV.

use mule_bench::fig9::{self, VipSweepParams};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");

    let params = if quick {
        VipSweepParams {
            vip_counts: vec![1, 4, 8],
            vip_weights: vec![2, 4],
            replicas: 5,
            horizon_s: 80_000.0,
            ..VipSweepParams::default()
        }
    } else {
        VipSweepParams::default()
    };

    eprintln!(
        "Figure 9: average DCDT vs #VIP × weight ({} targets, {} replicas per cell)",
        params.targets, params.replicas
    );
    let cells = fig9::run(&params);
    let table = fig9::table(&cells);
    if csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.render());
    }
}
