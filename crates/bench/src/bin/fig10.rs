//! Regenerates Figure 10: SD of the VIPs' visiting intervals for the
//! Shortest-Length vs Balancing-Length policies. `--quick` reduces the
//! sweep; `--csv` emits CSV.

use mule_bench::fig10;
use mule_bench::fig9::VipSweepParams;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");

    let params = if quick {
        VipSweepParams {
            vip_counts: vec![1, 4, 8],
            vip_weights: vec![2, 4],
            replicas: 5,
            horizon_s: 80_000.0,
            ..VipSweepParams::default()
        }
    } else {
        VipSweepParams::default()
    };

    eprintln!(
        "Figure 10: average SD of VIP visiting intervals vs #VIP × weight ({} replicas per cell)",
        params.replicas
    );
    let cells = fig10::run(&params);
    let table = fig10::table(&cells);
    if csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.render());
    }
}
