//! The tracked road-routing benchmark behind `patrolctl bench-routes`.
//!
//! Measures point-to-point query throughput of the three routing flavours
//! — plain Dijkstra, A* with the Euclidean heuristic, and ALT (landmark)
//! A* — on seeded grid road networks, and serialises the result as the
//! `BENCH_routes.json` artefact the repo tracks from the road-metric PR
//! onward. Alongside wall time the report keeps the mean settled-node
//! count per query, which is machine-independent and explains *why* the
//! speedups happen.
//!
//! The tracked claim (gated in CI via `--min-speedup`): at 10 000 nodes,
//! ALT answers point-to-point queries at least 3× faster than plain
//! Dijkstra. During every timed run the three flavours' costs are
//! cross-checked — a benchmark that silently computed different answers
//! would be worthless.

use mule_geom::BoundingBox;
use mule_metrics::TextTable;
use mule_road::{astar, astar_alt, dijkstra_to, grid_with_deletions, Landmarks, RoadGraph};
use std::time::Instant;

/// Parameters of one `bench-routes` run.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteBenchParams {
    /// Approximate node counts of the benched networks (the grid uses
    /// `⌈√n⌉ × ⌈√n⌉` intersections before deletions).
    pub sizes: Vec<usize>,
    /// Seed of the deterministic networks and query pairs.
    pub seed: u64,
    /// Point-to-point queries timed per flavour.
    pub queries: usize,
    /// ALT landmarks.
    pub landmarks: usize,
}

impl Default for RouteBenchParams {
    fn default() -> Self {
        RouteBenchParams {
            sizes: vec![1_000, 10_000],
            seed: 42,
            queries: 200,
            landmarks: 8,
        }
    }
}

/// One benched network size.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteBenchRow {
    /// Actual node count after deletions and component restriction.
    pub nodes: usize,
    /// Undirected edge count.
    pub edges: usize,
    /// ALT preprocessing wall clock (landmark selection), milliseconds.
    pub preprocess_ms: f64,
    /// Mean Dijkstra query time, microseconds.
    pub dijkstra_us: f64,
    /// Mean A* query time, microseconds.
    pub astar_us: f64,
    /// Mean ALT query time, microseconds.
    pub alt_us: f64,
    /// Mean settled nodes per Dijkstra query.
    pub dijkstra_settled: f64,
    /// Mean settled nodes per A* query.
    pub astar_settled: f64,
    /// Mean settled nodes per ALT query.
    pub alt_settled: f64,
}

impl RouteBenchRow {
    /// Dijkstra time over A* time.
    pub fn astar_speedup(&self) -> f64 {
        safe_ratio(self.dijkstra_us, self.astar_us)
    }

    /// Dijkstra time over ALT time — the tracked headline number.
    pub fn alt_speedup(&self) -> f64 {
        safe_ratio(self.dijkstra_us, self.alt_us)
    }
}

fn safe_ratio(a: f64, b: f64) -> f64 {
    if b > 0.0 {
        a / b
    } else {
        f64::INFINITY
    }
}

/// The full benchmark result.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteBenchReport {
    /// Parameters the report was generated with.
    pub params: RouteBenchParams,
    /// One row per benched size, in input order.
    pub rows: Vec<RouteBenchRow>,
}

impl RouteBenchReport {
    /// The ALT speedup of the largest benched network — the value the
    /// `--min-speedup` regression gate inspects.
    pub fn largest_alt_speedup(&self) -> Option<f64> {
        self.rows
            .iter()
            .max_by_key(|r| r.nodes)
            .map(RouteBenchRow::alt_speedup)
    }

    /// Renders the human-readable summary table.
    pub fn to_table(&self) -> TextTable {
        let mut table = TextTable::new(vec![
            "nodes",
            "edges",
            "dijkstra (µs)",
            "A* (µs)",
            "ALT (µs)",
            "A* speedup",
            "ALT speedup",
            "settled D/A*/ALT",
        ]);
        for row in &self.rows {
            table.add_row(vec![
                row.nodes.to_string(),
                row.edges.to_string(),
                format!("{:.1}", row.dijkstra_us),
                format!("{:.1}", row.astar_us),
                format!("{:.1}", row.alt_us),
                format!("{:.1}×", row.astar_speedup()),
                format!("{:.1}×", row.alt_speedup()),
                format!(
                    "{:.0}/{:.0}/{:.0}",
                    row.dijkstra_settled, row.astar_settled, row.alt_settled
                ),
            ]);
        }
        table
    }

    /// Serialises the report as the tracked `BENCH_routes.json` document
    /// (hand-written flat JSON, like `BENCH_tours.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"bench-routes/v1\",\n");
        out.push_str(&format!("  \"seed\": {},\n", self.params.seed));
        out.push_str(&format!("  \"queries\": {},\n", self.params.queries));
        out.push_str(&format!("  \"landmarks\": {},\n", self.params.landmarks));
        out.push_str("  \"sizes\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"nodes\": {}", row.nodes));
            out.push_str(&format!(", \"edges\": {}", row.edges));
            out.push_str(&format!(", \"preprocess_ms\": {:.3}", row.preprocess_ms));
            out.push_str(&format!(", \"dijkstra_us\": {:.3}", row.dijkstra_us));
            out.push_str(&format!(", \"astar_us\": {:.3}", row.astar_us));
            out.push_str(&format!(", \"alt_us\": {:.3}", row.alt_us));
            out.push_str(&format!(", \"astar_speedup\": {:.2}", row.astar_speedup()));
            out.push_str(&format!(", \"alt_speedup\": {:.2}", row.alt_speedup()));
            out.push_str(&format!(
                ", \"settled\": {{\"dijkstra\": {:.1}, \"astar\": {:.1}, \"alt\": {:.1}}}",
                row.dijkstra_settled, row.astar_settled, row.alt_settled
            ));
            out.push('}');
            if i + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Deterministic query endpoints spread over the node range (no RNG state
/// shared with the generators, so adding queries never changes networks).
fn query_pairs(node_count: usize, queries: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut state = seed | 1;
    let mut next = move || {
        // SplitMix64 step, local to the query stream.
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..queries)
        .map(|_| {
            (
                (next() % node_count as u64) as u32,
                (next() % node_count as u64) as u32,
            )
        })
        .collect()
}

/// Times one flavour over all query pairs; returns (mean µs, mean settled)
/// and cross-checks each cost against `expected` (from Dijkstra).
fn time_flavour<F: Fn(u32, u32) -> Option<mule_road::Route>>(
    pairs: &[(u32, u32)],
    expected: Option<&[f64]>,
    run: F,
) -> (f64, f64, Vec<f64>) {
    let mut costs = Vec::with_capacity(pairs.len());
    let mut settled_total = 0usize;
    let start = Instant::now();
    for &(s, t) in pairs {
        let route = run(s, t).expect("benchmark networks are connected");
        settled_total += route.settled;
        costs.push(route.cost);
    }
    let elapsed_us = start.elapsed().as_secs_f64() * 1e6;
    if let Some(expected) = expected {
        for (got, want) in costs.iter().zip(expected) {
            assert!(
                (got - want).abs() < 1e-6,
                "flavours disagree on a query cost: {got} vs {want}"
            );
        }
    }
    let n = pairs.len().max(1) as f64;
    (elapsed_us / n, settled_total as f64 / n, costs)
}

/// Builds the benchmark network for a requested size: a square grid with
/// 15% deleted edges over a field scaled to keep ~70 m blocks.
pub fn bench_network(size: usize, seed: u64) -> RoadGraph {
    let side = (size.max(4) as f64).sqrt().ceil() as usize;
    let bounds = BoundingBox::square(side as f64 * 70.0);
    grid_with_deletions(&bounds, side, side, 0.15, seed).graph
}

/// Runs the routing benchmark over the configured sizes.
pub fn run_route_bench(params: &RouteBenchParams) -> RouteBenchReport {
    let rows = params
        .sizes
        .iter()
        .map(|&size| {
            let graph = bench_network(size, params.seed);
            let pairs = query_pairs(graph.len(), params.queries.max(1), params.seed);

            let pre_start = Instant::now();
            let landmarks = Landmarks::select(&graph, params.landmarks.max(1));
            let preprocess_ms = pre_start.elapsed().as_secs_f64() * 1000.0;

            let (dijkstra_us, dijkstra_settled, costs) =
                time_flavour(&pairs, None, |s, t| dijkstra_to(&graph, s, t));
            let (astar_us, astar_settled, _) =
                time_flavour(&pairs, Some(&costs), |s, t| astar(&graph, s, t));
            let (alt_us, alt_settled, _) = time_flavour(&pairs, Some(&costs), |s, t| {
                astar_alt(&graph, &landmarks, s, t)
            });

            RouteBenchRow {
                nodes: graph.len(),
                edges: graph.edge_count(),
                preprocess_ms,
                dijkstra_us,
                astar_us,
                alt_us,
                dijkstra_settled,
                astar_settled,
                alt_settled,
            }
        })
        .collect();

    RouteBenchReport {
        params: params.clone(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> RouteBenchParams {
        RouteBenchParams {
            sizes: vec![100, 400],
            seed: 7,
            queries: 40,
            landmarks: 4,
        }
    }

    #[test]
    fn report_has_one_row_per_size_with_positive_measurements() {
        let report = run_route_bench(&quick_params());
        assert_eq!(report.rows.len(), 2);
        for row in &report.rows {
            assert!(row.nodes > 50);
            assert!(row.edges > row.nodes / 2);
            assert!(row.dijkstra_us > 0.0);
            assert!(row.astar_us > 0.0);
            assert!(row.alt_us > 0.0);
            assert!(row.dijkstra_settled >= row.astar_settled);
            assert!(row.astar_settled >= 1.0);
        }
        assert!(report.largest_alt_speedup().is_some());
    }

    #[test]
    fn alt_settles_fewer_nodes_than_astar_and_dijkstra() {
        // Wall-clock is machine noise at test sizes; the settled-node
        // counts are deterministic and must already show the ordering the
        // tracked artefact claims.
        let report = run_route_bench(&quick_params());
        let big = report.rows.iter().max_by_key(|r| r.nodes).unwrap();
        assert!(
            big.alt_settled < big.astar_settled,
            "ALT ({}) must search less than A* ({})",
            big.alt_settled,
            big.astar_settled
        );
        assert!(
            big.alt_settled * 2.0 < big.dijkstra_settled,
            "ALT ({}) must search far less than Dijkstra ({})",
            big.alt_settled,
            big.dijkstra_settled
        );
    }

    #[test]
    fn benchmark_is_deterministic_modulo_timing() {
        let a = run_route_bench(&quick_params());
        let b = run_route_bench(&quick_params());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.nodes, y.nodes);
            assert_eq!(x.edges, y.edges);
            assert_eq!(x.dijkstra_settled, y.dijkstra_settled);
            assert_eq!(x.astar_settled, y.astar_settled);
            assert_eq!(x.alt_settled, y.alt_settled);
        }
    }

    #[test]
    fn json_is_flat_and_well_formed() {
        let report = run_route_bench(&quick_params());
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"bench-routes/v1\""));
        assert!(json.contains("\"alt_speedup\""));
        assert!(json.contains("\"settled\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }

    #[test]
    fn table_renders_all_columns() {
        let report = run_route_bench(&quick_params());
        let rendered = report.to_table().render();
        assert!(rendered.contains("ALT speedup"));
        assert!(rendered.contains("settled D/A*/ALT"));
    }
}
