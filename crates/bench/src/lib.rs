//! # mule-bench
//!
//! The figure-regeneration harness: one module per figure of the paper's
//! evaluation (§V), each exposing a function that runs the full sweep and
//! returns a [`mule_metrics::TextTable`] with the same series the paper
//! plots. The binaries in `src/bin/` print these tables; the criterion
//! benches in `benches/` time the underlying computations.
//!
//! | Module | Paper figure | Binary |
//! |--------|--------------|--------|
//! | [`fig7`]  | Fig. 7 — DCDT vs. visit index, Random / Sweep / CHB / TCTP | `cargo run -p mule-bench --bin fig7` |
//! | [`fig8`]  | Fig. 8 — SD of visiting interval vs. #targets × #DMs, CHB vs TCTP | `cargo run -p mule-bench --bin fig8` |
//! | [`fig9`]  | Fig. 9 — average DCDT vs. #VIPs × weight, Shortest vs Balancing | `cargo run -p mule-bench --bin fig9` |
//! | [`fig10`] | Fig. 10 — average SD vs. #VIPs × weight, Shortest vs Balancing | `cargo run -p mule-bench --bin fig10` |
//! | [`pathlen`] | §V text claim: path-length comparison | `cargo run -p mule-bench --bin table_pathlen` |
//! | [`ablations`] | RW-TCTP recharge behaviour, start-point spreading | `cargo run -p mule-bench --bin ablation_recharge`, `ablation_spread` |
//! | [`tourbench`] | tour-engine scaling (exact vs. candidate lists) | `patrolctl bench-tours` |
//! | [`scalebench`] | memory-scale construction (matrix-free vs. matrix-backed) | `patrolctl bench-scale` |
//!
//! Every sweep averages over a seeded replication fan (the paper uses 20
//! random topologies per point); the replica count is a parameter so the
//! criterion benches can use a smaller fan.
//!
//! ## Parallel execution
//!
//! Every figure grid runs its cells on the `mule-par` worker pool via
//! [`par_grid`], and each cell's replication fan additionally goes through
//! the parallel `rayon` shim inside [`mule_sim::run_replicated`]. The pool
//! serialises nested parallelism (inner sweeps run inline on the outer
//! workers), so the thread count stays bounded by one pool while both
//! wide grids *and* deep single-cell fans use every core. Cell results are
//! reassembled in grid order, so the emitted tables are byte-identical to
//! a sequential run (`MULE_PAR_WORKERS=1`).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod ablations;
pub mod fig10;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod pathlen;
pub mod routebench;
pub mod scalebench;
pub mod tourbench;

use mule_sim::{run_replicated, ReplicatedOutcome, SimulationConfig};
use mule_workload::{ReplicationPlan, ScenarioConfig};
use patrol_core::Planner;

/// Number of replicas the paper averages over.
pub const PAPER_REPLICAS: usize = 20;

/// Runs `cell` over every grid point on the `mule-par` worker pool,
/// returning the results in input order (bit-identical to the sequential
/// loop it replaces). The closure must be a pure function of its cell.
pub fn par_grid<T, R, F>(cells: &[T], cell: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    mule_par::parallel_map_slice(cells, cell)
}

/// Runs `planner` over `replicas` seeded topologies derived from `base`,
/// simulating each for `horizon_s` seconds without energy accounting (the
/// timing-only model used by the DCDT / SD figures).
pub fn run_timing_sweep<P: Planner + Sync + ?Sized>(
    planner: &P,
    base: ScenarioConfig,
    replicas: usize,
    horizon_s: f64,
) -> ReplicatedOutcome {
    let plan = ReplicationPlan { base, replicas };
    run_replicated(
        planner,
        &plan,
        &SimulationConfig::timing_only().with_horizon(horizon_s),
        horizon_s,
    )
}

/// Runs `planner` with full energy accounting (used by the recharge
/// ablation).
pub fn run_energy_sweep<P: Planner + Sync + ?Sized>(
    planner: &P,
    base: ScenarioConfig,
    replicas: usize,
    config: &SimulationConfig,
    horizon_s: f64,
) -> ReplicatedOutcome {
    let plan = ReplicationPlan { base, replicas };
    run_replicated(planner, &plan, config, horizon_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use patrol_core::BTctp;

    #[test]
    fn timing_sweep_runs_all_replicas() {
        let rep = run_timing_sweep(
            &BTctp::new(),
            ScenarioConfig::paper_default().with_targets(6),
            3,
            5_000.0,
        );
        assert_eq!(rep.len(), 3);
        assert!(rep.failures.is_empty());
    }

    #[test]
    fn paper_replica_constant_matches_section_5_1() {
        assert_eq!(PAPER_REPLICAS, 20);
    }
}
