//! Figure 8 — standard deviation of visiting intervals for CHB vs TCTP.
//!
//! The paper sweeps the number of targets and the number of data mules and
//! reports, for each cell, the average per-target SD of the visiting
//! intervals. TCTP stays at (numerically) zero; CHB's SD grows with the
//! number of mules because the bunched mules produce alternating short and
//! long gaps.

use crate::run_timing_sweep;
use mule_metrics::{IntervalReport, TextTable};
use mule_workload::ScenarioConfig;
use patrol_core::baselines::ChbPlanner;
use patrol_core::{BTctp, Planner};

/// Parameters of the Figure 8 sweep.
#[derive(Debug, Clone)]
pub struct Fig8Params {
    /// Target counts to sweep (paper: 10–40).
    pub target_counts: Vec<usize>,
    /// Mule counts to sweep (paper: 2–10).
    pub mule_counts: Vec<usize>,
    /// Replicas per cell.
    pub replicas: usize,
    /// Horizon per replica, seconds.
    pub horizon_s: f64,
    /// Base seed.
    pub seed: u64,
}

impl Default for Fig8Params {
    fn default() -> Self {
        Fig8Params {
            target_counts: vec![10, 20, 30, 40],
            mule_counts: vec![2, 4, 6, 8, 10],
            replicas: crate::PAPER_REPLICAS,
            horizon_s: 100_000.0,
            seed: 8,
        }
    }
}

/// One cell of the Figure 8 grid.
#[derive(Debug, Clone, Copy)]
pub struct Fig8Cell {
    /// Number of targets in this cell.
    pub targets: usize,
    /// Number of mules in this cell.
    pub mules: usize,
    /// Average per-target SD for CHB.
    pub chb_sd: f64,
    /// Average per-target SD for TCTP (B-TCTP).
    pub tctp_sd: f64,
}

fn average_sd<P: Planner + Sync>(
    planner: &P,
    base: ScenarioConfig,
    replicas: usize,
    horizon_s: f64,
) -> f64 {
    let rep = run_timing_sweep(planner, base, replicas, horizon_s);
    rep.average(|o| IntervalReport::from_outcome(o).average_sd())
        .unwrap_or(0.0)
}

/// Runs the Figure 8 sweep (grid cells in parallel on the worker pool).
pub fn run(params: &Fig8Params) -> Vec<Fig8Cell> {
    let mut grid = Vec::new();
    for &targets in &params.target_counts {
        for &mules in &params.mule_counts {
            grid.push((targets, mules));
        }
    }
    crate::par_grid(&grid, |&(targets, mules)| {
        let base = ScenarioConfig::paper_default()
            .with_targets(targets)
            .with_mules(mules)
            .with_seed(params.seed);
        let chb_sd = average_sd(&ChbPlanner::new(), base, params.replicas, params.horizon_s);
        let tctp_sd = average_sd(&BTctp::new(), base, params.replicas, params.horizon_s);
        Fig8Cell {
            targets,
            mules,
            chb_sd,
            tctp_sd,
        }
    })
}

/// Formats the grid as a table with one row per (targets, mules) cell.
pub fn table(cells: &[Fig8Cell]) -> TextTable {
    let mut t = TextTable::new(vec!["targets", "mules", "CHB SD (s)", "TCTP SD (s)"]);
    for c in cells {
        t.add_row(vec![
            c.targets.to_string(),
            c.mules.to_string(),
            format!("{:.2}", c.chb_sd),
            format!("{:.2}", c.tctp_sd),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> Fig8Params {
        Fig8Params {
            target_counts: vec![8],
            mule_counts: vec![2, 4],
            replicas: 3,
            horizon_s: 60_000.0,
            seed: 2,
        }
    }

    #[test]
    fn grid_has_one_cell_per_parameter_combination() {
        let cells = run(&small_params());
        assert_eq!(cells.len(), 2);
        assert_eq!(table(&cells).len(), 2);
    }

    #[test]
    fn tctp_sd_is_much_smaller_than_chb_sd() {
        // The paper's claim: TCTP SD ≈ 0, CHB SD grows with the mule count.
        let cells = run(&small_params());
        for c in &cells {
            assert!(
                c.tctp_sd <= c.chb_sd + 1e-6,
                "targets {} mules {}: TCTP {} vs CHB {}",
                c.targets,
                c.mules,
                c.tctp_sd,
                c.chb_sd
            );
            assert!(
                c.tctp_sd < 5.0,
                "TCTP SD should be near zero, got {}",
                c.tctp_sd
            );
        }
        // With more than one mule CHB bunches them and its SD is clearly
        // positive.
        assert!(cells.iter().any(|c| c.chb_sd > 10.0));
    }
}
