//! Figure 7 — Data Collection Delay Time per visit index.
//!
//! The paper plots the DCDT of the targets over the first ~40 visits for
//! Random, Sweep, CHB and TCTP (B-TCTP). The qualitative shape to
//! reproduce: Random fluctuates wildly, Sweep and CHB oscillate
//! periodically, TCTP settles to a flat constant.

use crate::run_timing_sweep;
use mule_metrics::{DcdtSeries, TextTable};
use mule_sim::ReplicatedOutcome;
use mule_workload::ScenarioConfig;
use patrol_core::baselines::{ChbPlanner, RandomPlanner, SweepPlanner};
use patrol_core::{BTctp, Planner};

/// Parameters of the Figure 7 sweep.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Params {
    /// Number of targets (paper default 10).
    pub targets: usize,
    /// Number of data mules (paper default 4).
    pub mules: usize,
    /// Number of visit indices to report (paper plots ~40).
    pub visit_indices: usize,
    /// Replicas to average over.
    pub replicas: usize,
    /// Simulation horizon per replica, seconds.
    pub horizon_s: f64,
    /// Base seed of the replication fan.
    pub seed: u64,
}

impl Default for Fig7Params {
    fn default() -> Self {
        Fig7Params {
            targets: 10,
            mules: 4,
            visit_indices: 40,
            replicas: crate::PAPER_REPLICAS,
            horizon_s: 120_000.0,
            seed: 7,
        }
    }
}

/// One planner's averaged DCDT series.
#[derive(Debug, Clone)]
pub struct Fig7Series {
    /// Planner name.
    pub planner: String,
    /// Average DCDT at visit index `k` (seconds), `visit_indices` entries.
    pub dcdt_by_visit: Vec<f64>,
}

impl Fig7Series {
    /// Largest minus smallest DCDT over the reported indices — a proxy for
    /// how much the series oscillates (TCTP should be near zero).
    pub fn oscillation(&self) -> f64 {
        let tail: Vec<f64> = self.dcdt_by_visit.iter().copied().skip(3).collect();
        if tail.is_empty() {
            return 0.0;
        }
        let max = tail.iter().cloned().fold(f64::MIN, f64::max);
        let min = tail.iter().cloned().fold(f64::MAX, f64::min);
        max - min
    }
}

fn averaged_series(rep: &ReplicatedOutcome, visit_indices: usize) -> Vec<f64> {
    let mut sums = vec![0.0; visit_indices];
    let mut counts = vec![0usize; visit_indices];
    for outcome in &rep.outcomes {
        let series = DcdtSeries::from_outcome(outcome).average_by_visit_index();
        for (k, value) in series.into_iter().take(visit_indices).enumerate() {
            sums[k] += value;
            counts[k] += 1;
        }
    }
    sums.iter()
        .zip(counts.iter())
        .map(|(s, c)| if *c == 0 { 0.0 } else { s / *c as f64 })
        .collect()
}

/// Runs the Figure 7 sweep and returns one series per planner.
pub fn run(params: &Fig7Params) -> Vec<Fig7Series> {
    let base = ScenarioConfig::paper_default()
        .with_targets(params.targets)
        .with_mules(params.mules)
        .with_seed(params.seed);

    let planners: Vec<(&str, Box<dyn Planner + Sync>)> = vec![
        ("Random", Box::new(RandomPlanner::new())),
        ("Sweep", Box::new(SweepPlanner::new())),
        ("CHB", Box::new(ChbPlanner::new())),
        ("TCTP", Box::new(BTctp::new())),
    ];

    // One pool task per planner; each task's replication fan would go
    // parallel too, but nested maps run inline on the outer workers.
    crate::par_grid(&planners, |(name, planner)| {
        let rep = run_timing_sweep(planner.as_ref(), base, params.replicas, params.horizon_s);
        Fig7Series {
            planner: name.to_string(),
            dcdt_by_visit: averaged_series(&rep, params.visit_indices),
        }
    })
}

/// Formats the Figure 7 series as a table: one row per visit index, one
/// column per planner.
pub fn table(series: &[Fig7Series]) -> TextTable {
    let mut header = vec!["visit".to_string()];
    header.extend(series.iter().map(|s| s.planner.clone()));
    let mut table = TextTable::new(header);
    let rows = series
        .iter()
        .map(|s| s.dcdt_by_visit.len())
        .max()
        .unwrap_or(0);
    for k in 0..rows {
        let mut row = vec![k.to_string()];
        for s in series {
            row.push(format!(
                "{:.1}",
                s.dcdt_by_visit.get(k).copied().unwrap_or(0.0)
            ));
        }
        table.add_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> Fig7Params {
        Fig7Params {
            targets: 8,
            mules: 3,
            visit_indices: 10,
            replicas: 3,
            horizon_s: 40_000.0,
            seed: 1,
        }
    }

    #[test]
    fn produces_one_series_per_planner_with_requested_length() {
        let series = run(&small_params());
        assert_eq!(series.len(), 4);
        for s in &series {
            assert_eq!(s.dcdt_by_visit.len(), 10);
            assert!(
                s.dcdt_by_visit.iter().skip(1).any(|&v| v > 0.0),
                "{}",
                s.planner
            );
        }
        let t = table(&series);
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn tctp_oscillates_less_than_random() {
        let series = run(&small_params());
        let get = |name: &str| {
            series
                .iter()
                .find(|s| s.planner == name)
                .expect("series present")
                .oscillation()
        };
        assert!(
            get("TCTP") <= get("Random"),
            "TCTP oscillation {} should not exceed Random {}",
            get("TCTP"),
            get("Random")
        );
    }
}
