//! The tracked memory-scale benchmark behind `patrolctl bench-scale`.
//!
//! Measures circuit **construction** at large instance sizes in two
//! flavours — the matrix-free candidate pipeline
//! ([`mule_graph::construct_circuit_with`], which never allocates `O(n²)`
//! state) against the dense matrix-backed pipeline
//! ([`mule_graph::construct_circuit_matrix_backed`]) — and records, next
//! to wall-clock, the memory figures the ROADMAP's million-target item is
//! gated on: allocation count and bytes (from the armed
//! [`mule_obs::alloc`] tallies), the live-bytes high-water mark, peak
//! process RSS, and bytes per target.
//!
//! Timing follows the `bench-tours` convention: minimum over disarmed,
//! untraced samples; the allocation figures come from one extra **armed**
//! run per flavour after the timed samples, so instrumentation never
//! pollutes the timed numbers. The matrix flavour is capped at
//! [`ScaleBenchParams::matrix_cap`] points (the `n²` doubles stop fitting
//! long before 100k targets — which is the point of the benchmark); above
//! the cap its columns are explicit `null`s in the JSON.
//!
//! Determinism contract: `alloc_count` is a pure function of the seeded
//! workload; every bytes/peak/RSS figure is machine-dependent and never
//! pinned (`docs/DETERMINISM.md`, "Memory").

use mule_graph::{construct_circuit_matrix_backed, construct_circuit_with, ChbConfig, SearchMode};
use mule_metrics::TextTable;
use mule_workload::layout::bench_layout;
use std::time::Instant;

/// Parameters of one `bench-scale` run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleBenchParams {
    /// Instance sizes (target counts) to bench.
    pub sizes: Vec<usize>,
    /// Seed of the deterministic topologies.
    pub seed: u64,
    /// Candidate-list width for both pipelines.
    pub k: usize,
    /// Largest size at which the matrix-backed flavour still runs; the
    /// dense matrix is `8·n²` bytes (800 MB at 10k, 80 GB at 100k), so
    /// above the cap its columns are explicit `null`s.
    pub matrix_cap: usize,
    /// Timed repetitions per measurement (minimum reported).
    pub samples: usize,
}

impl Default for ScaleBenchParams {
    fn default() -> Self {
        ScaleBenchParams {
            sizes: vec![10_000, 100_000],
            seed: 42,
            k: mule_graph::chb::DEFAULT_CANDIDATES_K,
            matrix_cap: 10_000,
            samples: 3,
        }
    }
}

/// Memory and wall-clock figures for one flavour at one size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlavourStats {
    /// Construction wall clock, milliseconds (min over samples, measured
    /// disarmed and untraced).
    pub construction_ms: f64,
    /// Tour length, metres (deterministic).
    pub tour_len: f64,
    /// Allocation events during one armed construction run.
    pub alloc_count: u64,
    /// Bytes allocated during the same run.
    pub alloc_bytes: u64,
    /// Live-bytes high-water mark above the pre-run live figure.
    pub peak_live_bytes: u64,
    /// Process peak RSS (kB) sampled right after the armed run; `None`
    /// where procfs is unavailable.
    pub peak_rss_kb: Option<u64>,
}

impl FlavourStats {
    /// Peak live bytes per target — the scaling figure the regression
    /// gate (`--max-bytes-per-target`) pins for the matrix-free flavour.
    pub fn bytes_per_target(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.peak_live_bytes as f64 / n as f64
        }
    }
}

/// One benched instance size.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleBenchRow {
    /// Number of targets.
    pub n: usize,
    /// Matrix-free candidate pipeline figures.
    pub matrix_free: FlavourStats,
    /// Matrix-backed pipeline figures (`None` above `matrix_cap`).
    pub matrix: Option<FlavourStats>,
}

impl ScaleBenchRow {
    /// Matrix-free tour length over matrix-backed tour length (`None`
    /// when the matrix flavour was capped). ~1.0 means the matrix-free
    /// pipeline loses no quality by skipping the `O(n²)` state.
    pub fn len_ratio(&self) -> Option<f64> {
        self.matrix.map(|m| {
            if m.tour_len > 0.0 {
                self.matrix_free.tour_len / m.tour_len
            } else {
                1.0
            }
        })
    }
}

/// The full benchmark result.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleBenchReport {
    /// Parameters the report was generated with.
    pub params: ScaleBenchParams,
    /// One row per benched size, in input order.
    pub rows: Vec<ScaleBenchRow>,
}

impl ScaleBenchReport {
    /// Largest matrix-free bytes-per-target figure across rows.
    pub fn max_bytes_per_target(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.matrix_free.bytes_per_target(r.n))
            .fold(0.0, f64::max)
    }

    /// Largest tour-length ratio across rows where the matrix ran.
    pub fn max_len_ratio(&self) -> Option<f64> {
        self.rows
            .iter()
            .filter_map(ScaleBenchRow::len_ratio)
            .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))))
    }

    /// Renders the human-readable summary table.
    pub fn to_table(&self) -> TextTable {
        let mut table = TextTable::new(vec![
            "n",
            "free (ms)",
            "matrix (ms)",
            "free peak (MB)",
            "matrix peak (MB)",
            "bytes/target",
            "peak RSS (MB)",
            "length ratio",
        ]);
        let na = "-".to_string();
        let mb = |bytes: u64| format!("{:.1}", bytes as f64 / (1024.0 * 1024.0));
        for row in &self.rows {
            table.add_row(vec![
                row.n.to_string(),
                format!("{:.2}", row.matrix_free.construction_ms),
                row.matrix
                    .map(|m| format!("{:.2}", m.construction_ms))
                    .unwrap_or_else(|| na.clone()),
                mb(row.matrix_free.peak_live_bytes),
                row.matrix
                    .map(|m| mb(m.peak_live_bytes))
                    .unwrap_or_else(|| na.clone()),
                format!("{:.0}", row.matrix_free.bytes_per_target(row.n)),
                row.matrix_free
                    .peak_rss_kb
                    .map(|kb| format!("{:.1}", kb as f64 / 1024.0))
                    .unwrap_or_else(|| na.clone()),
                row.len_ratio()
                    .map(|r| format!("{r:.4}"))
                    .unwrap_or_else(|| na.clone()),
            ]);
        }
        table
    }

    /// Serialises the report as the tracked `BENCH_scale.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"bench-scale/v1\",\n");
        out.push_str(&format!("  \"seed\": {},\n", self.params.seed));
        out.push_str(&format!("  \"k\": {},\n", self.params.k));
        out.push_str(&format!("  \"matrix_cap\": {},\n", self.params.matrix_cap));
        out.push_str(&format!("  \"samples\": {},\n", self.params.samples));
        out.push_str("  \"sizes\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let free = &row.matrix_free;
            out.push_str("    {");
            out.push_str(&format!("\"n\": {}", row.n));
            out.push_str(&format!(
                ", \"construction_ms\": {:.3}",
                free.construction_ms
            ));
            out.push_str(&format!(
                ", \"peak_rss_kb\": {}",
                json_opt_u64(free.peak_rss_kb)
            ));
            out.push_str(&format!(", \"alloc_count\": {}", free.alloc_count));
            out.push_str(&format!(", \"alloc_bytes\": {}", free.alloc_bytes));
            out.push_str(&format!(", \"peak_live_bytes\": {}", free.peak_live_bytes));
            out.push_str(&format!(
                ", \"bytes_per_target\": {:.1}",
                free.bytes_per_target(row.n)
            ));
            out.push_str(&format!(
                ", \"matrix_construction_ms\": {}",
                json_opt(row.matrix.map(|m| m.construction_ms), 3)
            ));
            out.push_str(&format!(
                ", \"matrix_alloc_bytes\": {}",
                json_opt_u64(row.matrix.map(|m| m.alloc_bytes))
            ));
            out.push_str(&format!(
                ", \"matrix_peak_live_bytes\": {}",
                json_opt_u64(row.matrix.map(|m| m.peak_live_bytes))
            ));
            out.push_str(&format!(
                ", \"matrix_bytes_per_target\": {}",
                json_opt(row.matrix.map(|m| m.bytes_per_target(row.n)), 1)
            ));
            out.push_str(&format!(
                ", \"len_ratio\": {}",
                json_opt(row.len_ratio(), 6)
            ));
            out.push('}');
            if i + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn json_opt(value: Option<f64>, decimals: usize) -> String {
    match value {
        Some(v) if v.is_finite() => format!("{v:.decimals$}"),
        _ => "null".to_string(),
    }
}

fn json_opt_u64(value: impl Into<Option<u64>>) -> String {
    match value.into() {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

/// Times `build()` disarmed (minimum over `samples` runs), then runs it
/// once more with the allocation tallies armed to collect the memory
/// figures. Arming is process-global; `bench-scale` runs single-threaded
/// in its own process, so the global deltas belong to this workload.
fn measure_flavour<F: Fn() -> f64>(samples: usize, build: F) -> FlavourStats {
    let mut construction_ms = f64::INFINITY;
    let mut tour_len = 0.0;
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        tour_len = build();
        construction_ms = construction_ms.min(start.elapsed().as_secs_f64() * 1000.0);
    }
    mule_obs::alloc::reset_rss_peak();
    // Thread-local tallies: allocation on unrelated threads (parallel
    // tests, a scraping server) cannot pollute the deltas.
    let before = mule_obs::alloc::thread_stats();
    mule_obs::alloc::reset_thread_peak();
    mule_obs::alloc::arm();
    build();
    mule_obs::alloc::disarm();
    let after = mule_obs::alloc::thread_stats();
    FlavourStats {
        construction_ms,
        tour_len,
        alloc_count: after.events() - before.events(),
        alloc_bytes: after.allocated_bytes - before.allocated_bytes,
        peak_live_bytes: after.peak_live_bytes.saturating_sub(before.live_bytes),
        peak_rss_kb: mule_obs::alloc::rss_peak_kb(),
    }
}

/// Runs the scale benchmark over the configured sizes.
pub fn run_scale_bench(params: &ScaleBenchParams) -> ScaleBenchReport {
    let config = ChbConfig::default().with_search(SearchMode::Candidates(params.k.max(1)));
    let rows = params
        .sizes
        .iter()
        .map(|&n| {
            let points = bench_layout(params.seed, n);
            let matrix_free = measure_flavour(params.samples, || {
                construct_circuit_with(&points, &config).length(&points)
            });
            let matrix = if n <= params.matrix_cap {
                Some(measure_flavour(params.samples, || {
                    construct_circuit_matrix_backed(&points, &config).length(&points)
                }))
            } else {
                None
            };
            ScaleBenchRow {
                n,
                matrix_free,
                matrix,
            }
        })
        .collect();
    ScaleBenchReport {
        params: params.clone(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> ScaleBenchParams {
        ScaleBenchParams {
            sizes: vec![300, 600],
            seed: 7,
            k: 8,
            matrix_cap: 400,
            samples: 1,
        }
    }

    #[test]
    fn report_has_one_row_per_size_and_respects_the_matrix_cap() {
        let report = run_scale_bench(&quick_params());
        assert_eq!(report.rows.len(), 2);
        let small = &report.rows[0];
        assert!(small.matrix.is_some());
        assert!(small.len_ratio().is_some());
        let large = &report.rows[1];
        assert!(
            large.matrix.is_none(),
            "above the cap the matrix is skipped"
        );
        assert!(large.len_ratio().is_none());
        for row in &report.rows {
            assert!(row.matrix_free.construction_ms >= 0.0);
            assert!(row.matrix_free.tour_len > 0.0);
        }
    }

    #[test]
    fn armed_run_attributes_allocations_and_matrix_dominates_memory() {
        let report = run_scale_bench(&quick_params());
        let row = &report.rows[0];
        assert!(row.matrix_free.alloc_count > 0, "armed run saw allocations");
        assert!(row.matrix_free.alloc_bytes > 0);
        assert!(row.matrix_free.peak_live_bytes > 0);
        let matrix = row.matrix.expect("matrix ran at n=300");
        // The dense matrix is 8·n² bytes — it must dwarf the matrix-free
        // footprint even at 300 points (720 kB vs tens of kB).
        assert!(
            matrix.peak_live_bytes > row.matrix_free.peak_live_bytes,
            "matrix {} <= free {}",
            matrix.peak_live_bytes,
            row.matrix_free.peak_live_bytes
        );
        assert!(matrix.peak_live_bytes as f64 >= 8.0 * 300.0 * 300.0 * 0.9);
    }

    #[test]
    fn alloc_count_is_deterministic_run_to_run() {
        let params = ScaleBenchParams {
            sizes: vec![300],
            ..quick_params()
        };
        // Warm-up absorbs one-time lazy initialisation.
        run_scale_bench(&params);
        let a = run_scale_bench(&params);
        let b = run_scale_bench(&params);
        assert_eq!(
            a.rows[0].matrix_free.alloc_count,
            b.rows[0].matrix_free.alloc_count
        );
        assert_eq!(
            a.rows[0].matrix_free.tour_len,
            b.rows[0].matrix_free.tour_len
        );
    }

    #[test]
    fn json_is_flat_well_formed_and_null_aware() {
        let report = run_scale_bench(&quick_params());
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"bench-scale/v1\""));
        for key in [
            "\"construction_ms\"",
            "\"peak_rss_kb\"",
            "\"alloc_count\"",
            "\"alloc_bytes\"",
            "\"bytes_per_target\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        assert!(
            json.contains("\"matrix_construction_ms\": null"),
            "capped row is explicit"
        );
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }

    #[test]
    fn gate_figures_are_populated() {
        let report = run_scale_bench(&quick_params());
        assert!(report.max_bytes_per_target() > 0.0);
        let ratio = report.max_len_ratio().unwrap();
        assert!((0.8..=1.2).contains(&ratio), "length ratio {ratio}");
        let rendered = report.to_table().render();
        assert!(rendered.contains("bytes/target"));
        assert!(rendered.contains(" - "), "capped cells show a dash");
    }
}
