//! # mule-workload
//!
//! Scenario generation for the patrolling experiments.
//!
//! The paper evaluates on randomly placed targets in an 800 m × 800 m field
//! (averaging 20 random topologies per data point), with optional VIP
//! weights and a recharge station. This crate turns those prose parameters
//! into reproducible, seeded [`Scenario`] values:
//!
//! * [`ScenarioConfig`] — the knobs (field size, target/mule counts, layout,
//!   weights, seed) with [`ScenarioConfig::paper_default`] matching §5.1.
//! * [`layout`] — uniform and disconnected-cluster target placements.
//! * [`weights`] — VIP weight assignment strategies.
//! * [`Scenario`] — the generated instance: a [`mule_net::Field`] plus mule
//!   start positions.
//! * [`replication`] — seed fans for "average of 20 simulations" sweeps.
//! * [`disruption`] — seeded mid-run disruption plans (target failures and
//!   recoveries, late target arrivals, mule breakdowns, speed windows) that
//!   the simulator compiles onto its event timeline.
//! * [`sweep`] — declarative experiment grids ([`SweepSpec`]) over seeds ×
//!   mule counts × speeds × disruption configs, executed in parallel by
//!   `mule-sim` and driven by `patrolctl sweep`.
//! * [`spec`] — the planning-service request type ([`ScenarioSpec`]):
//!   scenario knobs + planner as pure data, with canonical-form hashing
//!   for the `mule-serve` plan cache.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod config;
pub mod disruption;
pub mod layout;
pub mod replication;
pub mod scenario;
pub mod spec;
pub mod sweep;
pub mod weights;

pub use config::{LayoutKind, MetricSpec, MuleStartKind, ScenarioConfig, WeightSpec};
pub use disruption::{Disruption, DisruptionConfig, DisruptionPlan};
pub use replication::{seed_fan, ReplicationPlan};
pub use scenario::Scenario;
pub use spec::ScenarioSpec;
pub use sweep::{SweepCell, SweepSpec, PAPER_SPEED_M_PER_S};
