//! The generated scenario: a concrete field plus mule start positions.

use crate::config::{LayoutKind, MetricSpec, MuleStartKind, ScenarioConfig};
use crate::layout::{clustered_layout, uniform_layout};
use crate::weights::assign_weights;
use mule_geom::{BoundingBox, Point};
use mule_net::{Field, NodeId};
use mule_road::{RoadIndex, TravelMetric};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// A fully instantiated problem instance: the monitoring field (targets,
/// sink, optional recharge station, weights), the travel metric of the
/// world, and where each mule starts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    config: ScenarioConfig,
    field: Field,
    mule_starts: Vec<Point>,
    metric: TravelMetric,
}

impl Scenario {
    /// Generates the scenario described by `config`. Equal configs (same
    /// seed included) generate identical scenarios.
    ///
    /// With a road metric, the network is generated first (from a seed
    /// stream decoupled from the target stream, so Euclidean scenarios
    /// remain byte-identical) and every *patrolled* location — targets,
    /// sink, recharge station — snaps to its nearest road node: mules
    /// cannot stop off-road. Random mule start positions stay unsnapped
    /// (mules are dropped anywhere and drive onto the network).
    pub fn generate(config: &ScenarioConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let bounds = BoundingBox::square(config.field_side_m.max(1.0));

        // The travel metric of the world (seed stream independent of the
        // target RNG below).
        let metric = match config.metric {
            MetricSpec::Euclidean => TravelMetric::Euclidean,
            MetricSpec::Road(kind) => {
                TravelMetric::road(RoadIndex::for_field(kind, &bounds, config.seed))
            }
        };
        let place = |p: Point| match metric.road_index() {
            None => p,
            Some(index) => index.snap_position(&p),
        };

        // Target positions according to the layout.
        let targets = match config.layout {
            LayoutKind::Uniform => uniform_layout(&mut rng, &bounds, config.target_count),
            LayoutKind::DisconnectedClusters {
                clusters,
                cluster_radius_m,
            } => clustered_layout(
                &mut rng,
                &bounds,
                config.target_count,
                clusters,
                cluster_radius_m,
            ),
        };

        // VIP weights, aligned with the target order.
        let weights = assign_weights(&mut rng, targets.len(), &config.weights);

        // Assemble the field. The sink is placed at the field centre; the
        // paper treats it as an ordinary target on the patrolling path.
        let mut builder = Field::builder(bounds);
        let sink_position = place(bounds.center());
        builder.add_sink(sink_position);
        for (pos, w) in targets.iter().zip(weights.iter()) {
            builder.add_target(place(*pos), *w);
        }
        if config.with_recharge_station {
            // The recharge station sits at a random field location, away
            // from the sink so the WRP detour is non-trivial.
            let station = Point::new(
                rng.random_range(bounds.min_x..=bounds.max_x),
                rng.random_range(bounds.min_y..=bounds.max_y),
            );
            builder.add_recharge_station(place(station));
        }
        let field = builder.build();

        // Mule start positions.
        let mule_starts = match config.mule_start {
            MuleStartKind::AtSink => vec![sink_position; config.mule_count],
            MuleStartKind::Random => (0..config.mule_count)
                .map(|_| {
                    Point::new(
                        rng.random_range(bounds.min_x..=bounds.max_x),
                        rng.random_range(bounds.min_y..=bounds.max_y),
                    )
                })
                .collect(),
        };

        Scenario {
            config: *config,
            field,
            mule_starts,
            metric,
        }
    }

    /// The configuration this scenario was generated from.
    #[inline]
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// The monitoring field.
    #[inline]
    pub fn field(&self) -> &Field {
        &self.field
    }

    /// Mule start positions (one per mule).
    #[inline]
    pub fn mule_starts(&self) -> &[Point] {
        &self.mule_starts
    }

    /// Number of mules.
    #[inline]
    pub fn mule_count(&self) -> usize {
        self.mule_starts.len()
    }

    /// Positions of the patrolled nodes (sink + targets) in node-id order —
    /// the point set handed to the planners.
    pub fn patrolled_positions(&self) -> Vec<Point> {
        self.field.patrolled_positions()
    }

    /// Node ids of the patrolled nodes, aligned with
    /// [`Scenario::patrolled_positions`].
    pub fn patrolled_ids(&self) -> Vec<NodeId> {
        self.field.patrolled_ids()
    }

    /// Per-target data generation rate.
    #[inline]
    pub fn data_rate_bps(&self) -> f64 {
        self.config.data_rate_bps
    }

    /// The travel metric of the world (Euclidean or a road network).
    #[inline]
    pub fn metric(&self) -> &TravelMetric {
        &self.metric
    }

    /// Groups the patrolled nodes into connected components of the
    /// unit-disk graph at communication radius `range`, measured under the
    /// scenario's travel metric: with a road metric, two targets separated
    /// by a wall of deleted blocks are *not* neighbours even if they are
    /// geometrically close — radios still propagate straight, but a
    /// patrolled network's relevant notion of "reachable" is travel, which
    /// is what this check feeds (see `mule_net::connectivity`).
    pub fn patrolled_components(&self, range: f64) -> Vec<Vec<usize>> {
        let positions = self.patrolled_positions();
        let metric = &self.metric;
        mule_net::connectivity::connected_components_by(positions.len(), range, |i, j| {
            metric.distance(&positions[i], &positions[j])
        })
    }

    /// A restricted view of this scenario for (re)planning mid-run:
    /// the targets in `inactive` are deactivated (they keep their ids but
    /// leave the patrolled set) and the fleet is replaced by mules standing
    /// at `mule_starts` — typically the surviving mules' current positions.
    ///
    /// Planners are deterministic functions of a scenario, so replanning on
    /// a restricted scenario is exactly "run the paper's construction on
    /// the surviving world".
    pub fn restricted(&self, inactive: &[NodeId], mule_starts: Vec<Point>) -> Scenario {
        let mut field = self.field.clone();
        for &id in inactive {
            field.set_active(id, false);
        }
        let mut config = self.config;
        config.mule_count = mule_starts.len();
        Scenario {
            config,
            field,
            mule_starts,
            metric: self.metric.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WeightSpec;
    use mule_net::NodeKind;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = ScenarioConfig::paper_default().with_seed(5);
        let a = Scenario::generate(&cfg);
        let b = Scenario::generate(&cfg);
        assert_eq!(a, b);
        let c = Scenario::generate(&cfg.with_seed(6));
        assert_ne!(a, c);
    }

    #[test]
    fn paper_default_scenario_has_expected_shape() {
        let s = ScenarioConfig::paper_default().with_seed(3).generate();
        // Sink + 10 targets, no recharge station.
        assert_eq!(s.field().len(), 11);
        assert_eq!(s.field().target_count(), 10);
        assert!(s.field().recharge_station().is_none());
        assert_eq!(s.mule_count(), 4);
        assert_eq!(s.patrolled_positions().len(), 11);
        assert_eq!(s.patrolled_ids().len(), 11);
        // All mules start at the sink.
        let sink = s.field().sink().unwrap().position;
        assert!(s.mule_starts().iter().all(|p| *p == sink));
    }

    #[test]
    fn recharge_station_is_added_when_requested() {
        let s = ScenarioConfig::paper_default()
            .with_recharge_station(true)
            .with_seed(8)
            .generate();
        let station = s.field().recharge_station().unwrap();
        assert_eq!(station.kind, NodeKind::RechargeStation);
        // The station is not part of the patrolled set.
        assert_eq!(s.patrolled_positions().len(), 11);
        assert_eq!(s.field().len(), 12);
    }

    #[test]
    fn random_mule_starts_lie_in_the_field() {
        let s = ScenarioConfig::paper_default()
            .with_mule_start(MuleStartKind::Random)
            .with_mules(7)
            .with_seed(12)
            .generate();
        assert_eq!(s.mule_count(), 7);
        let bounds = s.field().bounds();
        assert!(s.mule_starts().iter().all(|p| bounds.contains(p)));
        // Random starts should not all coincide.
        let first = s.mule_starts()[0];
        assert!(s.mule_starts().iter().any(|p| *p != first));
    }

    #[test]
    fn vip_weights_flow_into_the_field() {
        let s = ScenarioConfig::paper_default()
            .with_targets(20)
            .with_weights(WeightSpec::UniformVips {
                count: 5,
                weight: 4,
            })
            .with_seed(21)
            .generate();
        let vips = s.field().vips();
        assert_eq!(vips.len(), 5);
        assert!(vips.iter().all(|v| v.weight.value() == 4));
    }

    #[test]
    fn clustered_layout_flows_through_generation() {
        let s = ScenarioConfig::paper_default()
            .with_targets(24)
            .with_layout(LayoutKind::DisconnectedClusters {
                clusters: 3,
                cluster_radius_m: 60.0,
            })
            .with_seed(33)
            .generate();
        assert_eq!(s.field().target_count(), 24);
        let target_positions: Vec<Point> = s
            .field()
            .nodes()
            .iter()
            .filter(|n| n.kind == NodeKind::Target)
            .map(|n| n.position)
            .collect();
        assert!(mule_net::is_disconnected(&target_positions, 20.0));
    }

    #[test]
    fn restricted_scenarios_drop_targets_and_replace_the_fleet() {
        let s = ScenarioConfig::paper_default().with_seed(4).generate();
        let victims = [s.patrolled_ids()[1], s.patrolled_ids()[3]];
        let starts = vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0)];
        let r = s.restricted(&victims, starts.clone());
        assert_eq!(r.patrolled_ids().len(), s.patrolled_ids().len() - 2);
        assert!(!r.patrolled_ids().contains(&victims[0]));
        assert_eq!(r.mule_count(), 2);
        assert_eq!(r.mule_starts(), &starts[..]);
        // Surviving nodes keep their original ids.
        for id in r.patrolled_ids() {
            assert!(s.patrolled_ids().contains(&id));
        }
        // The original scenario is untouched.
        assert_eq!(s.patrolled_ids().len(), 11);
    }

    #[test]
    fn road_scenarios_snap_every_patrolled_node_onto_the_network() {
        let cfg = ScenarioConfig::paper_default()
            .with_targets(12)
            .with_recharge_station(true)
            .with_metric(MetricSpec::Road(mule_road::RoadNetKind::Grid))
            .with_seed(7);
        let s = Scenario::generate(&cfg);
        let index = s.metric().road_index().expect("road metric");
        for node in s.field().nodes() {
            assert!(
                index
                    .graph()
                    .positions()
                    .iter()
                    .any(|p| p.distance(&node.position) < 1e-9),
                "node {} at {} sits on a road node",
                node.id,
                node.position
            );
        }
        // Mules start at the (snapped) sink.
        let sink = s.field().sink().unwrap().position;
        assert!(s.mule_starts().iter().all(|p| *p == sink));
        assert_eq!(s.metric().label(), "road-grid");
    }

    #[test]
    fn road_metric_does_not_disturb_the_euclidean_target_stream() {
        // The road network draws from its own seed stream; the *unsnapped*
        // target layout of a road scenario must equal the Euclidean one.
        let base = ScenarioConfig::paper_default().with_targets(9).with_seed(5);
        let euclid = Scenario::generate(&base);
        let road =
            Scenario::generate(&base.with_metric(MetricSpec::Road(mule_road::RoadNetKind::Planar)));
        let index = road.metric().road_index().unwrap();
        for (e, r) in euclid
            .patrolled_positions()
            .iter()
            .zip(road.patrolled_positions())
        {
            assert_eq!(index.snap_position(e), r, "road node = snapped euclid node");
        }
    }

    #[test]
    fn road_generation_is_deterministic_and_fingerprints_differ() {
        let cfg = ScenarioConfig::paper_default()
            .with_metric(MetricSpec::Road(mule_road::RoadNetKind::Grid))
            .with_seed(3);
        assert_eq!(Scenario::generate(&cfg), Scenario::generate(&cfg));
        let euclid = ScenarioConfig::paper_default().with_seed(3).generate();
        assert_ne!(Scenario::generate(&cfg), euclid);
    }

    #[test]
    fn patrolled_components_use_the_travel_metric() {
        let s = ScenarioConfig::paper_default()
            .with_targets(15)
            .with_seed(2)
            .generate();
        // Euclidean: matches the classic point-based check.
        let by_metric = s.patrolled_components(250.0);
        let classic = mule_net::connected_components(&s.patrolled_positions(), 250.0);
        assert_eq!(by_metric, classic);

        // Road: distances only grow, so components can only split further.
        let road = ScenarioConfig::paper_default()
            .with_targets(15)
            .with_seed(2)
            .with_metric(MetricSpec::Road(mule_road::RoadNetKind::Grid))
            .generate();
        let road_comps = road.patrolled_components(250.0);
        let euclid_comps = mule_net::connected_components(&road.patrolled_positions(), 250.0);
        assert!(road_comps.len() >= euclid_comps.len());
    }

    #[test]
    fn zero_targets_and_zero_mules_are_representable() {
        let s = ScenarioConfig::paper_default()
            .with_targets(0)
            .with_mules(0)
            .with_seed(2)
            .generate();
        assert_eq!(s.field().target_count(), 0);
        assert_eq!(s.mule_count(), 0);
        // The sink is always present.
        assert_eq!(s.patrolled_positions().len(), 1);
    }
}
