//! The generated scenario: a concrete field plus mule start positions.

use crate::config::{LayoutKind, MuleStartKind, ScenarioConfig};
use crate::layout::{clustered_layout, uniform_layout};
use crate::weights::assign_weights;
use mule_geom::{BoundingBox, Point};
use mule_net::{Field, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// A fully instantiated problem instance: the monitoring field (targets,
/// sink, optional recharge station, weights) and where each mule starts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    config: ScenarioConfig,
    field: Field,
    mule_starts: Vec<Point>,
}

impl Scenario {
    /// Generates the scenario described by `config`. Equal configs (same
    /// seed included) generate identical scenarios.
    pub fn generate(config: &ScenarioConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let bounds = BoundingBox::square(config.field_side_m.max(1.0));

        // Target positions according to the layout.
        let targets = match config.layout {
            LayoutKind::Uniform => uniform_layout(&mut rng, &bounds, config.target_count),
            LayoutKind::DisconnectedClusters {
                clusters,
                cluster_radius_m,
            } => clustered_layout(
                &mut rng,
                &bounds,
                config.target_count,
                clusters,
                cluster_radius_m,
            ),
        };

        // VIP weights, aligned with the target order.
        let weights = assign_weights(&mut rng, targets.len(), &config.weights);

        // Assemble the field. The sink is placed at the field centre; the
        // paper treats it as an ordinary target on the patrolling path.
        let mut builder = Field::builder(bounds);
        let sink_position = bounds.center();
        builder.add_sink(sink_position);
        for (pos, w) in targets.iter().zip(weights.iter()) {
            builder.add_target(*pos, *w);
        }
        if config.with_recharge_station {
            // The recharge station sits at a random field location, away
            // from the sink so the WRP detour is non-trivial.
            let station = Point::new(
                rng.random_range(bounds.min_x..=bounds.max_x),
                rng.random_range(bounds.min_y..=bounds.max_y),
            );
            builder.add_recharge_station(station);
        }
        let field = builder.build();

        // Mule start positions.
        let mule_starts = match config.mule_start {
            MuleStartKind::AtSink => vec![sink_position; config.mule_count],
            MuleStartKind::Random => (0..config.mule_count)
                .map(|_| {
                    Point::new(
                        rng.random_range(bounds.min_x..=bounds.max_x),
                        rng.random_range(bounds.min_y..=bounds.max_y),
                    )
                })
                .collect(),
        };

        Scenario {
            config: *config,
            field,
            mule_starts,
        }
    }

    /// The configuration this scenario was generated from.
    #[inline]
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// The monitoring field.
    #[inline]
    pub fn field(&self) -> &Field {
        &self.field
    }

    /// Mule start positions (one per mule).
    #[inline]
    pub fn mule_starts(&self) -> &[Point] {
        &self.mule_starts
    }

    /// Number of mules.
    #[inline]
    pub fn mule_count(&self) -> usize {
        self.mule_starts.len()
    }

    /// Positions of the patrolled nodes (sink + targets) in node-id order —
    /// the point set handed to the planners.
    pub fn patrolled_positions(&self) -> Vec<Point> {
        self.field.patrolled_positions()
    }

    /// Node ids of the patrolled nodes, aligned with
    /// [`Scenario::patrolled_positions`].
    pub fn patrolled_ids(&self) -> Vec<NodeId> {
        self.field.patrolled_ids()
    }

    /// Per-target data generation rate.
    #[inline]
    pub fn data_rate_bps(&self) -> f64 {
        self.config.data_rate_bps
    }

    /// A restricted view of this scenario for (re)planning mid-run:
    /// the targets in `inactive` are deactivated (they keep their ids but
    /// leave the patrolled set) and the fleet is replaced by mules standing
    /// at `mule_starts` — typically the surviving mules' current positions.
    ///
    /// Planners are deterministic functions of a scenario, so replanning on
    /// a restricted scenario is exactly "run the paper's construction on
    /// the surviving world".
    pub fn restricted(&self, inactive: &[NodeId], mule_starts: Vec<Point>) -> Scenario {
        let mut field = self.field.clone();
        for &id in inactive {
            field.set_active(id, false);
        }
        let mut config = self.config;
        config.mule_count = mule_starts.len();
        Scenario {
            config,
            field,
            mule_starts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WeightSpec;
    use mule_net::NodeKind;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = ScenarioConfig::paper_default().with_seed(5);
        let a = Scenario::generate(&cfg);
        let b = Scenario::generate(&cfg);
        assert_eq!(a, b);
        let c = Scenario::generate(&cfg.with_seed(6));
        assert_ne!(a, c);
    }

    #[test]
    fn paper_default_scenario_has_expected_shape() {
        let s = ScenarioConfig::paper_default().with_seed(3).generate();
        // Sink + 10 targets, no recharge station.
        assert_eq!(s.field().len(), 11);
        assert_eq!(s.field().target_count(), 10);
        assert!(s.field().recharge_station().is_none());
        assert_eq!(s.mule_count(), 4);
        assert_eq!(s.patrolled_positions().len(), 11);
        assert_eq!(s.patrolled_ids().len(), 11);
        // All mules start at the sink.
        let sink = s.field().sink().unwrap().position;
        assert!(s.mule_starts().iter().all(|p| *p == sink));
    }

    #[test]
    fn recharge_station_is_added_when_requested() {
        let s = ScenarioConfig::paper_default()
            .with_recharge_station(true)
            .with_seed(8)
            .generate();
        let station = s.field().recharge_station().unwrap();
        assert_eq!(station.kind, NodeKind::RechargeStation);
        // The station is not part of the patrolled set.
        assert_eq!(s.patrolled_positions().len(), 11);
        assert_eq!(s.field().len(), 12);
    }

    #[test]
    fn random_mule_starts_lie_in_the_field() {
        let s = ScenarioConfig::paper_default()
            .with_mule_start(MuleStartKind::Random)
            .with_mules(7)
            .with_seed(12)
            .generate();
        assert_eq!(s.mule_count(), 7);
        let bounds = s.field().bounds();
        assert!(s.mule_starts().iter().all(|p| bounds.contains(p)));
        // Random starts should not all coincide.
        let first = s.mule_starts()[0];
        assert!(s.mule_starts().iter().any(|p| *p != first));
    }

    #[test]
    fn vip_weights_flow_into_the_field() {
        let s = ScenarioConfig::paper_default()
            .with_targets(20)
            .with_weights(WeightSpec::UniformVips {
                count: 5,
                weight: 4,
            })
            .with_seed(21)
            .generate();
        let vips = s.field().vips();
        assert_eq!(vips.len(), 5);
        assert!(vips.iter().all(|v| v.weight.value() == 4));
    }

    #[test]
    fn clustered_layout_flows_through_generation() {
        let s = ScenarioConfig::paper_default()
            .with_targets(24)
            .with_layout(LayoutKind::DisconnectedClusters {
                clusters: 3,
                cluster_radius_m: 60.0,
            })
            .with_seed(33)
            .generate();
        assert_eq!(s.field().target_count(), 24);
        let target_positions: Vec<Point> = s
            .field()
            .nodes()
            .iter()
            .filter(|n| n.kind == NodeKind::Target)
            .map(|n| n.position)
            .collect();
        assert!(mule_net::is_disconnected(&target_positions, 20.0));
    }

    #[test]
    fn restricted_scenarios_drop_targets_and_replace_the_fleet() {
        let s = ScenarioConfig::paper_default().with_seed(4).generate();
        let victims = [s.patrolled_ids()[1], s.patrolled_ids()[3]];
        let starts = vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0)];
        let r = s.restricted(&victims, starts.clone());
        assert_eq!(r.patrolled_ids().len(), s.patrolled_ids().len() - 2);
        assert!(!r.patrolled_ids().contains(&victims[0]));
        assert_eq!(r.mule_count(), 2);
        assert_eq!(r.mule_starts(), &starts[..]);
        // Surviving nodes keep their original ids.
        for id in r.patrolled_ids() {
            assert!(s.patrolled_ids().contains(&id));
        }
        // The original scenario is untouched.
        assert_eq!(s.patrolled_ids().len(), 11);
    }

    #[test]
    fn zero_targets_and_zero_mules_are_representable() {
        let s = ScenarioConfig::paper_default()
            .with_targets(0)
            .with_mules(0)
            .with_seed(2)
            .generate();
        assert_eq!(s.field().target_count(), 0);
        assert_eq!(s.mule_count(), 0);
        // The sink is always present.
        assert_eq!(s.patrolled_positions().len(), 1);
    }
}
