//! Replication support: "each simulation result is obtained from the
//! average results of 20 simulations" (paper §5.1).
//!
//! A [`ReplicationPlan`] expands a base configuration into the seeded
//! configurations of its replicas, so the figure harness can map each
//! parameter point to 20 deterministic scenarios and average their metrics.

use crate::config::ScenarioConfig;
use serde::{Deserialize, Serialize};

/// Derives `count` distinct, deterministic seeds from a base seed.
///
/// A SplitMix64 step keeps the fan decorrelated even for adjacent base
/// seeds, which matters because figure sweeps use base seeds 0, 1, 2, …
pub fn seed_fan(base_seed: u64, count: usize) -> Vec<u64> {
    let mut state = base_seed;
    (0..count)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        })
        .collect()
}

/// A base configuration plus a replication count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplicationPlan {
    /// The configuration shared by all replicas (its `seed` field is used as
    /// the base of the seed fan).
    pub base: ScenarioConfig,
    /// Number of replicas (the paper uses 20).
    pub replicas: usize,
}

impl ReplicationPlan {
    /// The paper's 20-replica plan over `base`.
    pub fn paper(base: ScenarioConfig) -> Self {
        ReplicationPlan { base, replicas: 20 }
    }

    /// The per-replica configurations, each with its own derived seed.
    pub fn configurations(&self) -> Vec<ScenarioConfig> {
        seed_fan(self.base.seed, self.replicas)
            .into_iter()
            .map(|seed| self.base.with_seed(seed))
            .collect()
    }

    /// Averages a metric over all replicas by generating each scenario and
    /// applying `metric` to it. Returns `None` when the plan has zero
    /// replicas.
    pub fn average<F: Fn(&crate::Scenario) -> f64>(&self, metric: F) -> Option<f64> {
        if self.replicas == 0 {
            return None;
        }
        let sum: f64 = self
            .configurations()
            .iter()
            .map(|cfg| metric(&cfg.generate()))
            .sum();
        Some(sum / self.replicas as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_fan_is_deterministic_and_distinct() {
        let a = seed_fan(7, 20);
        let b = seed_fan(7, 20);
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
        let unique: std::collections::HashSet<u64> = a.iter().copied().collect();
        assert_eq!(unique.len(), 20);
    }

    #[test]
    fn adjacent_base_seeds_produce_disjoint_fans() {
        let a: std::collections::HashSet<u64> = seed_fan(0, 20).into_iter().collect();
        let b: std::collections::HashSet<u64> = seed_fan(1, 20).into_iter().collect();
        assert!(a.is_disjoint(&b));
    }

    #[test]
    fn paper_plan_has_twenty_replicas_with_distinct_seeds() {
        let plan = ReplicationPlan::paper(ScenarioConfig::paper_default());
        assert_eq!(plan.replicas, 20);
        let cfgs = plan.configurations();
        assert_eq!(cfgs.len(), 20);
        let seeds: std::collections::HashSet<u64> = cfgs.iter().map(|c| c.seed).collect();
        assert_eq!(seeds.len(), 20);
        // Everything except the seed matches the base config.
        for c in &cfgs {
            assert_eq!(c.target_count, plan.base.target_count);
            assert_eq!(c.mule_count, plan.base.mule_count);
        }
    }

    #[test]
    fn average_runs_the_metric_over_every_replica() {
        let plan = ReplicationPlan {
            base: ScenarioConfig::paper_default().with_targets(5),
            replicas: 4,
        };
        // A trivially deterministic metric: number of patrolled nodes.
        let avg = plan
            .average(|s| s.patrolled_positions().len() as f64)
            .unwrap();
        assert_eq!(avg, 6.0); // sink + 5 targets in every replica

        let empty = ReplicationPlan {
            base: ScenarioConfig::paper_default(),
            replicas: 0,
        };
        assert!(empty.average(|_| 1.0).is_none());
    }

    #[test]
    fn zero_count_fan_is_empty() {
        assert!(seed_fan(123, 0).is_empty());
    }
}
