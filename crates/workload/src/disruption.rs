//! Disruption plans: the mid-run events a dynamic scenario throws at the
//! fleet.
//!
//! A [`DisruptionPlan`] is pure data — *what* happens and *when* — so it can
//! be generated here (seeded, reproducible), inspected, and then compiled
//! onto the `mule-events` timeline by the simulator. Four disruption
//! families are modelled:
//!
//! * **Target failure / recovery** — a target stops producing data and
//!   (optionally) comes back later.
//! * **Late target arrival** — a target that is part of the field but only
//!   comes online mid-run; until then it is inactive and the initial plan
//!   should not cover it.
//! * **Mule breakdown** — a mule permanently leaves the fleet.
//! * **Speed windows** — a global speed multiplier applies during a time
//!   window (head-wind, terrain, duty-cycling).

use crate::Scenario;
use mule_net::NodeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// One disruption of a dynamic scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Disruption {
    /// `target` stops producing data at `at_s`.
    TargetFailure {
        /// The failing target.
        target: NodeId,
        /// Failure time, seconds.
        at_s: f64,
    },
    /// A previously failed `target` comes back online at `at_s`.
    TargetRecovery {
        /// The recovering target.
        target: NodeId,
        /// Recovery time, seconds.
        at_s: f64,
    },
    /// `target` joins the field at `at_s`; it is inactive before that.
    TargetArrival {
        /// The late target.
        target: NodeId,
        /// Arrival time, seconds.
        at_s: f64,
    },
    /// Mule `mule` permanently breaks down at `at_s`.
    MuleBreakdown {
        /// Scenario index of the breaking mule.
        mule: usize,
        /// Breakdown time, seconds.
        at_s: f64,
    },
    /// The fleet moves at `factor` × nominal speed during
    /// `[start_s, end_s]`.
    SpeedWindow {
        /// Window start, seconds.
        start_s: f64,
        /// Window end, seconds.
        end_s: f64,
        /// Speed multiplier (1.0 = nominal).
        factor: f64,
    },
}

impl Disruption {
    /// The time the disruption (first) takes effect.
    pub fn time_s(&self) -> f64 {
        match *self {
            Disruption::TargetFailure { at_s, .. }
            | Disruption::TargetRecovery { at_s, .. }
            | Disruption::TargetArrival { at_s, .. }
            | Disruption::MuleBreakdown { at_s, .. } => at_s,
            Disruption::SpeedWindow { start_s, .. } => start_s,
        }
    }

    /// Human-readable one-line description for timelines and tables.
    pub fn describe(&self) -> String {
        match *self {
            Disruption::TargetFailure { target, at_s } => {
                format!("t={at_s:.0}s: target {target} fails")
            }
            Disruption::TargetRecovery { target, at_s } => {
                format!("t={at_s:.0}s: target {target} recovers")
            }
            Disruption::TargetArrival { target, at_s } => {
                format!("t={at_s:.0}s: target {target} arrives (late)")
            }
            Disruption::MuleBreakdown { mule, at_s } => {
                format!("t={at_s:.0}s: mule {mule} breaks down")
            }
            Disruption::SpeedWindow {
                start_s,
                end_s,
                factor,
            } => {
                format!("t={start_s:.0}s–{end_s:.0}s: speed ×{factor:.2}")
            }
        }
    }
}

/// Knobs of the seeded disruption generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DisruptionConfig {
    /// RNG seed; equal configs over equal scenarios yield equal plans.
    pub seed: u64,
    /// Horizon the disruption times are placed within, seconds.
    pub horizon_s: f64,
    /// How many targets fail mid-run.
    pub target_failures: usize,
    /// When `Some`, every failed target recovers this many seconds after
    /// its failure (clipped to the horizon).
    pub recover_after_s: Option<f64>,
    /// How many targets arrive late.
    pub late_arrivals: usize,
    /// How many mules break down.
    pub mule_breakdowns: usize,
    /// How many speed windows to open.
    pub speed_windows: usize,
    /// The multiplier each speed window applies.
    pub speed_factor: f64,
}

impl Default for DisruptionConfig {
    fn default() -> Self {
        DisruptionConfig {
            seed: 1,
            horizon_s: 40_000.0,
            target_failures: 1,
            recover_after_s: None,
            late_arrivals: 0,
            mule_breakdowns: 1,
            speed_windows: 0,
            speed_factor: 0.5,
        }
    }
}

impl DisruptionConfig {
    /// Preset: target failures only (two failures, one recovering after a
    /// quarter of the horizon). Used as the `failures` axis value of
    /// `patrolctl sweep`.
    pub fn failures_only(seed: u64, horizon_s: f64) -> Self {
        DisruptionConfig {
            seed,
            horizon_s,
            target_failures: 2,
            recover_after_s: Some(horizon_s.max(0.0) * 0.25),
            late_arrivals: 0,
            mule_breakdowns: 0,
            speed_windows: 0,
            speed_factor: 0.5,
        }
    }

    /// Preset: a single mule breakdown and nothing else.
    pub fn breakdowns_only(seed: u64, horizon_s: f64) -> Self {
        DisruptionConfig {
            seed,
            horizon_s,
            target_failures: 0,
            recover_after_s: None,
            late_arrivals: 0,
            mule_breakdowns: 1,
            speed_windows: 0,
            speed_factor: 0.5,
        }
    }

    /// Preset: a bit of everything — one failure with recovery, one late
    /// arrival, one breakdown, one half-speed window.
    pub fn default_mixed(seed: u64, horizon_s: f64) -> Self {
        DisruptionConfig {
            seed,
            horizon_s,
            target_failures: 1,
            recover_after_s: Some(horizon_s.max(0.0) * 0.2),
            late_arrivals: 1,
            mule_breakdowns: 1,
            speed_windows: 1,
            speed_factor: 0.5,
        }
    }

    /// Returns this template with its `seed` and `horizon_s` replaced —
    /// how the sweep runner derives each replica's disruption plan from
    /// one axis value.
    pub fn reseeded(mut self, seed: u64, horizon_s: f64) -> Self {
        self.seed = seed;
        self.horizon_s = horizon_s;
        self
    }
}

/// The disruptions of one dynamic scenario, in nondecreasing time order.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DisruptionPlan {
    /// The disruptions, sorted by [`Disruption::time_s`].
    pub disruptions: Vec<Disruption>,
}

impl DisruptionPlan {
    /// A plan with no disruptions (a dynamic run degenerates to a static
    /// one).
    pub fn none() -> Self {
        DisruptionPlan::default()
    }

    /// Samples a disruption plan for `scenario`. Fully determined by
    /// `config` (including its seed): failing targets, late targets and
    /// breaking mules are drawn without replacement — a target is never
    /// both failing and late — and all times land inside the horizon.
    ///
    /// Requests exceeding the available population are clamped (e.g. five
    /// breakdowns of a three-mule fleet breaks all three mules).
    pub fn seeded(scenario: &Scenario, config: &DisruptionConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let horizon = config.horizon_s.max(0.0);
        let mut disruptions = Vec::new();

        // Draw the failing and late targets from one shuffled pool so the
        // two sets never overlap.
        let mut targets = scenario.field().target_ids();
        targets.shuffle(&mut rng);
        let failures = config.target_failures.min(targets.len());
        let late = config.late_arrivals.min(targets.len() - failures);
        for &target in targets.iter().take(failures) {
            let at_s = rng.random_range(0.25..0.55) * horizon;
            disruptions.push(Disruption::TargetFailure { target, at_s });
            if let Some(after) = config.recover_after_s {
                let recover_s = at_s + after.max(0.0);
                if recover_s < horizon {
                    disruptions.push(Disruption::TargetRecovery {
                        target,
                        at_s: recover_s,
                    });
                }
            }
        }
        for &target in targets.iter().skip(failures).take(late) {
            let at_s = rng.random_range(0.10..0.35) * horizon;
            disruptions.push(Disruption::TargetArrival { target, at_s });
        }

        let mut mules: Vec<usize> = (0..scenario.mule_count()).collect();
        mules.shuffle(&mut rng);
        for &mule in mules.iter().take(config.mule_breakdowns.min(mules.len())) {
            let at_s = rng.random_range(0.30..0.70) * horizon;
            disruptions.push(Disruption::MuleBreakdown { mule, at_s });
        }

        for _ in 0..config.speed_windows {
            let start_s = rng.random_range(0.20..0.60) * horizon;
            let end_s = (start_s + 0.2 * horizon).min(horizon);
            disruptions.push(Disruption::SpeedWindow {
                start_s,
                end_s,
                factor: config.speed_factor.max(0.01),
            });
        }

        let mut plan = DisruptionPlan { disruptions };
        plan.sort();
        plan
    }

    /// Sorts the disruptions by effect time (NaN-safe).
    pub fn sort(&mut self) {
        self.disruptions
            .sort_by(|a, b| a.time_s().total_cmp(&b.time_s()));
    }

    /// Number of disruptions.
    pub fn len(&self) -> usize {
        self.disruptions.len()
    }

    /// `true` when there are no disruptions.
    pub fn is_empty(&self) -> bool {
        self.disruptions.is_empty()
    }

    /// Targets that arrive late — i.e. are inactive from time zero until
    /// their arrival event. The initial plan should exclude them.
    pub fn late_target_ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self
            .disruptions
            .iter()
            .filter_map(|d| match d {
                Disruption::TargetArrival { target, .. } => Some(*target),
                _ => None,
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// The distinct times at which the collection workload changes —
    /// the phase boundaries the per-phase delay metrics report over.
    /// Speed windows contribute both edges.
    pub fn phase_boundaries_s(&self) -> Vec<f64> {
        let mut times = Vec::new();
        for d in &self.disruptions {
            times.push(d.time_s());
            if let Disruption::SpeedWindow { end_s, .. } = d {
                times.push(*end_s);
            }
        }
        times.sort_by(|a, b| a.total_cmp(b));
        times.dedup_by(|a, b| a.total_cmp(b).is_eq());
        times
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScenarioConfig;

    fn scenario() -> Scenario {
        ScenarioConfig::paper_default()
            .with_targets(10)
            .with_mules(4)
            .with_seed(7)
            .generate()
    }

    fn config() -> DisruptionConfig {
        DisruptionConfig {
            seed: 11,
            horizon_s: 10_000.0,
            target_failures: 2,
            recover_after_s: Some(1_000.0),
            late_arrivals: 2,
            mule_breakdowns: 1,
            speed_windows: 1,
            speed_factor: 0.5,
        }
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let s = scenario();
        let a = DisruptionPlan::seeded(&s, &config());
        let b = DisruptionPlan::seeded(&s, &config());
        assert_eq!(a, b);
        let c = DisruptionPlan::seeded(
            &s,
            &DisruptionConfig {
                seed: 12,
                ..config()
            },
        );
        assert_ne!(a, c);
    }

    #[test]
    fn seeded_plans_respect_the_requested_counts() {
        let s = scenario();
        let plan = DisruptionPlan::seeded(&s, &config());
        let count = |f: fn(&Disruption) -> bool| plan.disruptions.iter().filter(|d| f(d)).count();
        assert_eq!(count(|d| matches!(d, Disruption::TargetFailure { .. })), 2);
        assert_eq!(count(|d| matches!(d, Disruption::TargetRecovery { .. })), 2);
        assert_eq!(count(|d| matches!(d, Disruption::TargetArrival { .. })), 2);
        assert_eq!(count(|d| matches!(d, Disruption::MuleBreakdown { .. })), 1);
        assert_eq!(count(|d| matches!(d, Disruption::SpeedWindow { .. })), 1);
        assert_eq!(plan.late_target_ids().len(), 2);
    }

    #[test]
    fn failing_and_late_targets_never_overlap() {
        let s = scenario();
        let plan = DisruptionPlan::seeded(&s, &config());
        let failing: Vec<NodeId> = plan
            .disruptions
            .iter()
            .filter_map(|d| match d {
                Disruption::TargetFailure { target, .. } => Some(*target),
                _ => None,
            })
            .collect();
        for late in plan.late_target_ids() {
            assert!(!failing.contains(&late));
        }
    }

    #[test]
    fn times_are_sorted_and_inside_the_horizon() {
        let s = scenario();
        let plan = DisruptionPlan::seeded(&s, &config());
        let times: Vec<f64> = plan.disruptions.iter().map(Disruption::time_s).collect();
        for w in times.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(times.iter().all(|&t| (0.0..10_000.0).contains(&t)));
        let boundaries = plan.phase_boundaries_s();
        for w in boundaries.windows(2) {
            assert!(w[0] < w[1], "boundaries deduped and sorted");
        }
    }

    #[test]
    fn oversized_requests_are_clamped() {
        let s = ScenarioConfig::paper_default()
            .with_targets(2)
            .with_mules(1)
            .with_seed(3)
            .generate();
        let cfg = DisruptionConfig {
            target_failures: 5,
            late_arrivals: 5,
            mule_breakdowns: 5,
            ..config()
        };
        let plan = DisruptionPlan::seeded(&s, &cfg);
        let failures = plan
            .disruptions
            .iter()
            .filter(|d| matches!(d, Disruption::TargetFailure { .. }))
            .count();
        let breakdowns = plan
            .disruptions
            .iter()
            .filter(|d| matches!(d, Disruption::MuleBreakdown { .. }))
            .count();
        assert_eq!(failures, 2, "only two targets exist");
        assert!(
            plan.late_target_ids().is_empty(),
            "no targets left for late arrivals"
        );
        assert_eq!(breakdowns, 1, "only one mule exists");
    }

    #[test]
    fn empty_plan_is_the_static_degenerate_case() {
        let plan = DisruptionPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        assert!(plan.phase_boundaries_s().is_empty());
        assert!(plan.late_target_ids().is_empty());
    }

    #[test]
    fn descriptions_name_the_subject() {
        assert!(Disruption::TargetFailure {
            target: NodeId(3),
            at_s: 10.0
        }
        .describe()
        .contains("g3"));
        assert!(Disruption::MuleBreakdown {
            mule: 2,
            at_s: 10.0
        }
        .describe()
        .contains("mule 2"));
        assert!(Disruption::SpeedWindow {
            start_s: 1.0,
            end_s: 2.0,
            factor: 0.5
        }
        .describe()
        .contains("speed"));
    }
}
