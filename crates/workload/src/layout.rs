//! Target layout generators.
//!
//! Two layouts: uniformly random over the field (the paper's stated setup)
//! and disconnected clusters (the motivating situation where static sensor
//! networks cannot stay connected).

use mule_geom::{BoundingBox, Point};
use rand::rngs::StdRng;
use rand::RngExt;

/// Draws `count` points uniformly at random inside `bounds`.
pub fn uniform_layout(rng: &mut StdRng, bounds: &BoundingBox, count: usize) -> Vec<Point> {
    (0..count)
        .map(|_| {
            Point::new(
                rng.random_range(bounds.min_x..=bounds.max_x),
                rng.random_range(bounds.min_y..=bounds.max_y),
            )
        })
        .collect()
}

/// Side length (metres) of a square field holding `targets` uniformly
/// random targets at the paper's densest evaluated density (50 targets in
/// the 800 m × 800 m field). Never shrinks below the paper's field so small
/// counts keep their original geometry.
pub fn scaled_field_side_m(targets: usize) -> f64 {
    let paper_side = 800.0f64;
    let paper_density_targets = 50.0f64;
    paper_side * (targets as f64 / paper_density_targets).sqrt().max(1.0)
}

/// Generates the `bench-tours` stress topology directly as points: `count`
/// uniformly random targets in the density-scaled field of
/// [`scaled_field_side_m`], seeded and deterministic. Skipping the full
/// [`Scenario`](crate::Scenario) machinery (nodes, radios, buffers) keeps
/// large-n tour benchmarks measuring the tour engine and nothing else.
pub fn bench_layout(seed: u64, count: usize) -> Vec<Point> {
    use rand::SeedableRng;
    let side = scaled_field_side_m(count);
    let bounds = BoundingBox::square(side);
    let mut rng = StdRng::seed_from_u64(seed);
    uniform_layout(&mut rng, &bounds, count)
}

/// Draws `count` points grouped into `clusters` disconnected areas.
///
/// Cluster centres are drawn uniformly but rejected until they are at least
/// `4 × cluster_radius_m + separation_floor` apart, which (for radii well
/// above the 20 m communication range) guarantees the resulting target set
/// is disconnected at that range. Points are then scattered uniformly in a
/// disc of radius `cluster_radius_m` around their cluster centre and clamped
/// to the field.
pub fn clustered_layout(
    rng: &mut StdRng,
    bounds: &BoundingBox,
    count: usize,
    clusters: usize,
    cluster_radius_m: f64,
) -> Vec<Point> {
    if count == 0 {
        return Vec::new();
    }
    let clusters = clusters.max(1).min(count);
    let radius = cluster_radius_m.max(1.0);
    let separation = 4.0 * radius + 40.0;

    // Rejection-sample well separated cluster centres; fall back to a
    // deterministic grid when the field is too small to honour the
    // separation (so generation always terminates).
    let mut centers: Vec<Point> = Vec::with_capacity(clusters);
    let mut attempts = 0;
    while centers.len() < clusters && attempts < 10_000 {
        attempts += 1;
        let margin = radius.min(bounds.width() / 2.0).min(bounds.height() / 2.0);
        let c = Point::new(
            rng.random_range((bounds.min_x + margin)..=(bounds.max_x - margin)),
            rng.random_range((bounds.min_y + margin)..=(bounds.max_y - margin)),
        );
        if centers
            .iter()
            .all(|existing| existing.distance(&c) >= separation)
        {
            centers.push(c);
        }
    }
    while centers.len() < clusters {
        // Deterministic fallback: spread remaining centres on a diagonal.
        let i = centers.len();
        let t = (i as f64 + 0.5) / clusters as f64;
        centers.push(Point::new(
            bounds.min_x + bounds.width() * t,
            bounds.min_y + bounds.height() * t,
        ));
    }

    // Round-robin the targets over the clusters so every cluster is
    // non-empty when count >= clusters.
    (0..count)
        .map(|i| {
            let center = centers[i % clusters];
            // Uniform point in a disc via rejection-free polar sampling.
            let theta = rng.random_range(0.0..std::f64::consts::TAU);
            let r = radius * rng.random_range(0.0..1.0f64).sqrt();
            let p = Point::new(center.x + r * theta.cos(), center.y + r * theta.sin());
            bounds.clamp(&p)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mule_net::connectivity::is_disconnected;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn uniform_layout_stays_in_bounds_and_has_requested_count() {
        let bounds = BoundingBox::square(800.0);
        let pts = uniform_layout(&mut rng(7), &bounds, 50);
        assert_eq!(pts.len(), 50);
        assert!(pts.iter().all(|p| bounds.contains(p)));
        assert!(uniform_layout(&mut rng(7), &bounds, 0).is_empty());
    }

    #[test]
    fn uniform_layout_is_seed_deterministic() {
        let bounds = BoundingBox::square(800.0);
        let a = uniform_layout(&mut rng(42), &bounds, 20);
        let b = uniform_layout(&mut rng(42), &bounds, 20);
        let c = uniform_layout(&mut rng(43), &bounds, 20);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn scaled_field_keeps_paper_density() {
        // 50 targets is the paper's densest setup: same field.
        assert!((scaled_field_side_m(50) - 800.0).abs() < 1e-9);
        // 5000 targets = 100× the count ⇒ 10× the side (100× the area).
        assert!((scaled_field_side_m(5000) - 8000.0).abs() < 1e-9);
        // Small counts never shrink the field below the paper's.
        assert!((scaled_field_side_m(10) - 800.0).abs() < 1e-9);
        assert!((scaled_field_side_m(0) - 800.0).abs() < 1e-9);
    }

    #[test]
    fn bench_layout_is_seeded_and_in_bounds() {
        let a = bench_layout(9, 500);
        let b = bench_layout(9, 500);
        let c = bench_layout(10, 500);
        assert_eq!(a.len(), 500);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let bounds = BoundingBox::square(scaled_field_side_m(500));
        assert!(a.iter().all(|p| bounds.contains(p)));
    }

    #[test]
    fn clustered_layout_produces_disconnected_groups_at_comm_range() {
        let bounds = BoundingBox::square(800.0);
        for seed in 0..5 {
            let pts = clustered_layout(&mut rng(seed), &bounds, 24, 3, 60.0);
            assert_eq!(pts.len(), 24);
            assert!(pts.iter().all(|p| bounds.contains(p)));
            assert!(
                is_disconnected(&pts, 20.0),
                "seed {seed}: clusters should be disconnected at 20 m"
            );
        }
    }

    #[test]
    fn clustered_layout_handles_degenerate_parameters() {
        let bounds = BoundingBox::square(800.0);
        assert!(clustered_layout(&mut rng(1), &bounds, 0, 3, 50.0).is_empty());
        // More clusters than targets collapses to one target per cluster.
        let pts = clustered_layout(&mut rng(1), &bounds, 2, 10, 50.0);
        assert_eq!(pts.len(), 2);
        // Zero clusters is clamped to one.
        let one_cluster = clustered_layout(&mut rng(1), &bounds, 10, 0, 50.0);
        assert_eq!(one_cluster.len(), 10);
        // Zero radius is clamped to a small positive disc.
        let tight = clustered_layout(&mut rng(1), &bounds, 10, 2, 0.0);
        assert_eq!(tight.len(), 10);
    }

    #[test]
    fn cluster_members_are_near_some_common_center() {
        let bounds = BoundingBox::square(800.0);
        let radius = 50.0;
        let pts = clustered_layout(&mut rng(11), &bounds, 30, 3, radius);
        // Every point must be within `radius` of at least 9 other points
        // (its cluster mates), since 30 points round-robin into 3 clusters
        // of 10 and the cluster diameter is 2 × radius.
        for p in &pts {
            let mates = pts.iter().filter(|q| p.distance(q) <= 2.0 * radius).count();
            assert!(mates >= 10, "point {p} has only {mates} nearby mates");
        }
    }
}
