//! Declarative experiment sweeps: a parameter grid over seeds, mule
//! counts, mule speeds and disruption configurations.
//!
//! A [`SweepSpec`] is pure data — it describes *which* cells an experiment
//! visits, not how they run. [`SweepSpec::cells`] expands the grid into the
//! full cartesian product in a fixed, documented order (seeds outermost,
//! disruptions innermost), so a sweep's cell list — and therefore every
//! derived scenario and every aggregated table row — is identical on every
//! machine and for every worker count. `mule-sim`'s `montecarlo` module
//! executes the cells in parallel; `patrolctl sweep` drives it from the
//! command line.

use crate::config::ScenarioConfig;
use crate::disruption::DisruptionConfig;
use serde::{Deserialize, Serialize};

/// Mule speed of the paper's §5.1 energy model, metres per second. Used as
/// the default (single-element) speed axis; kept in sync with
/// `mule_energy::EnergyModel::paper_default()` by a test in `mule-sim`.
pub const PAPER_SPEED_M_PER_S: f64 = 2.0;

/// A declarative experiment grid: the cartesian product of a seed axis, a
/// mule-count axis, a speed axis and a disruption axis, each cell replicated
/// `replicas` times over a deterministic seed fan.
///
/// An **empty axis produces an empty grid** (the cartesian product with an
/// empty set is empty); [`SweepSpec::new`] therefore starts every axis as a
/// one-element vector taken from the base configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Configuration shared by every cell; each cell overrides its `seed`
    /// and `mule_count` fields.
    pub base: ScenarioConfig,
    /// Base seeds (one replication fan per seed).
    pub seeds: Vec<u64>,
    /// Fleet sizes to sweep.
    pub mule_counts: Vec<usize>,
    /// Mule speeds to sweep, metres per second (overrides the energy
    /// model's nominal speed).
    pub speeds_m_per_s: Vec<f64>,
    /// Disruption axis: `None` runs the static engine, `Some(config)` runs
    /// the dynamic engine with that disruption template. The template's
    /// `seed` and `horizon_s` are overridden per replica so disruptions
    /// stay decorrelated across the fan (see `mule-sim`'s `run_sweep`).
    pub disruptions: Vec<Option<DisruptionConfig>>,
    /// Replications per cell (the paper averages over 20).
    pub replicas: usize,
    /// Simulation horizon per replica, seconds.
    pub horizon_s: f64,
}

/// One cell of an expanded sweep grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCell {
    /// Position in [`SweepSpec::cells`] order (stable across runs).
    pub index: usize,
    /// Base seed of this cell's replication fan.
    pub seed: u64,
    /// Fleet size.
    pub mules: usize,
    /// Mule speed, metres per second.
    pub speed_m_per_s: f64,
    /// Disruption template (`None` = static run).
    pub disruption: Option<DisruptionConfig>,
}

impl SweepCell {
    /// Short label of the disruption axis value for tables and CSV.
    pub fn disruption_label(&self) -> String {
        match &self.disruption {
            None => "none".to_string(),
            Some(d) => {
                let mut parts = Vec::new();
                if d.target_failures > 0 {
                    parts.push(format!("fail={}", d.target_failures));
                }
                if d.recover_after_s.is_some() {
                    parts.push("recover".to_string());
                }
                if d.late_arrivals > 0 {
                    parts.push(format!("late={}", d.late_arrivals));
                }
                if d.mule_breakdowns > 0 {
                    parts.push(format!("bd={}", d.mule_breakdowns));
                }
                if d.speed_windows > 0 {
                    parts.push(format!("slow={}", d.speed_windows));
                }
                if parts.is_empty() {
                    "noop".to_string()
                } else {
                    parts.join(",")
                }
            }
        }
    }
}

impl SweepSpec {
    /// A single-cell sweep around `base`: its seed, its mule count, the
    /// paper's nominal speed, no disruptions, 8 replicas.
    pub fn new(base: ScenarioConfig) -> Self {
        SweepSpec {
            seeds: vec![base.seed],
            mule_counts: vec![base.mule_count],
            speeds_m_per_s: vec![PAPER_SPEED_M_PER_S],
            disruptions: vec![None],
            replicas: 8,
            horizon_s: 40_000.0,
            base,
        }
    }

    /// Builder-style override of the seed axis.
    pub fn with_seeds(mut self, seeds: Vec<u64>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Builder-style override of the mule-count axis.
    pub fn with_mule_counts(mut self, counts: Vec<usize>) -> Self {
        self.mule_counts = counts;
        self
    }

    /// Builder-style override of the speed axis.
    pub fn with_speeds(mut self, speeds_m_per_s: Vec<f64>) -> Self {
        self.speeds_m_per_s = speeds_m_per_s;
        self
    }

    /// Builder-style override of the disruption axis.
    pub fn with_disruptions(mut self, disruptions: Vec<Option<DisruptionConfig>>) -> Self {
        self.disruptions = disruptions;
        self
    }

    /// Builder-style override of the per-cell replica count.
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    /// Builder-style override of the horizon.
    pub fn with_horizon(mut self, horizon_s: f64) -> Self {
        self.horizon_s = horizon_s.max(0.0);
        self
    }

    /// Number of cells the grid expands to (the product of the axis
    /// lengths; zero when any axis is empty).
    pub fn cell_count(&self) -> usize {
        self.seeds.len()
            * self.mule_counts.len()
            * self.speeds_m_per_s.len()
            * self.disruptions.len()
    }

    /// Total number of simulation runs (`cell_count × replicas`).
    pub fn run_count(&self) -> usize {
        self.cell_count() * self.replicas
    }

    /// Expands the grid into its cells, in the fixed nesting order
    /// `seeds → mule_counts → speeds → disruptions` (disruptions vary
    /// fastest). Cell `index` equals the position in the returned vector.
    pub fn cells(&self) -> Vec<SweepCell> {
        let mut cells = Vec::with_capacity(self.cell_count());
        for &seed in &self.seeds {
            for &mules in &self.mule_counts {
                for &speed in &self.speeds_m_per_s {
                    for disruption in &self.disruptions {
                        cells.push(SweepCell {
                            index: cells.len(),
                            seed,
                            mules,
                            speed_m_per_s: speed,
                            disruption: *disruption,
                        });
                    }
                }
            }
        }
        cells
    }

    /// The scenario configuration of one cell: the base with the cell's
    /// seed and mule count applied. (Speed lives in the simulator's energy
    /// model, not the scenario; the sweep runner applies it there.)
    pub fn scenario_config(&self, cell: &SweepCell) -> ScenarioConfig {
        self.base.with_seed(cell.seed).with_mules(cell.mules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SweepSpec {
        SweepSpec::new(ScenarioConfig::paper_default())
    }

    #[test]
    fn new_is_a_single_cell_around_the_base() {
        let s = spec();
        assert_eq!(s.cell_count(), 1);
        let cells = s.cells();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].seed, s.base.seed);
        assert_eq!(cells[0].mules, s.base.mule_count);
        assert_eq!(cells[0].speed_m_per_s, PAPER_SPEED_M_PER_S);
        assert!(cells[0].disruption.is_none());
        assert_eq!(s.run_count(), s.replicas);
    }

    #[test]
    fn cell_count_is_the_cartesian_product_of_the_axes() {
        let s = spec()
            .with_seeds(vec![1, 2, 3])
            .with_mule_counts(vec![2, 4])
            .with_speeds(vec![1.0, 2.0])
            .with_disruptions(vec![
                None,
                Some(DisruptionConfig::default_mixed(1, 40_000.0)),
            ]);
        assert_eq!(s.cell_count(), 3 * 2 * 2 * 2);
        assert_eq!(s.cells().len(), 24);
        assert_eq!(s.with_replicas(5).run_count(), 24 * 5);
    }

    #[test]
    fn empty_axes_produce_an_empty_grid() {
        assert_eq!(spec().with_seeds(vec![]).cell_count(), 0);
        assert!(spec().with_seeds(vec![]).cells().is_empty());
        assert_eq!(spec().with_mule_counts(vec![]).cell_count(), 0);
        assert_eq!(spec().with_speeds(vec![]).cell_count(), 0);
        assert_eq!(spec().with_disruptions(vec![]).cell_count(), 0);
        assert_eq!(spec().with_speeds(vec![]).run_count(), 0);
    }

    #[test]
    fn cells_enumerate_in_documented_nesting_order() {
        let s = spec()
            .with_seeds(vec![10, 20])
            .with_mule_counts(vec![3, 5])
            .with_speeds(vec![2.0]);
        let cells = s.cells();
        assert_eq!(cells.len(), 4);
        // Disruptions (len 1) and speeds (len 1) vary fastest; mules next.
        assert_eq!((cells[0].seed, cells[0].mules), (10, 3));
        assert_eq!((cells[1].seed, cells[1].mules), (10, 5));
        assert_eq!((cells[2].seed, cells[2].mules), (20, 3));
        assert_eq!((cells[3].seed, cells[3].mules), (20, 5));
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn expansion_is_deterministic() {
        let s = spec()
            .with_seeds(vec![1, 2])
            .with_mule_counts(vec![2, 4])
            .with_speeds(vec![1.5, 2.5]);
        assert_eq!(s.cells(), s.cells());
    }

    #[test]
    fn scenario_config_applies_cell_seed_and_mules() {
        let s = spec().with_seeds(vec![42]).with_mule_counts(vec![7]);
        let cells = s.cells();
        let cfg = s.scenario_config(&cells[0]);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.mule_count, 7);
        assert_eq!(cfg.target_count, s.base.target_count);
    }

    #[test]
    fn disruption_labels_summarise_the_template() {
        let cell = |d| SweepCell {
            index: 0,
            seed: 1,
            mules: 4,
            speed_m_per_s: 2.0,
            disruption: d,
        };
        assert_eq!(cell(None).disruption_label(), "none");
        let mixed = DisruptionConfig::default_mixed(1, 40_000.0);
        let label = cell(Some(mixed)).disruption_label();
        assert!(label.contains("fail="), "label was {label}");
        assert!(label.contains("bd="), "label was {label}");
    }
}
