//! Scenario configuration: every knob the paper's evaluation sweeps.

use mule_road::RoadNetKind;
use serde::{Deserialize, Serialize};

/// Which travel metric the scenario's world uses.
///
/// This is scenario *data* (seeded, serialisable, fingerprintable); the
/// queryable [`mule_road::TravelMetric`] is derived from it at generation
/// time. The default is [`MetricSpec::Euclidean`] — absent from canonical
/// spec strings, so every pre-road fingerprint and cache key is unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MetricSpec {
    /// Straight-line travel (the historical behaviour).
    #[default]
    Euclidean,
    /// Travel over a generated road network of the given kind; the network
    /// itself is a deterministic function of the field bounds and the
    /// scenario seed (see `mule_road::RoadIndex::for_field`).
    Road(RoadNetKind),
}

impl MetricSpec {
    /// The wire name used by `--metric` flags, JSON specs and canonical
    /// strings.
    pub fn wire_name(&self) -> &'static str {
        match self {
            MetricSpec::Euclidean => "euclidean",
            MetricSpec::Road(RoadNetKind::Grid) => "road-grid",
            MetricSpec::Road(RoadNetKind::Planar) => "road-planar",
        }
    }

    /// Parses a wire name (case-insensitive). `road` is an alias for the
    /// grid network.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "euclidean" | "euclid" => Some(MetricSpec::Euclidean),
            "road" | "road-grid" | "grid" => Some(MetricSpec::Road(RoadNetKind::Grid)),
            "road-planar" | "planar" => Some(MetricSpec::Road(RoadNetKind::Planar)),
            _ => None,
        }
    }
}

/// How targets are laid out in the field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum LayoutKind {
    /// Uniformly random positions over the whole field (the paper's base
    /// setup: "the locations of targets are randomly distributed over the
    /// monitoring region").
    #[default]
    Uniform,
    /// Targets grouped into `clusters` disconnected areas whose centres are
    /// spread across the field and whose members lie within
    /// `cluster_radius_m` of the centre. This realises the "targets may be
    /// distributed over several disconnected areas" motivation.
    DisconnectedClusters {
        /// Number of disconnected areas.
        clusters: usize,
        /// Radius of each area in metres.
        cluster_radius_m: f64,
    },
}

/// How VIP weights are assigned to targets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum WeightSpec {
    /// Every target is a Normal Target Point (weight 1).
    #[default]
    AllNormal,
    /// Exactly `count` targets (chosen at random) are VIPs with the given
    /// uniform weight; the rest are NTPs. This matches the Fig. 9/10 sweep
    /// axes "number of VIP" and "weighted value".
    UniformVips {
        /// How many VIPs to create.
        count: usize,
        /// The weight value assigned to each VIP (≥ 2 to be a real VIP).
        weight: u32,
    },
    /// Each target independently becomes a VIP with probability `p`, with a
    /// weight drawn uniformly from `min_weight..=max_weight`.
    RandomVips {
        /// Probability that a target is a VIP.
        p: f64,
        /// Smallest VIP weight.
        min_weight: u32,
        /// Largest VIP weight.
        max_weight: u32,
    },
}

/// Where the mules start before location initialisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum MuleStartKind {
    /// All mules start at the sink (the common deployment story: mules are
    /// launched from the base station).
    #[default]
    AtSink,
    /// Mules start at uniformly random positions in the field, which is the
    /// situation B-TCTP's "move to the closest start point" initialisation
    /// is designed for.
    Random,
}

/// Full configuration of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Side length of the square monitoring field, metres.
    pub field_side_m: f64,
    /// Number of targets (excluding the sink).
    pub target_count: usize,
    /// Number of data mules.
    pub mule_count: usize,
    /// Target layout.
    pub layout: LayoutKind,
    /// VIP weight assignment.
    pub weights: WeightSpec,
    /// Mule starting positions.
    pub mule_start: MuleStartKind,
    /// Whether the scenario includes a recharge station (required by
    /// RW-TCTP).
    pub with_recharge_station: bool,
    /// Per-target data generation rate, bytes per second (only affects the
    /// byte-level reporting, not the timing metrics).
    pub data_rate_bps: f64,
    /// Travel metric of the world: Euclidean (default) or a seeded road
    /// network. With a road metric, targets, sink and recharge station
    /// snap onto the nearest road node (mules cannot stop off-road).
    pub metric: MetricSpec,
    /// RNG seed. Scenarios with equal configs and seeds are identical.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig::paper_default()
    }
}

impl ScenarioConfig {
    /// The paper's §5.1 setup: 800 m × 800 m field, uniformly random
    /// targets, 10 targets, 4 mules, no VIPs, no recharge station.
    pub fn paper_default() -> Self {
        ScenarioConfig {
            field_side_m: 800.0,
            target_count: 10,
            mule_count: 4,
            layout: LayoutKind::Uniform,
            weights: WeightSpec::AllNormal,
            mule_start: MuleStartKind::AtSink,
            with_recharge_station: false,
            data_rate_bps: 64.0,
            metric: MetricSpec::Euclidean,
            seed: 1,
        }
    }

    /// A large-scale topology: `targets` uniformly random targets in a
    /// field scaled so the *density* matches the paper's densest setup
    /// (50 targets in 800 m × 800 m). This is the tour-engine stress
    /// workload — the paper stops at 50 targets, the ROADMAP north-star
    /// asks for thousands — used by the `bench-tours` harness and the
    /// scaled criterion benches.
    pub fn large_scale(targets: usize) -> Self {
        ScenarioConfig {
            field_side_m: crate::layout::scaled_field_side_m(targets),
            target_count: targets,
            ..ScenarioConfig::paper_default()
        }
    }

    /// Builder-style override of the target count.
    pub fn with_targets(mut self, count: usize) -> Self {
        self.target_count = count;
        self
    }

    /// Builder-style override of the mule count.
    pub fn with_mules(mut self, count: usize) -> Self {
        self.mule_count = count;
        self
    }

    /// Builder-style override of the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style override of the layout.
    pub fn with_layout(mut self, layout: LayoutKind) -> Self {
        self.layout = layout;
        self
    }

    /// Builder-style override of the weight specification.
    pub fn with_weights(mut self, weights: WeightSpec) -> Self {
        self.weights = weights;
        self
    }

    /// Builder-style override of the mule start positions.
    pub fn with_mule_start(mut self, start: MuleStartKind) -> Self {
        self.mule_start = start;
        self
    }

    /// Builder-style toggle for the recharge station.
    pub fn with_recharge_station(mut self, enabled: bool) -> Self {
        self.with_recharge_station = enabled;
        self
    }

    /// Builder-style override of the travel metric.
    pub fn with_metric(mut self, metric: MetricSpec) -> Self {
        self.metric = metric;
        self
    }

    /// Generates the scenario described by this configuration.
    pub fn generate(&self) -> crate::Scenario {
        crate::Scenario::generate(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_5_1() {
        let c = ScenarioConfig::paper_default();
        assert_eq!(c.field_side_m, 800.0);
        assert_eq!(c.target_count, 10);
        assert_eq!(c.mule_count, 4);
        assert_eq!(c.layout, LayoutKind::Uniform);
        assert_eq!(c.weights, WeightSpec::AllNormal);
        assert!(!c.with_recharge_station);
        assert_eq!(ScenarioConfig::default(), c);
    }

    #[test]
    fn builder_methods_override_individual_fields() {
        let c = ScenarioConfig::paper_default()
            .with_targets(25)
            .with_mules(6)
            .with_seed(99)
            .with_layout(LayoutKind::DisconnectedClusters {
                clusters: 3,
                cluster_radius_m: 50.0,
            })
            .with_weights(WeightSpec::UniformVips {
                count: 2,
                weight: 3,
            })
            .with_mule_start(MuleStartKind::Random)
            .with_recharge_station(true);
        assert_eq!(c.target_count, 25);
        assert_eq!(c.mule_count, 6);
        assert_eq!(c.seed, 99);
        assert!(matches!(
            c.layout,
            LayoutKind::DisconnectedClusters { clusters: 3, .. }
        ));
        assert!(matches!(
            c.weights,
            WeightSpec::UniformVips {
                count: 2,
                weight: 3
            }
        ));
        assert_eq!(c.mule_start, MuleStartKind::Random);
        assert!(c.with_recharge_station);
    }

    #[test]
    fn defaults_for_enums_are_the_paper_base_case() {
        assert_eq!(LayoutKind::default(), LayoutKind::Uniform);
        assert_eq!(WeightSpec::default(), WeightSpec::AllNormal);
        assert_eq!(MuleStartKind::default(), MuleStartKind::AtSink);
        assert_eq!(MetricSpec::default(), MetricSpec::Euclidean);
    }

    #[test]
    fn metric_spec_wire_names_round_trip() {
        for spec in [
            MetricSpec::Euclidean,
            MetricSpec::Road(RoadNetKind::Grid),
            MetricSpec::Road(RoadNetKind::Planar),
        ] {
            assert_eq!(MetricSpec::parse(spec.wire_name()), Some(spec));
        }
        assert_eq!(
            MetricSpec::parse("road"),
            Some(MetricSpec::Road(RoadNetKind::Grid)),
            "bare `road` aliases the grid network"
        );
        assert_eq!(
            MetricSpec::parse("PLANAR"),
            Some(MetricSpec::Road(RoadNetKind::Planar))
        );
        assert_eq!(MetricSpec::parse("teleport"), None);
    }
}
