//! The planning-service request type: a [`ScenarioSpec`] names everything
//! a `/v1/plan` request needs — the scenario knobs plus the planner — as
//! pure data, with a **canonical form** and a stable fingerprint so a
//! plan cache can key on it.
//!
//! The spec deliberately mirrors `patrolctl`'s scenario flags (the CLI
//! builds its `ScenarioConfig` through this type, so the two front ends
//! cannot drift), but it lives here rather than in the CLI because the
//! server, the load generator and the CLI all speak it.
//!
//! ## Canonical form and fingerprint
//!
//! [`ScenarioSpec::canonical_string`] renders the spec as a fixed-order,
//! self-delimiting key string; [`ScenarioSpec::fingerprint`] is the
//! FNV-1a 64-bit hash of that string. Two specs that are `==` always
//! canonicalise — and therefore hash — identically, regardless of how
//! they were produced (JSON field order, CLI flags, defaults). The
//! planner name is length-prefixed in the canonical form so no crafted
//! name can collide with a different spec's rendering, and a negative
//! zero horizon normalises to positive zero (they compare equal, so they
//! must hash equal).

use crate::config::{MetricSpec, ScenarioConfig};
use crate::WeightSpec;
use serde::{Deserialize, Serialize};

/// Version tag of the canonical form (bump when the field set changes so
/// old cache keys cannot alias new specs).
pub const SPEC_VERSION: &str = "spec/v1";

/// Smallest weight that makes a target a real VIP (a weight of 1 is a
/// normal target).
const MIN_VIP_WEIGHT: u32 = 2;

/// A planning request: scenario knobs plus the planner to run, as pure
/// data. See the module docs for the canonical-form contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Number of targets.
    pub targets: usize,
    /// Number of data mules.
    pub mules: usize,
    /// Scenario RNG seed.
    pub seed: u64,
    /// Number of VIP targets (0 = all normal).
    pub vips: usize,
    /// Weight assigned to each VIP (floored to 2 when VIPs exist).
    pub vip_weight: u32,
    /// Whether the scenario includes a recharge station.
    pub recharge: bool,
    /// Planner name (`b-tctp`, `w-tctp-shortest`, `w-tctp-balancing`,
    /// `rw-tctp`, `chb`, `sweep`, `random`). Stored verbatim; validated
    /// by whoever instantiates the planner.
    pub planner: String,
    /// Simulation horizon, seconds (used by `/v1/simulate`; ignored by
    /// pure planning).
    pub horizon_s: f64,
    /// Travel metric of the scenario. **Fingerprint back-compat:** the
    /// default (`Euclidean`) contributes nothing to the canonical form, so
    /// every spec that predates road metrics hashes — and cache-keys —
    /// exactly as it always did; only road specs grow a `metric=` token.
    pub metric: MetricSpec,
}

impl Default for ScenarioSpec {
    /// Matches `patrolctl`'s scenario-flag defaults.
    fn default() -> Self {
        ScenarioSpec {
            targets: 10,
            mules: 4,
            seed: 1,
            vips: 0,
            vip_weight: 2,
            recharge: false,
            planner: "b-tctp".to_string(),
            horizon_s: 40_000.0,
            metric: MetricSpec::Euclidean,
        }
    }
}

impl ScenarioSpec {
    /// Builder-style override of the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style override of the target count.
    pub fn with_targets(mut self, targets: usize) -> Self {
        self.targets = targets;
        self
    }

    /// Builder-style override of the mule count.
    pub fn with_mules(mut self, mules: usize) -> Self {
        self.mules = mules;
        self
    }

    /// Builder-style override of the planner name.
    pub fn with_planner(mut self, planner: impl Into<String>) -> Self {
        self.planner = planner.into();
        self
    }

    /// Builder-style override of the travel metric.
    pub fn with_metric(mut self, metric: MetricSpec) -> Self {
        self.metric = metric;
        self
    }

    /// The scenario configuration this spec describes (the same mapping
    /// `patrolctl` applies to its flags: VIPs become a `UniformVips`
    /// weight spec with the weight floored to a real VIP weight).
    pub fn scenario_config(&self) -> ScenarioConfig {
        let weights = if self.vips > 0 {
            WeightSpec::UniformVips {
                count: self.vips,
                weight: self.vip_weight.max(MIN_VIP_WEIGHT),
            }
        } else {
            WeightSpec::AllNormal
        };
        ScenarioConfig::paper_default()
            .with_targets(self.targets)
            .with_mules(self.mules)
            .with_seed(self.seed)
            .with_weights(weights)
            .with_recharge_station(self.recharge)
            .with_metric(self.metric)
    }

    /// The fixed-order, self-delimiting canonical rendering of the spec.
    /// Equal specs render identically; distinct specs render distinctly
    /// (the free-form planner name is length-prefixed, every other field
    /// has a fixed-width meaning).
    pub fn canonical_string(&self) -> String {
        // `==` treats -0.0 and 0.0 as equal, so the canonical form must
        // not distinguish them either.
        let horizon = if self.horizon_s == 0.0 {
            0.0
        } else {
            self.horizon_s
        };
        let mut canonical = format!(
            "{};targets={};mules={};seed={};vips={};vip_weight={};recharge={};horizon_s={:?};planner={}:{}",
            SPEC_VERSION,
            self.targets,
            self.mules,
            self.seed,
            self.vips,
            self.vip_weight,
            self.recharge,
            horizon,
            self.planner.len(),
            self.planner,
        );
        // Back-compat: the default metric renders nothing, so pre-road
        // specs keep their historical canonical form and fingerprint. The
        // token is appended *after* the length-prefixed planner name, so a
        // crafted planner string still cannot fake (or hide) a metric.
        if self.metric != MetricSpec::Euclidean {
            canonical.push_str(";metric=");
            canonical.push_str(self.metric.wire_name());
        }
        canonical
    }

    /// FNV-1a 64-bit hash of [`ScenarioSpec::canonical_string`] — the
    /// plan-cache key. Stable across platforms, compiler versions and
    /// processes (unlike `std::hash`, which is allowed to vary).
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.canonical_string().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayoutKind;

    #[test]
    fn default_spec_matches_the_paper_scenario_defaults() {
        let cfg = ScenarioSpec::default().scenario_config();
        assert_eq!(cfg, ScenarioConfig::paper_default());
    }

    #[test]
    fn scenario_config_applies_every_knob() {
        let spec = ScenarioSpec {
            targets: 25,
            mules: 6,
            seed: 99,
            vips: 3,
            vip_weight: 4,
            recharge: true,
            planner: "chb".to_string(),
            horizon_s: 12_345.0,
            metric: MetricSpec::Euclidean,
        };
        let cfg = spec.scenario_config();
        assert_eq!(cfg.target_count, 25);
        assert_eq!(cfg.mule_count, 6);
        assert_eq!(cfg.seed, 99);
        assert_eq!(
            cfg.weights,
            WeightSpec::UniformVips {
                count: 3,
                weight: 4
            }
        );
        assert!(cfg.with_recharge_station);
        assert_eq!(cfg.layout, LayoutKind::Uniform);
    }

    #[test]
    fn vip_weight_is_floored_to_a_real_vip_weight() {
        let spec = ScenarioSpec {
            vips: 2,
            vip_weight: 1,
            ..ScenarioSpec::default()
        };
        assert_eq!(
            spec.scenario_config().weights,
            WeightSpec::UniformVips {
                count: 2,
                weight: 2
            }
        );
    }

    #[test]
    fn equal_specs_have_equal_canonical_forms_and_fingerprints() {
        let a = ScenarioSpec::default().with_seed(7).with_targets(20);
        let b = ScenarioSpec::default().with_seed(7).with_targets(20);
        assert_eq!(a, b);
        assert_eq!(a.canonical_string(), b.canonical_string());
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn every_field_feeds_the_fingerprint() {
        let base = ScenarioSpec::default();
        let variants = [
            base.clone().with_targets(11),
            base.clone().with_mules(5),
            base.clone().with_seed(2),
            ScenarioSpec {
                vips: 1,
                ..base.clone()
            },
            ScenarioSpec {
                vip_weight: 3,
                ..base.clone()
            },
            ScenarioSpec {
                recharge: true,
                ..base.clone()
            },
            base.clone().with_planner("chb"),
            ScenarioSpec {
                horizon_s: 41_000.0,
                ..base.clone()
            },
            base.clone()
                .with_metric(MetricSpec::Road(mule_road::RoadNetKind::Grid)),
            base.clone()
                .with_metric(MetricSpec::Road(mule_road::RoadNetKind::Planar)),
        ];
        for v in &variants {
            assert_ne!(
                v.fingerprint(),
                base.fingerprint(),
                "variant {v:?} must change the fingerprint"
            );
        }
    }

    #[test]
    fn planner_name_cannot_inject_other_fields() {
        // Without length-prefixing, spec A with planner "x;recharge=true"
        // could canonicalise like a different spec. The prefix pins the
        // name's extent.
        let a = ScenarioSpec::default().with_planner("x;recharge=true");
        let b = ScenarioSpec {
            recharge: true,
            ..ScenarioSpec::default().with_planner("x")
        };
        assert_ne!(a.canonical_string(), b.canonical_string());
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn negative_zero_horizon_hashes_like_positive_zero() {
        let pos = ScenarioSpec {
            horizon_s: 0.0,
            ..ScenarioSpec::default()
        };
        let neg = ScenarioSpec {
            horizon_s: -0.0,
            ..ScenarioSpec::default()
        };
        assert_eq!(pos, neg, "PartialEq treats the zeros as equal");
        assert_eq!(pos.fingerprint(), neg.fingerprint());
    }

    #[test]
    fn default_metric_is_absent_from_the_canonical_form() {
        // Fingerprint back-compat: a spec with the default metric must
        // canonicalise — and therefore cache-key — exactly like a spec
        // from before the metric field existed.
        let default = ScenarioSpec::default();
        assert!(!default.canonical_string().contains("metric"));
        let road = default
            .clone()
            .with_metric(MetricSpec::Road(mule_road::RoadNetKind::Grid));
        assert!(road.canonical_string().ends_with(";metric=road-grid"));
        assert_ne!(default.fingerprint(), road.fingerprint());
        let planar = default
            .clone()
            .with_metric(MetricSpec::Road(mule_road::RoadNetKind::Planar));
        assert_ne!(road.fingerprint(), planar.fingerprint());
    }

    #[test]
    fn planner_name_cannot_fake_a_metric_token() {
        // The planner's length prefix pins its extent, so a crafted name
        // ending in ";metric=road-grid" is not the same spec as a real
        // road request.
        let crafted = ScenarioSpec::default().with_planner("b-tctp;metric=road-grid");
        let real =
            ScenarioSpec::default().with_metric(MetricSpec::Road(mule_road::RoadNetKind::Grid));
        assert_ne!(crafted.canonical_string(), real.canonical_string());
        assert_ne!(crafted.fingerprint(), real.fingerprint());
    }

    #[test]
    fn road_spec_builds_a_road_scenario_config() {
        let spec =
            ScenarioSpec::default().with_metric(MetricSpec::Road(mule_road::RoadNetKind::Planar));
        assert_eq!(
            spec.scenario_config().metric,
            MetricSpec::Road(mule_road::RoadNetKind::Planar)
        );
        assert_eq!(
            ScenarioSpec::default().scenario_config().metric,
            MetricSpec::Euclidean
        );
    }

    #[test]
    fn fingerprint_is_pinned() {
        // The fingerprint is a cache key that may outlive a process (and
        // appears in responses); pin the default spec's value so an
        // accidental canonical-form change cannot slip through unnoticed.
        let canonical = ScenarioSpec::default().canonical_string();
        assert_eq!(
            canonical,
            "spec/v1;targets=10;mules=4;seed=1;vips=0;vip_weight=2;\
             recharge=false;horizon_s=40000.0;planner=6:b-tctp"
        );
    }
}
