//! VIP weight assignment.

use crate::config::WeightSpec;
use mule_net::Weight;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::RngExt;

/// Assigns a weight to each of `target_count` targets according to `spec`.
/// The returned vector is aligned with the target index order used by the
/// layout generator.
pub fn assign_weights(rng: &mut StdRng, target_count: usize, spec: &WeightSpec) -> Vec<Weight> {
    match *spec {
        WeightSpec::AllNormal => vec![Weight::NORMAL; target_count],
        WeightSpec::UniformVips { count, weight } => {
            let mut weights = vec![Weight::NORMAL; target_count];
            let vip_count = count.min(target_count);
            let mut indices: Vec<usize> = (0..target_count).collect();
            indices.shuffle(rng);
            for &idx in indices.iter().take(vip_count) {
                weights[idx] = Weight::new(weight.max(2));
            }
            weights
        }
        WeightSpec::RandomVips {
            p,
            min_weight,
            max_weight,
        } => {
            let p = p.clamp(0.0, 1.0);
            let lo = min_weight.max(2);
            let hi = max_weight.max(lo);
            (0..target_count)
                .map(|_| {
                    if rng.random_range(0.0..1.0f64) < p {
                        Weight::new(rng.random_range(lo..=hi))
                    } else {
                        Weight::NORMAL
                    }
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn all_normal_gives_weight_one_everywhere() {
        let w = assign_weights(&mut rng(1), 12, &WeightSpec::AllNormal);
        assert_eq!(w.len(), 12);
        assert!(w.iter().all(|x| x.value() == 1));
    }

    #[test]
    fn uniform_vips_creates_exactly_the_requested_count() {
        let spec = WeightSpec::UniformVips {
            count: 4,
            weight: 3,
        };
        let w = assign_weights(&mut rng(2), 20, &spec);
        let vips: Vec<&Weight> = w.iter().filter(|x| x.is_vip()).collect();
        assert_eq!(vips.len(), 4);
        assert!(vips.iter().all(|x| x.value() == 3));
        assert_eq!(w.iter().filter(|x| !x.is_vip()).count(), 16);
    }

    #[test]
    fn uniform_vips_count_is_clamped_to_the_target_count() {
        let spec = WeightSpec::UniformVips {
            count: 50,
            weight: 2,
        };
        let w = assign_weights(&mut rng(3), 8, &spec);
        assert_eq!(w.iter().filter(|x| x.is_vip()).count(), 8);
    }

    #[test]
    fn uniform_vip_weight_below_two_is_promoted_to_two() {
        let spec = WeightSpec::UniformVips {
            count: 3,
            weight: 1,
        };
        let w = assign_weights(&mut rng(4), 10, &spec);
        assert_eq!(w.iter().filter(|x| x.value() == 2).count(), 3);
    }

    #[test]
    fn random_vips_respect_probability_extremes_and_weight_bounds() {
        let none = assign_weights(
            &mut rng(5),
            30,
            &WeightSpec::RandomVips {
                p: 0.0,
                min_weight: 2,
                max_weight: 5,
            },
        );
        assert!(none.iter().all(|x| !x.is_vip()));

        let all = assign_weights(
            &mut rng(6),
            30,
            &WeightSpec::RandomVips {
                p: 1.0,
                min_weight: 2,
                max_weight: 5,
            },
        );
        assert!(all.iter().all(|x| x.is_vip()));
        assert!(all.iter().all(|x| (2..=5).contains(&x.value())));
    }

    #[test]
    fn random_vips_handle_inverted_weight_bounds() {
        let w = assign_weights(
            &mut rng(7),
            20,
            &WeightSpec::RandomVips {
                p: 1.0,
                min_weight: 6,
                max_weight: 3,
            },
        );
        // min > max: the range collapses to min..=min.
        assert!(w.iter().all(|x| x.value() == 6));
    }

    #[test]
    fn assignment_is_seed_deterministic() {
        let spec = WeightSpec::UniformVips {
            count: 5,
            weight: 4,
        };
        let a = assign_weights(&mut rng(9), 25, &spec);
        let b = assign_weights(&mut rng(9), 25, &spec);
        assert_eq!(a, b);
    }
}
