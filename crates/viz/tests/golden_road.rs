//! Golden-file test of the road-scenario SVG render.
//!
//! Pins the complete SVG document for one seeded road scenario + B-TCTP
//! plan byte-for-byte against `tests/golden/road_plan.svg`. Everything in
//! the pipeline is deterministic — road generation, snapping, tour
//! construction, leg geometry, float formatting — so any diff is a real
//! behaviour change and must be reviewed, not absorbed.
//!
//! To regenerate after an *intentional* change:
//! `REGEN_ROAD_GOLDEN=1 cargo test -p mule-viz --test golden_road`

use mule_viz::{plan_to_svg, SvgStyle};
use mule_workload::{MetricSpec, ScenarioConfig};
use patrol_core::{BTctp, Planner};

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("road_plan.svg")
}

fn render() -> String {
    let scenario = ScenarioConfig::paper_default()
        .with_targets(8)
        .with_mules(2)
        .with_seed(6)
        .with_metric(MetricSpec::Road(mule_road::RoadNetKind::Grid))
        .generate();
    let plan = BTctp::new().plan(&scenario).unwrap();
    plan_to_svg(&scenario, &plan, &SvgStyle::default())
}

#[test]
fn road_plan_svg_matches_the_golden_file() {
    let svg = render();
    let path = golden_path();
    if std::env::var_os("REGEN_ROAD_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &svg).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        svg,
        golden,
        "road SVG drifted from {} (set REGEN_ROAD_GOLDEN=1 to regenerate after reviewing)",
        path.display()
    );
}

#[test]
fn road_render_draws_the_network_under_the_route() {
    let svg = render();
    // Grey road underlay with per-class stroke widths.
    assert!(svg.contains("stroke=\"#c8c8c8\""));
    assert!(svg.matches("<line ").count() > 50, "road edges drawn");
    let road_group = svg.find("stroke=\"#c8c8c8\"").unwrap();
    let first_route = svg.find("<polyline").unwrap();
    assert!(road_group < first_route, "roads render under routes");
    // The route follows road geometry: many more polyline vertices than
    // the 9 patrolled stops.
    let route = &svg[first_route..svg[first_route..].find("</polyline>").unwrap() + first_route];
    let vertices = route.matches(',').count();
    assert!(
        vertices > 20,
        "route has {vertices} vertices, expected road detail"
    );
}
