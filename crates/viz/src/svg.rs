//! SVG export of scenarios and patrol plans.
//!
//! Produces a standalone SVG document (no external assets) showing the
//! field, every node (colour-coded by kind and weight) and, optionally, each
//! mule's route in a distinct colour with its entry point marked. Useful for
//! eyeballing weighted patrolling paths and recharge detours.
//!
//! Road scenarios additionally draw the road network under everything
//! else — edges in grey, heavier strokes for faster speed classes — and
//! mule routes follow the itineraries' *expanded* polylines, so a road
//! tour renders along actual road geometry instead of straight chords.
//! (`tests/golden_road.rs` pins one full road render byte-for-byte.)

use mule_geom::Point;
use mule_net::NodeKind;
use mule_workload::Scenario;
use patrol_core::PatrolPlan;

/// Styling knobs of the SVG export.
#[derive(Debug, Clone)]
pub struct SvgStyle {
    /// Width of the output image in pixels (height follows the field's
    /// aspect ratio).
    pub width_px: f64,
    /// Radius of node markers in pixels.
    pub node_radius_px: f64,
    /// Stroke width of route polylines in pixels.
    pub route_stroke_px: f64,
}

impl Default for SvgStyle {
    fn default() -> Self {
        SvgStyle {
            width_px: 800.0,
            node_radius_px: 5.0,
            route_stroke_px: 1.5,
        }
    }
}

/// Route colours cycled per mule.
const ROUTE_COLORS: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf",
];

struct Mapper {
    scale: f64,
    min_x: f64,
    max_y: f64,
}

impl Mapper {
    fn new(scenario: &Scenario, style: &SvgStyle) -> (Self, f64, f64) {
        let bounds = scenario.field().bounds();
        let scale = style.width_px / bounds.width().max(1e-9);
        let height_px = bounds.height() * scale;
        (
            Mapper {
                scale,
                min_x: bounds.min_x,
                max_y: bounds.max_y,
            },
            style.width_px,
            height_px,
        )
    }

    /// Field coordinates → SVG pixel coordinates (y axis flipped so north is
    /// up).
    fn map(&self, p: &Point) -> (f64, f64) {
        (
            (p.x - self.min_x) * self.scale,
            (self.max_y - p.y) * self.scale,
        )
    }
}

fn node_color(kind: NodeKind, weight: u32) -> &'static str {
    match kind {
        NodeKind::Sink => "#000000",
        NodeKind::RechargeStation => "#e6b800",
        NodeKind::Target => {
            if weight >= 2 {
                "#d62728"
            } else {
                "#2ca02c"
            }
        }
    }
}

fn svg_header(width: f64, height: f64) -> String {
    format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width:.0}\" height=\"{height:.0}\" \
         viewBox=\"0 0 {width:.0} {height:.0}\">\n\
         <rect width=\"100%\" height=\"100%\" fill=\"#fafafa\" stroke=\"#cccccc\"/>\n"
    )
}

/// Draws the road network (when the scenario has one) as a grey underlay:
/// one line per undirected edge, stroke width by speed class (faster
/// classes are wider, like printed road maps).
fn road_markup(scenario: &Scenario, mapper: &Mapper) -> String {
    let Some(index) = scenario.metric().road_index() else {
        return String::new();
    };
    let graph = index.graph();
    let mut out = String::from("<g stroke=\"#c8c8c8\" stroke-linecap=\"round\">\n");
    for (u, v, class) in graph.edges() {
        let (x1, y1) = mapper.map(&graph.position(u));
        let (x2, y2) = mapper.map(&graph.position(v));
        let width = match class {
            mule_road::SpeedClass::Highway => 2.2,
            mule_road::SpeedClass::Avenue => 1.4,
            mule_road::SpeedClass::Street => 0.8,
        };
        out.push_str(&format!(
            "<line x1=\"{x1:.1}\" y1=\"{y1:.1}\" x2=\"{x2:.1}\" y2=\"{y2:.1}\" \
             stroke-width=\"{width:.1}\"/>\n"
        ));
    }
    out.push_str("</g>\n");
    out
}

fn node_markup(scenario: &Scenario, mapper: &Mapper, style: &SvgStyle) -> String {
    let mut out = String::new();
    for node in scenario.field().nodes() {
        let (x, y) = mapper.map(&node.position);
        let color = node_color(node.kind, node.weight.value());
        out.push_str(&format!(
            "<circle cx=\"{x:.1}\" cy=\"{y:.1}\" r=\"{:.1}\" fill=\"{color}\">\
             <title>{} ({:?}, w={})</title></circle>\n",
            style.node_radius_px,
            node.id,
            node.kind,
            node.weight.value()
        ));
        if node.weight.value() >= 2 {
            out.push_str(&format!(
                "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"10\" fill=\"#333\">w={}</text>\n",
                x + style.node_radius_px + 2.0,
                y + 3.0,
                node.weight.value()
            ));
        }
    }
    out
}

/// Renders only the scenario (nodes on the field) as an SVG document.
pub fn scenario_to_svg(scenario: &Scenario, style: &SvgStyle) -> String {
    let (mapper, width, height) = Mapper::new(scenario, style);
    let mut svg = svg_header(width, height);
    svg.push_str(&road_markup(scenario, &mapper));
    svg.push_str(&node_markup(scenario, &mapper, style));
    svg.push_str("</svg>\n");
    svg
}

/// Renders the scenario plus every mule's route as an SVG document.
pub fn plan_to_svg(scenario: &Scenario, plan: &PatrolPlan, style: &SvgStyle) -> String {
    let (mapper, width, height) = Mapper::new(scenario, style);
    let mut svg = svg_header(width, height);
    svg.push_str(&road_markup(scenario, &mapper));

    for (m, it) in plan.itineraries.iter().enumerate() {
        if it.cycle.is_empty() {
            continue;
        }
        let color = ROUTE_COLORS[m % ROUTE_COLORS.len()];
        // The expanded polyline: waypoints for a Euclidean plan, the full
        // road geometry for a road plan.
        let mut points: Vec<(f64, f64)> =
            it.expanded_points().iter().map(|p| mapper.map(p)).collect();
        // Close the cycle explicitly.
        if let Some(first) = points.first().copied() {
            points.push(first);
        }
        let path: Vec<String> = points
            .iter()
            .map(|(x, y)| format!("{x:.1},{y:.1}"))
            .collect();
        svg.push_str(&format!(
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"{:.1}\" \
             stroke-opacity=\"0.7\"><title>mule {} ({})</title></polyline>\n",
            path.join(" "),
            style.route_stroke_px,
            it.mule_index,
            plan.planner_name
        ));
        // Entry point marker.
        let (ex, ey) = mapper.map(&it.entry_point());
        svg.push_str(&format!(
            "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"8\" height=\"8\" fill=\"{color}\">\
             <title>mule {} entry point</title></rect>\n",
            ex - 4.0,
            ey - 4.0,
            it.mule_index
        ));
    }

    svg.push_str(&node_markup(scenario, &mapper, style));
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use mule_workload::{ScenarioConfig, WeightSpec};
    use patrol_core::{BTctp, Planner, RwTctp};

    fn scenario() -> Scenario {
        ScenarioConfig::paper_default()
            .with_targets(8)
            .with_weights(WeightSpec::UniformVips {
                count: 2,
                weight: 3,
            })
            .with_recharge_station(true)
            .with_seed(3)
            .generate()
    }

    #[test]
    fn scenario_svg_is_well_formed_and_shows_every_node() {
        let s = scenario();
        let svg = scenario_to_svg(&s, &SvgStyle::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        let circles = svg.matches("<circle").count();
        assert_eq!(circles, s.field().len());
        assert!(svg.contains("w=3"), "VIP weight label present");
    }

    #[test]
    fn plan_svg_draws_one_polyline_per_mule() {
        let s = scenario();
        let plan = BTctp::new().plan(&s).unwrap();
        let svg = plan_to_svg(&s, &plan, &SvgStyle::default());
        assert_eq!(svg.matches("<polyline").count(), plan.mule_count());
        assert_eq!(svg.matches("<rect x=").count(), plan.mule_count());
    }

    #[test]
    fn recharge_route_includes_the_station_colour() {
        let s = scenario();
        let plan = RwTctp::default().plan(&s).unwrap();
        let svg = plan_to_svg(&s, &plan, &SvgStyle::default());
        assert!(svg.contains("#e6b800"), "recharge station marker colour");
        assert!(svg.contains("RW-TCTP"));
    }

    #[test]
    fn style_width_controls_the_viewport() {
        let s = scenario();
        let style = SvgStyle {
            width_px: 400.0,
            ..SvgStyle::default()
        };
        let svg = scenario_to_svg(&s, &style);
        assert!(svg.contains("width=\"400\""));
        assert!(
            svg.contains("height=\"400\""),
            "square field keeps a square aspect"
        );
    }
}
