//! ASCII rendering of fields and patrol plans.
//!
//! The canvas maps the monitoring field onto a character grid. Node glyphs:
//! `S` sink, `R` recharge station, `o` normal target, digits `2`–`9` VIP
//! weight, `*` route waypoints, `.` route edges (sampled).

use mule_geom::{BoundingBox, Point};
use mule_net::NodeKind;
use mule_workload::Scenario;
use patrol_core::PatrolPlan;

/// A fixed-size character canvas over a bounding box.
#[derive(Debug, Clone)]
pub struct AsciiCanvas {
    width: usize,
    height: usize,
    bounds: BoundingBox,
    cells: Vec<char>,
}

impl AsciiCanvas {
    /// Creates an empty canvas of `width × height` characters covering
    /// `bounds`. Width and height are clamped to at least 2.
    pub fn new(bounds: BoundingBox, width: usize, height: usize) -> Self {
        let width = width.max(2);
        let height = height.max(2);
        AsciiCanvas {
            width,
            height,
            bounds,
            cells: vec![' '; width * height],
        }
    }

    /// Canvas width in characters.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Canvas height in characters.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Maps a field point to a cell coordinate, or `None` when it falls
    /// outside the canvas bounds.
    pub fn cell_of(&self, p: &Point) -> Option<(usize, usize)> {
        if !self.bounds.contains(p) {
            return None;
        }
        let w = self.bounds.width().max(1e-9);
        let h = self.bounds.height().max(1e-9);
        let x = ((p.x - self.bounds.min_x) / w * (self.width - 1) as f64).round() as usize;
        // The y axis is flipped: north (large y) is the top row.
        let y_frac = (p.y - self.bounds.min_y) / h;
        let y = ((1.0 - y_frac) * (self.height - 1) as f64).round() as usize;
        Some((x.min(self.width - 1), y.min(self.height - 1)))
    }

    /// Plots a glyph at a field point. Points outside the bounds are
    /// ignored. Later plots overwrite earlier ones.
    pub fn plot(&mut self, p: &Point, glyph: char) {
        if let Some((x, y)) = self.cell_of(p) {
            self.cells[y * self.width + x] = glyph;
        }
    }

    /// Plots a glyph only when the target cell is currently empty, so node
    /// markers are not clobbered by route dots.
    pub fn plot_if_empty(&mut self, p: &Point, glyph: char) {
        if let Some((x, y)) = self.cell_of(p) {
            let cell = &mut self.cells[y * self.width + x];
            if *cell == ' ' {
                *cell = glyph;
            }
        }
    }

    /// Draws a straight segment by sampling points every half cell.
    pub fn draw_segment(&mut self, a: &Point, b: &Point, glyph: char) {
        let length = a.distance(b);
        let step = (self.bounds.width() / self.width as f64)
            .min(self.bounds.height() / self.height as f64)
            .max(1e-9)
            * 0.5;
        let samples = (length / step).ceil() as usize;
        for i in 0..=samples.max(1) {
            let t = i as f64 / samples.max(1) as f64;
            self.plot_if_empty(&a.lerp(b, t), glyph);
        }
    }

    /// Renders the canvas into a newline-separated string with a border.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity((self.width + 3) * (self.height + 2));
        out.push('+');
        out.push_str(&"-".repeat(self.width));
        out.push_str("+\n");
        for y in 0..self.height {
            out.push('|');
            for x in 0..self.width {
                out.push(self.cells[y * self.width + x]);
            }
            out.push_str("|\n");
        }
        out.push('+');
        out.push_str(&"-".repeat(self.width));
        out.push('+');
        out
    }
}

fn node_glyph(kind: NodeKind, weight: u32) -> char {
    match kind {
        NodeKind::Sink => 'S',
        NodeKind::RechargeStation => 'R',
        NodeKind::Target => {
            if weight >= 2 {
                char::from_digit(weight.min(9), 10).unwrap_or('V')
            } else {
                'o'
            }
        }
    }
}

/// Renders the nodes of a scenario onto a canvas of the given size.
pub fn render_scenario(scenario: &Scenario, width: usize, height: usize) -> String {
    let mut canvas = AsciiCanvas::new(scenario.field().bounds(), width, height);
    for node in scenario.field().nodes() {
        canvas.plot(&node.position, node_glyph(node.kind, node.weight.value()));
    }
    canvas.render()
}

/// Renders a plan on top of the scenario: route edges as `.`, waypoints as
/// `*`, nodes with their glyphs. Only the first mule's itinerary is drawn
/// (all TCTP mules share the same route).
pub fn render_plan(scenario: &Scenario, plan: &PatrolPlan, width: usize, height: usize) -> String {
    let mut canvas = AsciiCanvas::new(scenario.field().bounds(), width, height);
    // Nodes first so they keep their glyphs.
    for node in scenario.field().nodes() {
        canvas.plot(&node.position, node_glyph(node.kind, node.weight.value()));
    }
    if let Some(it) = plan.itineraries.first() {
        let points: Vec<Point> = it.cycle.iter().map(|w| w.position).collect();
        let n = points.len();
        for i in 0..n {
            let a = points[i];
            let b = points[(i + 1) % n.max(1)];
            canvas.draw_segment(&a, &b, '.');
        }
        for p in &points {
            canvas.plot_if_empty(p, '*');
        }
    }
    canvas.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mule_workload::{ScenarioConfig, WeightSpec};
    use patrol_core::{BTctp, Planner};

    fn scenario() -> Scenario {
        ScenarioConfig::paper_default()
            .with_targets(10)
            .with_weights(WeightSpec::UniformVips {
                count: 2,
                weight: 3,
            })
            .with_recharge_station(true)
            .with_seed(5)
            .generate()
    }

    #[test]
    fn canvas_maps_corners_to_corner_cells() {
        let c = AsciiCanvas::new(BoundingBox::square(800.0), 40, 20);
        assert_eq!(c.cell_of(&Point::new(0.0, 0.0)), Some((0, 19)));
        assert_eq!(c.cell_of(&Point::new(800.0, 800.0)), Some((39, 0)));
        assert_eq!(c.cell_of(&Point::new(0.0, 800.0)), Some((0, 0)));
        assert_eq!(c.cell_of(&Point::new(900.0, 0.0)), None);
        assert_eq!(c.width(), 40);
        assert_eq!(c.height(), 20);
    }

    #[test]
    fn north_is_rendered_on_the_top_row() {
        let mut c = AsciiCanvas::new(BoundingBox::square(100.0), 10, 10);
        c.plot(&Point::new(50.0, 99.0), 'N');
        c.plot(&Point::new(50.0, 1.0), 'X');
        let rendered = c.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert!(lines[1].contains('N'), "north marker on the first data row");
        assert!(lines[lines.len() - 2].contains('X'));
    }

    #[test]
    fn plot_if_empty_does_not_clobber_markers() {
        let mut c = AsciiCanvas::new(BoundingBox::square(100.0), 10, 10);
        c.plot(&Point::new(50.0, 50.0), 'S');
        c.plot_if_empty(&Point::new(50.0, 50.0), '.');
        assert!(c.render().contains('S'));
        assert!(!c.render().contains('.'));
    }

    #[test]
    fn scenario_rendering_contains_all_node_glyphs() {
        let s = scenario();
        let art = render_scenario(&s, 60, 30);
        assert!(art.contains('S'), "sink glyph");
        assert!(art.contains('R'), "recharge station glyph");
        assert!(art.contains('o'), "normal target glyph");
        assert!(art.contains('3'), "VIP weight glyph");
        // Bordered output: every line starts and ends with the frame.
        for line in art.lines() {
            assert!(line.starts_with('|') || line.starts_with('+'));
        }
    }

    #[test]
    fn plan_rendering_draws_route_edges() {
        let s = scenario();
        let plan = BTctp::new().plan(&s).unwrap();
        let art = render_plan(&s, &plan, 60, 30);
        assert!(art.contains('.'), "route edges are drawn");
        assert!(art.contains('S'), "sink still visible");
        assert_eq!(art.lines().count(), 32, "30 rows plus two border rows");
    }

    #[test]
    fn degenerate_canvas_sizes_are_clamped() {
        let c = AsciiCanvas::new(BoundingBox::square(10.0), 0, 0);
        assert!(c.width() >= 2 && c.height() >= 2);
        assert!(!c.render().is_empty());
    }
}
