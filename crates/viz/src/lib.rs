//! # mule-viz
//!
//! Dependency-free visualisation of scenarios and patrol plans:
//!
//! * [`AsciiCanvas`] / [`render_scenario`] / [`render_plan`] — terminal
//!   rendering of the monitoring field, its nodes and the patrolling routes,
//!   used by the examples and the `patrolctl` CLI.
//! * [`svg`] — standalone SVG export of a scenario plus plan, for inspecting
//!   weighted patrolling paths and recharge detours in a browser.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod ascii;
pub mod svg;

pub use ascii::{render_plan, render_scenario, AsciiCanvas};
pub use svg::{plan_to_svg, scenario_to_svg, SvgStyle};
