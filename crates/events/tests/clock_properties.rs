//! Property tests of the SimClock's ordering guarantees: pops are in
//! nondecreasing time order, ties break deterministically by
//! (kind priority, subject, insertion), and identical schedules drain
//! identically.

use mule_events::{EventKind, EventSubject, SimClock};
use mule_net::NodeId;
use proptest::prelude::*;

/// A compact, generatable description of one scheduled event.
fn event_strategy() -> impl Strategy<Value = (f64, usize, usize)> {
    // (time, kind selector, subject selector). Times are drawn from a
    // small set so same-timestamp collisions actually happen.
    (0.0..50.0f64, 0usize..8, 0usize..9)
}

fn kind_of(selector: usize) -> EventKind {
    match selector {
        0 => EventKind::TargetFailure,
        1 => EventKind::TargetRecovery,
        2 => EventKind::TargetArrival,
        3 => EventKind::MuleBreakdown,
        4 => EventKind::SpeedWindowEnd { factor: 0.5 },
        5 => EventKind::SpeedWindowStart { factor: 0.5 },
        6 => EventKind::Replan,
        _ => EventKind::WaypointArrival,
    }
}

fn subject_of(selector: usize) -> EventSubject {
    match selector {
        0 => EventSubject::Global,
        s if s < 5 => EventSubject::Mule(s - 1),
        s => EventSubject::Target(NodeId(s - 5)),
    }
}

fn subject_key(subject: EventSubject) -> (u8, usize) {
    match subject {
        EventSubject::Global => (0, 0),
        EventSubject::Mule(m) => (1, m),
        EventSubject::Target(id) => (2, id.index()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Coarsening times to steps of 5 forces many exact duplicates, so the
    /// tie-break path is exercised on almost every case.
    #[test]
    fn pops_are_in_nondecreasing_time_then_kind_then_subject_order(
        events in prop::collection::vec(event_strategy(), 0..40)
    ) {
        let mut clock = SimClock::new();
        for &(time, kind, subject) in &events {
            let time = (time / 5.0).floor() * 5.0;
            clock.schedule_at(time, subject_of(subject), kind_of(kind));
        }
        let mut drained = Vec::new();
        while let Some(ev) = clock.next() {
            drained.push(ev);
        }
        prop_assert_eq!(drained.len(), events.len());
        for w in drained.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            prop_assert!(a.time_s <= b.time_s, "time order violated: {} > {}", a.time_s, b.time_s);
            if a.time_s == b.time_s {
                let ka = (a.kind.priority(), subject_key(a.subject));
                let kb = (b.kind.priority(), subject_key(b.subject));
                prop_assert!(ka <= kb,
                    "tie-break violated at t={}: {:?} then {:?}", a.time_s, a, b);
            }
        }
    }

    /// Two clocks fed the same schedule drain identically — event identity
    /// included, not just timestamps.
    #[test]
    fn identical_schedules_drain_identically(
        events in prop::collection::vec(event_strategy(), 0..40)
    ) {
        let drain = || {
            let mut clock = SimClock::new();
            for &(time, kind, subject) in &events {
                clock.schedule_at(time, subject_of(subject), kind_of(kind));
            }
            let mut out = Vec::new();
            clock.run_until(f64::MAX, |_, ev| out.push(ev));
            out
        };
        let a = drain();
        let b = drain();
        prop_assert_eq!(a, b);
    }

    /// The drain loop respects any horizon: everything at or before it
    /// fires, everything after it stays queued.
    #[test]
    fn run_until_splits_exactly_at_the_horizon(
        events in prop::collection::vec(event_strategy(), 0..40),
        horizon in 0.0..60.0f64
    ) {
        let mut clock = SimClock::new();
        for &(time, kind, subject) in &events {
            clock.schedule_at(time, subject_of(subject), kind_of(kind));
        }
        let mut fired = Vec::new();
        clock.run_until(horizon, |_, ev| fired.push(ev.time_s));
        let expected = events.iter().filter(|(t, _, _)| *t <= horizon).count();
        prop_assert_eq!(fired.len(), expected);
        prop_assert!(fired.iter().all(|&t| t <= horizon));
        prop_assert_eq!(clock.len(), events.len() - expected);
    }
}
