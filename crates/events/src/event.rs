//! Typed events and their deterministic ordering keys.

use mule_net::NodeId;

/// Who (or what) an event is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventSubject {
    /// A specific data mule, by scenario mule index.
    Mule(usize),
    /// A specific field node (target, sink or station).
    Target(NodeId),
    /// The whole simulation (speed windows, replans, …).
    Global,
}

impl EventSubject {
    /// Total-order key used to break ties among same-time, same-kind
    /// events: globals first, then mules by index, then targets by id.
    pub(crate) fn order_key(&self) -> (u8, usize) {
        match *self {
            EventSubject::Global => (0, 0),
            EventSubject::Mule(m) => (1, m),
            EventSubject::Target(id) => (2, id.index()),
        }
    }
}

/// What happens when an event fires.
///
/// The declaration order below is meaningful: at equal timestamps events
/// pop in ascending [`EventKind::priority`] order, so every disruption and
/// the replan it triggers apply *before* a waypoint arrival at the same
/// instant — an arriving mule always observes the post-disruption world.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A target stops producing data (hardware failure, jamming, …).
    TargetFailure,
    /// A previously failed target comes back online.
    TargetRecovery,
    /// A target joins the field late (it existed but was inactive until
    /// now; its buffer starts filling at this instant).
    TargetArrival,
    /// A mule permanently breaks down and leaves the fleet.
    MuleBreakdown,
    /// A speed window opens: `factor` joins the set of active speed
    /// multipliers. Windows may overlap; the effective fleet speed is the
    /// product of all open factors, applied to legs scheduled while open.
    SpeedWindowStart {
        /// Multiplier this window applies to the nominal mule speed.
        factor: f64,
    },
    /// A speed window closes: one open window with this `factor` ends.
    /// Carrying the factor (instead of "restore to 1.0") is what lets
    /// overlapping windows unwind correctly.
    SpeedWindowEnd {
        /// The factor the closing window had applied.
        factor: f64,
    },
    /// Re-run the planner over the surviving world. Scheduled by the
    /// engine alongside disruptions so multiple same-instant disruptions
    /// coalesce into one replan.
    Replan,
    /// A mule reaches the next waypoint of its itinerary.
    WaypointArrival,
}

impl EventKind {
    /// Same-timestamp scheduling priority (lower pops first). Window ends
    /// order before window starts so a back-to-back close/open at one
    /// instant never momentarily stacks both factors.
    pub fn priority(&self) -> u8 {
        match self {
            EventKind::TargetFailure => 0,
            EventKind::TargetRecovery => 1,
            EventKind::TargetArrival => 2,
            EventKind::MuleBreakdown => 3,
            EventKind::SpeedWindowEnd { .. } => 4,
            EventKind::SpeedWindowStart { .. } => 5,
            EventKind::Replan => 6,
            EventKind::WaypointArrival => 7,
        }
    }
}

/// A fired event, as seen by the drain-loop handler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Simulation time the event fires, seconds.
    pub time_s: f64,
    /// Who the event is about.
    pub subject: EventSubject,
    /// What the event does.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_priorities_put_disruptions_before_arrivals() {
        assert!(EventKind::TargetFailure.priority() < EventKind::WaypointArrival.priority());
        assert!(EventKind::MuleBreakdown.priority() < EventKind::WaypointArrival.priority());
        assert!(
            EventKind::SpeedWindowEnd { factor: 0.5 }.priority()
                < EventKind::SpeedWindowStart { factor: 0.5 }.priority(),
            "a window closing must unwind before one opening at the same instant"
        );
        assert!(
            EventKind::SpeedWindowStart { factor: 0.5 }.priority() < EventKind::Replan.priority()
        );
        assert!(EventKind::Replan.priority() < EventKind::WaypointArrival.priority());
    }

    #[test]
    fn subject_keys_order_globals_mules_targets() {
        assert!(EventSubject::Global.order_key() < EventSubject::Mule(0).order_key());
        assert!(EventSubject::Mule(3).order_key() < EventSubject::Mule(4).order_key());
        assert!(
            EventSubject::Mule(usize::MAX).order_key()
                < EventSubject::Target(NodeId(0)).order_key()
        );
        assert!(
            EventSubject::Target(NodeId(1)).order_key()
                < EventSubject::Target(NodeId(2)).order_key()
        );
    }
}
