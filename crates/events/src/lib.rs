//! # mule-events
//!
//! A reusable discrete-event timeline for the data-mule patrolling
//! workspace: a binary-heap simulation clock ([`SimClock`]) over typed,
//! subject-targeted events with fully deterministic ordering.
//!
//! The design follows the classic DES shape (a priority queue of
//! `(time, event)` pairs drained in time order, where handling an event may
//! schedule follow-up events) with two hard guarantees the simulator's
//! reproducibility depends on:
//!
//! 1. **Total time order.** Event times are `f64` seconds compared with
//!    [`f64::total_cmp`], so a NaN can never silently corrupt the heap
//!    order (it sorts to a defined position instead of making comparisons
//!    inconsistent).
//! 2. **Deterministic tie-breaking.** Events at the same timestamp pop in
//!    `(kind priority, subject key, insertion sequence)` order. Disruptions
//!    apply before waypoint arrivals at the same instant, mules resolve in
//!    index order, and two otherwise-identical events resolve in the order
//!    they were scheduled — never in allocator or hash order.
//!
//! ```
//! use mule_events::{EventKind, EventSubject, SimClock};
//!
//! let mut clock = SimClock::new();
//! clock.schedule_at(10.0, EventSubject::Mule(1), EventKind::WaypointArrival);
//! clock.schedule_at(10.0, EventSubject::Mule(0), EventKind::WaypointArrival);
//! let mut order = Vec::new();
//! clock.run_until(100.0, |_clock, ev| order.push(ev.subject));
//! assert_eq!(order, vec![EventSubject::Mule(0), EventSubject::Mule(1)]);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod clock;
pub mod event;

pub use clock::SimClock;
pub use event::{Event, EventKind, EventSubject};
