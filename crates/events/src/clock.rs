//! The binary-heap simulation clock.

use crate::event::{Event, EventKind, EventSubject};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One entry of the clock's heap: an event plus the insertion sequence
/// number that makes the ordering total.
#[derive(Debug, Clone, Copy)]
struct Scheduled {
    event: Event,
    seq: u64,
}

impl Scheduled {
    /// `true` when `self` should fire before `other`.
    fn fires_before(&self, other: &Self) -> bool {
        match self.event.time_s.total_cmp(&other.event.time_s) {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => {
                let lhs = (
                    self.event.kind.priority(),
                    self.event.subject.order_key(),
                    self.seq,
                );
                let rhs = (
                    other.event.kind.priority(),
                    other.event.subject.order_key(),
                    other.seq,
                );
                lhs < rhs
            }
        }
    }
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: `BinaryHeap` is a max-heap, we want the earliest event
        // on top. `seq` is unique, so this ordering is total and
        // consistent with `eq`.
        if self.fires_before(other) {
            Ordering::Greater
        } else if other.fires_before(self) {
            Ordering::Less
        } else {
            Ordering::Equal
        }
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A discrete-event simulation clock.
///
/// Events are scheduled with [`SimClock::schedule_at`] /
/// [`SimClock::schedule_in`] and drained in deterministic
/// `(time, kind, subject, insertion)` order by [`SimClock::next`] or the
/// [`SimClock::run_until`] drain loop. The clock never runs backwards:
/// events scheduled before the current time fire *at* the current time.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    heap: BinaryHeap<Scheduled>,
    now_s: f64,
    next_seq: u64,
    fired: u64,
}

impl SimClock {
    /// A clock at time zero with an empty timeline.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// A clock starting at `start_s` seconds.
    pub fn starting_at(start_s: f64) -> Self {
        SimClock {
            now_s: start_s,
            ..SimClock::default()
        }
    }

    /// Current simulation time, seconds. Advances as events fire.
    #[inline]
    pub fn now(&self) -> f64 {
        self.now_s
    }

    /// Number of events currently scheduled.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are scheduled.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of events fired so far.
    #[inline]
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Schedules `kind` on `subject` at absolute time `time_s`. Times in
    /// the past are clamped to the current time; non-finite times are
    /// rejected (returns `false`) so a NaN arithmetic bug upstream cannot
    /// stall the timeline.
    pub fn schedule_at(&mut self, time_s: f64, subject: EventSubject, kind: EventKind) -> bool {
        if !time_s.is_finite() {
            return false;
        }
        let event = Event {
            time_s: time_s.max(self.now_s),
            subject,
            kind,
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { event, seq });
        true
    }

    /// Schedules `kind` on `subject` after `delay_s` seconds (negative
    /// delays clamp to "now").
    pub fn schedule_in(&mut self, delay_s: f64, subject: EventSubject, kind: EventKind) -> bool {
        self.schedule_at(self.now_s + delay_s.max(0.0), subject, kind)
    }

    /// Time of the next scheduled event, if any.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.event.time_s)
    }

    /// Pops the next event and advances the clock to its time.
    // Deliberately named like `Iterator::next`; the clock is not an
    // iterator because handlers need `&mut self` between pops.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Event> {
        let scheduled = self.heap.pop()?;
        self.now_s = scheduled.event.time_s;
        self.fired += 1;
        Some(scheduled.event)
    }

    /// Drain loop: fires every event with `time_s <= horizon_s`, in order,
    /// handing each to `handler` together with `&mut self` so handlers can
    /// schedule follow-up events. Events beyond the horizon stay queued.
    /// Returns the number of events fired by this call.
    pub fn run_until<F>(&mut self, horizon_s: f64, mut handler: F) -> u64
    where
        F: FnMut(&mut SimClock, Event),
    {
        let mut count = 0;
        while let Some(next_time) = self.peek_time() {
            if next_time.total_cmp(&horizon_s) == Ordering::Greater {
                break;
            }
            // `peek_time` is `Some`, so `next()` cannot return `None`.
            let event = self.next().expect("non-empty heap");
            handler(self, event);
            count += 1;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mule_net::NodeId;

    #[test]
    fn events_pop_in_time_order() {
        let mut clock = SimClock::new();
        clock.schedule_at(5.0, EventSubject::Mule(0), EventKind::WaypointArrival);
        clock.schedule_at(1.0, EventSubject::Mule(1), EventKind::WaypointArrival);
        clock.schedule_at(3.0, EventSubject::Mule(2), EventKind::WaypointArrival);
        let times: Vec<f64> = std::iter::from_fn(|| clock.next().map(|e| e.time_s)).collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
        assert_eq!(clock.now(), 5.0);
        assert_eq!(clock.fired(), 3);
    }

    #[test]
    fn same_time_ties_break_by_kind_then_subject_then_insertion() {
        let mut clock = SimClock::new();
        clock.schedule_at(2.0, EventSubject::Mule(1), EventKind::WaypointArrival);
        clock.schedule_at(2.0, EventSubject::Mule(0), EventKind::WaypointArrival);
        clock.schedule_at(
            2.0,
            EventSubject::Target(NodeId(3)),
            EventKind::TargetFailure,
        );
        clock.schedule_at(2.0, EventSubject::Global, EventKind::Replan);
        let kinds: Vec<(EventKind, EventSubject)> =
            std::iter::from_fn(|| clock.next().map(|e| (e.kind, e.subject))).collect();
        assert_eq!(
            kinds,
            vec![
                (EventKind::TargetFailure, EventSubject::Target(NodeId(3))),
                (EventKind::Replan, EventSubject::Global),
                (EventKind::WaypointArrival, EventSubject::Mule(0)),
                (EventKind::WaypointArrival, EventSubject::Mule(1)),
            ]
        );
    }

    #[test]
    fn identical_events_pop_in_insertion_order() {
        let mut clock = SimClock::new();
        for _ in 0..3 {
            clock.schedule_at(1.0, EventSubject::Mule(0), EventKind::WaypointArrival);
        }
        let mut seen = 0;
        clock.run_until(10.0, |_, _| seen += 1);
        assert_eq!(seen, 3);
    }

    #[test]
    fn run_until_respects_the_horizon_and_keeps_later_events() {
        let mut clock = SimClock::new();
        clock.schedule_at(1.0, EventSubject::Global, EventKind::Replan);
        clock.schedule_at(10.0, EventSubject::Global, EventKind::Replan);
        let fired = clock.run_until(5.0, |_, _| {});
        assert_eq!(fired, 1);
        assert_eq!(clock.len(), 1);
        assert_eq!(clock.peek_time(), Some(10.0));
    }

    #[test]
    fn handlers_can_schedule_follow_ups() {
        let mut clock = SimClock::new();
        clock.schedule_at(0.0, EventSubject::Mule(0), EventKind::WaypointArrival);
        let mut times = Vec::new();
        clock.run_until(10.0, |clock, ev| {
            times.push(ev.time_s);
            if ev.time_s < 8.0 {
                clock.schedule_in(3.0, ev.subject, ev.kind);
            }
        });
        assert_eq!(times, vec![0.0, 3.0, 6.0, 9.0]);
        assert!(clock.is_empty());
    }

    #[test]
    fn past_and_nonfinite_times_are_handled_totally() {
        let mut clock = SimClock::starting_at(100.0);
        assert!(clock.schedule_at(5.0, EventSubject::Global, EventKind::Replan));
        assert_eq!(clock.peek_time(), Some(100.0), "past events clamp to now");
        assert!(!clock.schedule_at(f64::NAN, EventSubject::Global, EventKind::Replan));
        assert!(!clock.schedule_at(f64::INFINITY, EventSubject::Global, EventKind::Replan));
        assert_eq!(clock.len(), 1);
        assert!(clock.schedule_in(-10.0, EventSubject::Global, EventKind::Replan));
        assert_eq!(clock.peek_time(), Some(100.0));
    }

    #[test]
    fn starting_clock_state_is_clean() {
        let clock = SimClock::new();
        assert_eq!(clock.now(), 0.0);
        assert!(clock.is_empty());
        assert_eq!(clock.len(), 0);
        assert_eq!(clock.peek_time(), None);
    }
}
