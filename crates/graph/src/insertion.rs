//! Insertion-based tour construction.
//!
//! Three variants:
//!
//! * [`convex_hull_insertion`] — the "CHB" construction of reference \[5\]
//!   that every TCTP planner starts from: begin with the convex hull of the
//!   targets (already a tour of the boundary points) and repeatedly insert
//!   the interior point whose cheapest insertion position is cheapest. This
//!   is the **exact** all-pairs formulation (`O(n³)` worst case), kept
//!   byte-for-byte stable because golden tests pin its tours.
//! * [`convex_hull_insertion_incremental`] — the same greedy rule made
//!   scalable: each interior point caches its best `(edge, cost)` in a
//!   lazy-invalidation min-heap, so an insertion only re-scores points whose
//!   cached edge was split (plus an `O(remaining)` check of the two new
//!   edges). `O(n² log n)` worst case, near `O(n log n)` in practice, and no
//!   dense distance matrix. Tie-breaking differs from the exact variant
//!   (heap order vs. scan order), so tours can differ *by bytes* on exact
//!   cost ties while the greedy rule — and hence quality — is identical.
//! * [`cheapest_insertion`] — classic cheapest insertion seeded with the
//!   farthest-apart pair (found via convex-hull rotating calipers, with the
//!   `O(n²)` matrix scan as the degenerate-hull fallback); used for
//!   cross-checking and the ablation bench.

use crate::distance_matrix::DistanceMatrix;
use crate::tour::Tour;
use mule_geom::{convex_hull, hull_diameter, Point};
use std::collections::BinaryHeap;

/// Cost of inserting point `k` between consecutive tour points `i` and `j`:
/// `d(i,k) + d(k,j) − d(i,j)`.
#[inline]
fn insertion_cost(dm: &DistanceMatrix, i: usize, j: usize, k: usize) -> f64 {
    dm.get(i, k) + dm.get(k, j) - dm.get(i, j)
}

/// Finds the cheapest position (edge index in the current order) at which to
/// insert `k`, returning `(position, cost)`.
fn cheapest_position(dm: &DistanceMatrix, order: &[usize], k: usize) -> (usize, f64) {
    let n = order.len();
    debug_assert!(n >= 1);
    if n == 1 {
        return (0, 2.0 * dm.get(order[0], k));
    }
    let mut best_pos = 0;
    let mut best_cost = f64::INFINITY;
    for pos in 0..n {
        let i = order[pos];
        let j = order[(pos + 1) % n];
        let c = insertion_cost(dm, i, j, k);
        if c < best_cost {
            best_cost = c;
            best_pos = pos;
        }
    }
    (best_pos, best_cost)
}

/// Convex-hull insertion ("CHB" construction).
///
/// 1. The convex hull of the points forms the initial sub-tour.
/// 2. While interior points remain, pick the (point, edge) pair with the
///    globally cheapest insertion cost and splice the point into that edge.
///
/// Returns a trivial tour for fewer than two points.
pub fn convex_hull_insertion(points: &[Point], dm: &DistanceMatrix) -> Tour {
    let n = points.len();
    if n <= 2 {
        return Tour::identity(n);
    }

    let (mut order, in_tour) = hull_seed(points);

    // Repeatedly insert the remaining point with the cheapest insertion.
    let mut remaining: Vec<usize> = (0..n).filter(|&i| !in_tour[i]).collect();
    while !remaining.is_empty() {
        let mut best: Option<(usize, usize, f64)> = None; // (remaining slot, pos, cost)
        for (slot, &k) in remaining.iter().enumerate() {
            let (pos, cost) = cheapest_position(dm, &order, k);
            if best.map(|(_, _, b)| cost < b).unwrap_or(true) {
                best = Some((slot, pos, cost));
            }
        }
        let (slot, pos, _) = best.expect("remaining is non-empty");
        let k = remaining.swap_remove(slot);
        order.insert((pos + 1).min(order.len()), k);
    }

    Tour::new(order)
}

/// Seeds the insertion order with the convex-hull vertices mapped back to
/// their indices in `points`. The hull returns coordinates, so match by
/// proximity (points are deduplicated by the hull, so ties pick the first
/// matching index deterministically). Degenerate hulls (all points
/// collinear) may cover < 3 points; an empty mapping falls back to point 0.
fn hull_seed(points: &[Point]) -> (Vec<usize>, Vec<bool>) {
    let n = points.len();
    let hull = convex_hull(points);
    let mut in_tour = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    for hp in &hull {
        if let Some(idx) = points
            .iter()
            .enumerate()
            .filter(|(i, p)| !in_tour[*i] && p.distance_squared(hp) <= 1e-18)
            .map(|(i, _)| i)
            .next()
        {
            in_tour[idx] = true;
            order.push(idx);
        }
    }
    if order.is_empty() {
        order.push(0);
        in_tour[0] = true;
    }
    (order, in_tour)
}

/// A pending `(cost, point, edge)` candidate in the incremental insertion's
/// lazy-invalidation heap. Ordered so the *smallest* cost pops first from
/// the `BinaryHeap` (which is a max-heap), with `(point, edge)` as the
/// deterministic tie-break.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PendingInsertion {
    cost: f64,
    point: usize,
    /// The edge `(from, to)` the cost was computed for; stale once the tour
    /// no longer contains it.
    from: usize,
    to: usize,
}

impl Eq for PendingInsertion {}

impl Ord for PendingInsertion {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed so the cheapest insertion is the heap maximum.
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.point.cmp(&self.point))
            .then_with(|| other.from.cmp(&self.from))
            .then_with(|| other.to.cmp(&self.to))
    }
}

impl PartialOrd for PendingInsertion {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Convex-hull insertion with incremental re-scoring — the scalable twin of
/// [`convex_hull_insertion`].
///
/// The tour lives in a successor-linked list (`next[i]` = the point visited
/// after `i`), so splicing is `O(1)`. Every remaining interior point caches
/// its cheapest `(edge, cost)`; candidates sit in a min-heap and are
/// validated lazily on pop:
///
/// * if the cached edge was split by an earlier insertion, the point is
///   re-scored over the current cycle and re-queued;
/// * if the entry is superseded (a cheaper cost was recorded later), it is
///   discarded.
///
/// After each insertion splits edge `(e, f)` into `(e, k)`/`(k, f)`, the two
/// *new* edges are offered to every remaining point (`O(remaining)`), which
/// keeps every cached cost equal to the true minimum over the current
/// edges — so the greedy selection rule is exactly that of the all-pairs
/// variant, up to tie order.
///
/// Works straight off the point coordinates; no distance matrix needed.
pub fn convex_hull_insertion_incremental(points: &[Point]) -> Tour {
    let n = points.len();
    if n <= 2 {
        return Tour::identity(n);
    }

    let (order, in_tour) = hull_seed(points);
    let anchor = order[0];

    // Successor links of the current (partial) cycle. A single seeded point
    // forms the self-loop (a, a), whose generic insertion cost
    // `d(a,k) + d(k,a) − d(a,a)` is exactly the 2·d(a,k) the exact variant
    // special-cases.
    let mut next = vec![usize::MAX; n];
    for (s, &i) in order.iter().enumerate() {
        next[i] = order[(s + 1) % order.len()];
    }

    let d = |i: usize, j: usize| points[i].distance(&points[j]);
    let edge_cost = |i: usize, j: usize, k: usize| d(i, k) + d(k, j) - d(i, j);

    // Best-known insertion per remaining point, mirrored in the heap.
    let mut best_cost = vec![f64::INFINITY; n];
    let mut heap: BinaryHeap<PendingInsertion> = BinaryHeap::with_capacity(n);
    let mut remaining: Vec<usize> = (0..n).filter(|&i| !in_tour[i]).collect();
    let mut is_remaining = vec![false; n];
    for &k in &remaining {
        is_remaining[k] = true;
    }

    // Scores `k` against every edge of the current cycle (the recompute
    // path for stale caches) and queues the result.
    let rescore = |k: usize,
                   next: &[usize],
                   best_cost: &mut [f64],
                   heap: &mut BinaryHeap<PendingInsertion>| {
        let mut best = PendingInsertion {
            cost: f64::INFINITY,
            point: k,
            from: anchor,
            to: next[anchor],
        };
        let mut i = anchor;
        loop {
            let j = next[i];
            let c = edge_cost(i, j, k);
            if c < best.cost {
                best = PendingInsertion {
                    cost: c,
                    point: k,
                    from: i,
                    to: j,
                };
            }
            i = j;
            if i == anchor {
                break;
            }
        }
        best_cost[k] = best.cost;
        heap.push(best);
    };

    for &k in &remaining {
        rescore(k, &next, &mut best_cost, &mut heap);
    }

    while !remaining.is_empty() {
        let entry = heap.pop().expect("heap mirrors remaining points");
        let k = entry.point;
        if !is_remaining[k] {
            continue; // already inserted
        }
        if entry.cost.to_bits() != best_cost[k].to_bits() {
            continue; // superseded by a cheaper offer
        }
        if next[entry.from] != entry.to {
            // Cached edge was split since this entry was queued: re-score
            // over the current cycle (the only non-O(1) validation path).
            rescore(k, &next, &mut best_cost, &mut heap);
            continue;
        }

        // Splice k into (from, to).
        let (e, f) = (entry.from, entry.to);
        next[e] = k;
        next[k] = f;
        is_remaining[k] = false;
        let slot = remaining.iter().position(|&r| r == k).expect("tracked");
        remaining.swap_remove(slot);

        // Offer the two new edges (e, k) and (k, f) to every remaining
        // point; a cheaper offer supersedes the cache.
        for &q in &remaining {
            let via_e = edge_cost(e, k, q);
            let via_f = edge_cost(k, f, q);
            let (cost, from, to) = if via_e <= via_f {
                (via_e, e, k)
            } else {
                (via_f, k, f)
            };
            if cost < best_cost[q] {
                best_cost[q] = cost;
                heap.push(PendingInsertion {
                    cost,
                    point: q,
                    from,
                    to,
                });
            }
        }
    }

    // Unlink the cycle back into an order vector, starting at the hull
    // anchor for determinism.
    let mut final_order = Vec::with_capacity(n);
    let mut i = anchor;
    loop {
        final_order.push(i);
        i = next[i];
        if i == anchor {
            break;
        }
    }
    debug_assert_eq!(final_order.len(), n);
    Tour::new(final_order)
}

/// Maps one hull vertex back to its index in `points` (first match wins,
/// like the hull seeding).
fn hull_point_index(points: &[Point], hp: &Point) -> Option<usize> {
    points
        .iter()
        .enumerate()
        .find(|(_, p)| p.distance_squared(hp) <= 1e-18)
        .map(|(i, _)| i)
}

/// The farthest-apart pair of `points`, found in `O(n log n)` via the
/// convex hull's rotating-calipers diameter; falls back to the `O(n²)`
/// matrix scan when the hull is degenerate (< 2 usable vertices).
fn farthest_pair_via_hull(points: &[Point], dm: &DistanceMatrix) -> Option<(usize, usize)> {
    let hull = convex_hull(points);
    if let Some((ha, hb)) = hull_diameter(&hull) {
        if let (Some(a), Some(b)) = (
            hull_point_index(points, &hull[ha]),
            hull_point_index(points, &hull[hb]),
        ) {
            if a != b {
                return Some((a.min(b), a.max(b)));
            }
        }
    }
    dm.farthest_pair().map(|(a, b, _)| (a, b))
}

/// Cheapest insertion seeded with the farthest-apart pair of points.
pub fn cheapest_insertion(points: &[Point], dm: &DistanceMatrix) -> Tour {
    let n = points.len();
    if n <= 2 {
        return Tour::identity(n);
    }
    let (a, b) = farthest_pair_via_hull(points, dm).expect("n >= 2");
    let mut order = vec![a, b];
    let mut in_tour = vec![false; n];
    in_tour[a] = true;
    in_tour[b] = true;

    let mut remaining: Vec<usize> = (0..n).filter(|&i| !in_tour[i]).collect();
    while !remaining.is_empty() {
        let mut best: Option<(usize, usize, f64)> = None;
        for (slot, &k) in remaining.iter().enumerate() {
            let (pos, cost) = cheapest_position(dm, &order, k);
            if best.map(|(_, _, b)| cost < b).unwrap_or(true) {
                best = Some((slot, pos, cost));
            }
        }
        let (slot, pos, _) = best.expect("remaining is non-empty");
        let k = remaining.swap_remove(slot);
        order.insert((pos + 1).min(order.len()), k);
    }
    Tour::new(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_with_center() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(100.0, 100.0),
            Point::new(0.0, 100.0),
            Point::new(50.0, 50.0),
        ]
    }

    #[test]
    fn hull_insertion_yields_valid_tour_covering_all_points() {
        let pts = square_with_center();
        let dm = DistanceMatrix::from_points(&pts);
        let tour = convex_hull_insertion(&pts, &dm);
        assert!(tour.is_valid());
        assert_eq!(tour.len(), 5);
    }

    #[test]
    fn hull_insertion_on_pure_hull_matches_hull_perimeter() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(100.0, 100.0),
            Point::new(0.0, 100.0),
        ];
        let dm = DistanceMatrix::from_points(&pts);
        let tour = convex_hull_insertion(&pts, &dm);
        assert!((tour.length(&pts) - 400.0).abs() < 1e-9);
    }

    #[test]
    fn cheapest_insertion_yields_valid_tour() {
        let pts = square_with_center();
        let dm = DistanceMatrix::from_points(&pts);
        let tour = cheapest_insertion(&pts, &dm);
        assert!(tour.is_valid());
        assert_eq!(tour.len(), 5);
        // Both heuristics should be close on this tiny instance.
        let chb = convex_hull_insertion(&pts, &dm).length(&pts);
        assert!(tour.length(&pts) <= chb * 1.5);
    }

    #[test]
    fn degenerate_inputs_give_trivial_tours() {
        for pts in [
            vec![],
            vec![Point::ORIGIN],
            vec![Point::ORIGIN, Point::new(1.0, 0.0)],
        ] {
            let dm = DistanceMatrix::from_points(&pts);
            let a = convex_hull_insertion(&pts, &dm);
            let b = cheapest_insertion(&pts, &dm);
            assert_eq!(a.len(), pts.len());
            assert_eq!(b.len(), pts.len());
            assert!(a.is_valid() && b.is_valid());
        }
    }

    #[test]
    fn collinear_points_are_still_all_visited() {
        let pts: Vec<Point> = (0..6).map(|i| Point::new(10.0 * i as f64, 5.0)).collect();
        let dm = DistanceMatrix::from_points(&pts);
        let tour = convex_hull_insertion(&pts, &dm);
        assert!(tour.is_valid());
        assert_eq!(tour.len(), 6);
        // Optimal "tour" over a line is out-and-back: 2 × 50 m.
        assert!((tour.length(&pts) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn duplicate_points_are_all_visited() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(5.0, 8.0),
        ];
        let dm = DistanceMatrix::from_points(&pts);
        let tour = convex_hull_insertion(&pts, &dm);
        assert!(tour.is_valid());
        assert_eq!(tour.len(), 4);
    }

    use crate::test_support::pseudo_random_points;

    #[test]
    fn incremental_insertion_yields_valid_tours() {
        for n in [0usize, 1, 2, 3, 5, 12, 40, 90] {
            let pts = pseudo_random_points(n, 77);
            let tour = convex_hull_insertion_incremental(&pts);
            assert!(tour.is_valid(), "n = {n}");
            assert_eq!(tour.len(), n);
        }
    }

    #[test]
    fn incremental_insertion_matches_exact_greedy_length() {
        // Same greedy rule ⇒ same tour length whenever insertion costs have
        // no exact ties (generic random instances). Compare lengths rather
        // than orders: tie-breaking and cycle representation may differ.
        for salt in [3u64, 19, 55, 140] {
            let pts = pseudo_random_points(60, salt);
            let dm = DistanceMatrix::from_points(&pts);
            let exact = convex_hull_insertion(&pts, &dm).length(&pts);
            let incremental = convex_hull_insertion_incremental(&pts).length(&pts);
            assert!(
                (exact - incremental).abs() <= 1e-6 * exact.max(1.0),
                "salt {salt}: exact {exact} vs incremental {incremental}"
            );
        }
    }

    #[test]
    fn incremental_insertion_handles_collinear_and_duplicate_points() {
        let line: Vec<Point> = (0..7).map(|i| Point::new(5.0 * i as f64, 1.0)).collect();
        let tour = convex_hull_insertion_incremental(&line);
        assert!(tour.is_valid());
        assert!((tour.length(&line) - 60.0).abs() < 1e-9);

        let mut dupes = square_with_center();
        dupes.push(dupes[1]);
        let tour = convex_hull_insertion_incremental(&dupes);
        assert!(tour.is_valid());
        assert_eq!(tour.len(), dupes.len());
    }

    #[test]
    fn calipers_seed_matches_matrix_farthest_pair() {
        for salt in [2u64, 31, 77] {
            let pts = pseudo_random_points(50, salt);
            let dm = DistanceMatrix::from_points(&pts);
            let (a, b) = super::farthest_pair_via_hull(&pts, &dm).unwrap();
            let (ma, mb, md) = dm.farthest_pair().unwrap();
            assert!(
                (pts[a].distance(&pts[b]) - md).abs() < 1e-9,
                "salt {salt}: calipers pair ({a},{b}) vs matrix ({ma},{mb})"
            );
        }
    }

    #[test]
    fn calipers_seed_falls_back_on_degenerate_hulls() {
        // Two distinct points plus a duplicate: the hull is a segment.
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 0.0),
        ];
        let dm = DistanceMatrix::from_points(&pts);
        let (a, b) = super::farthest_pair_via_hull(&pts, &dm).unwrap();
        assert!((pts[a].distance(&pts[b]) - 10.0).abs() < 1e-12);
        let tour = cheapest_insertion(&pts, &dm);
        assert!(tour.is_valid());
    }

    #[test]
    fn insertion_cost_is_the_detour_cost() {
        let pts = square_with_center();
        let dm = DistanceMatrix::from_points(&pts);
        // Inserting the centre (index 4) between corners 0 and 1.
        let cost = super::insertion_cost(&dm, 0, 1, 4);
        let expected =
            pts[0].distance(&pts[4]) + pts[4].distance(&pts[1]) - pts[0].distance(&pts[1]);
        assert!((cost - expected).abs() < 1e-12);
        assert!(cost > 0.0);
    }
}
