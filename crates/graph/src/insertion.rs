//! Insertion-based tour construction.
//!
//! Two variants:
//!
//! * [`convex_hull_insertion`] — the "CHB" construction of reference \[5\]
//!   that every TCTP planner starts from: begin with the convex hull of the
//!   targets (already a tour of the boundary points) and repeatedly insert
//!   the interior point whose cheapest insertion position is cheapest.
//! * [`cheapest_insertion`] — classic cheapest insertion seeded with the
//!   farthest-apart pair; used for cross-checking and the ablation bench.

use crate::distance_matrix::DistanceMatrix;
use crate::tour::Tour;
use mule_geom::{convex_hull, Point};

/// Cost of inserting point `k` between consecutive tour points `i` and `j`:
/// `d(i,k) + d(k,j) − d(i,j)`.
#[inline]
fn insertion_cost(dm: &DistanceMatrix, i: usize, j: usize, k: usize) -> f64 {
    dm.get(i, k) + dm.get(k, j) - dm.get(i, j)
}

/// Finds the cheapest position (edge index in the current order) at which to
/// insert `k`, returning `(position, cost)`.
fn cheapest_position(dm: &DistanceMatrix, order: &[usize], k: usize) -> (usize, f64) {
    let n = order.len();
    debug_assert!(n >= 1);
    if n == 1 {
        return (0, 2.0 * dm.get(order[0], k));
    }
    let mut best_pos = 0;
    let mut best_cost = f64::INFINITY;
    for pos in 0..n {
        let i = order[pos];
        let j = order[(pos + 1) % n];
        let c = insertion_cost(dm, i, j, k);
        if c < best_cost {
            best_cost = c;
            best_pos = pos;
        }
    }
    (best_pos, best_cost)
}

/// Convex-hull insertion ("CHB" construction).
///
/// 1. The convex hull of the points forms the initial sub-tour.
/// 2. While interior points remain, pick the (point, edge) pair with the
///    globally cheapest insertion cost and splice the point into that edge.
///
/// Returns a trivial tour for fewer than two points.
pub fn convex_hull_insertion(points: &[Point], dm: &DistanceMatrix) -> Tour {
    let n = points.len();
    if n <= 2 {
        return Tour::identity(n);
    }

    let hull = convex_hull(points);
    // Map hull vertices back to their indices in `points`. The hull returns
    // coordinates, so match by proximity (points are deduplicated by the
    // hull, so ties pick the first matching index deterministically).
    let mut in_tour = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    for hp in &hull {
        if let Some(idx) = points
            .iter()
            .enumerate()
            .filter(|(i, p)| !in_tour[*i] && p.distance_squared(hp) <= 1e-18)
            .map(|(i, _)| i)
            .next()
        {
            in_tour[idx] = true;
            order.push(idx);
        }
    }
    // Degenerate hulls (all points collinear) may cover < 3 points; fall
    // back to seeding with whatever the hull gave us (at least 2 extremes).
    if order.is_empty() {
        order.push(0);
        in_tour[0] = true;
    }

    // Repeatedly insert the remaining point with the cheapest insertion.
    let mut remaining: Vec<usize> = (0..n).filter(|&i| !in_tour[i]).collect();
    while !remaining.is_empty() {
        let mut best: Option<(usize, usize, f64)> = None; // (remaining slot, pos, cost)
        for (slot, &k) in remaining.iter().enumerate() {
            let (pos, cost) = cheapest_position(dm, &order, k);
            if best.map(|(_, _, b)| cost < b).unwrap_or(true) {
                best = Some((slot, pos, cost));
            }
        }
        let (slot, pos, _) = best.expect("remaining is non-empty");
        let k = remaining.swap_remove(slot);
        order.insert((pos + 1).min(order.len()), k);
    }

    Tour::new(order)
}

/// Cheapest insertion seeded with the farthest-apart pair of points.
pub fn cheapest_insertion(points: &[Point], dm: &DistanceMatrix) -> Tour {
    let n = points.len();
    if n <= 2 {
        return Tour::identity(n);
    }
    let (a, b, _) = dm.farthest_pair().expect("n >= 2");
    let mut order = vec![a, b];
    let mut in_tour = vec![false; n];
    in_tour[a] = true;
    in_tour[b] = true;

    let mut remaining: Vec<usize> = (0..n).filter(|&i| !in_tour[i]).collect();
    while !remaining.is_empty() {
        let mut best: Option<(usize, usize, f64)> = None;
        for (slot, &k) in remaining.iter().enumerate() {
            let (pos, cost) = cheapest_position(dm, &order, k);
            if best.map(|(_, _, b)| cost < b).unwrap_or(true) {
                best = Some((slot, pos, cost));
            }
        }
        let (slot, pos, _) = best.expect("remaining is non-empty");
        let k = remaining.swap_remove(slot);
        order.insert((pos + 1).min(order.len()), k);
    }
    Tour::new(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_with_center() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(100.0, 100.0),
            Point::new(0.0, 100.0),
            Point::new(50.0, 50.0),
        ]
    }

    #[test]
    fn hull_insertion_yields_valid_tour_covering_all_points() {
        let pts = square_with_center();
        let dm = DistanceMatrix::from_points(&pts);
        let tour = convex_hull_insertion(&pts, &dm);
        assert!(tour.is_valid());
        assert_eq!(tour.len(), 5);
    }

    #[test]
    fn hull_insertion_on_pure_hull_matches_hull_perimeter() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(100.0, 100.0),
            Point::new(0.0, 100.0),
        ];
        let dm = DistanceMatrix::from_points(&pts);
        let tour = convex_hull_insertion(&pts, &dm);
        assert!((tour.length(&pts) - 400.0).abs() < 1e-9);
    }

    #[test]
    fn cheapest_insertion_yields_valid_tour() {
        let pts = square_with_center();
        let dm = DistanceMatrix::from_points(&pts);
        let tour = cheapest_insertion(&pts, &dm);
        assert!(tour.is_valid());
        assert_eq!(tour.len(), 5);
        // Both heuristics should be close on this tiny instance.
        let chb = convex_hull_insertion(&pts, &dm).length(&pts);
        assert!(tour.length(&pts) <= chb * 1.5);
    }

    #[test]
    fn degenerate_inputs_give_trivial_tours() {
        for pts in [
            vec![],
            vec![Point::ORIGIN],
            vec![Point::ORIGIN, Point::new(1.0, 0.0)],
        ] {
            let dm = DistanceMatrix::from_points(&pts);
            let a = convex_hull_insertion(&pts, &dm);
            let b = cheapest_insertion(&pts, &dm);
            assert_eq!(a.len(), pts.len());
            assert_eq!(b.len(), pts.len());
            assert!(a.is_valid() && b.is_valid());
        }
    }

    #[test]
    fn collinear_points_are_still_all_visited() {
        let pts: Vec<Point> = (0..6).map(|i| Point::new(10.0 * i as f64, 5.0)).collect();
        let dm = DistanceMatrix::from_points(&pts);
        let tour = convex_hull_insertion(&pts, &dm);
        assert!(tour.is_valid());
        assert_eq!(tour.len(), 6);
        // Optimal "tour" over a line is out-and-back: 2 × 50 m.
        assert!((tour.length(&pts) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn duplicate_points_are_all_visited() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(5.0, 8.0),
        ];
        let dm = DistanceMatrix::from_points(&pts);
        let tour = convex_hull_insertion(&pts, &dm);
        assert!(tour.is_valid());
        assert_eq!(tour.len(), 4);
    }

    #[test]
    fn insertion_cost_is_the_detour_cost() {
        let pts = square_with_center();
        let dm = DistanceMatrix::from_points(&pts);
        // Inserting the centre (index 4) between corners 0 and 1.
        let cost = super::insertion_cost(&dm, 0, 1, 4);
        let expected =
            pts[0].distance(&pts[4]) + pts[4].distance(&pts[1]) - pts[0].distance(&pts[1]);
        assert!((cost - expected).abs() < 1e-12);
        assert!(cost > 0.0);
    }
}
