//! # mule-graph
//!
//! Euclidean tours over target sets: the Hamiltonian-circuit substrate that
//! every TCTP planner (and the CHB baseline of reference \[5\]) starts from.
//!
//! The crate is organised as construction → improvement → inspection:
//!
//! * [`DistanceMatrix`] — dense pairwise Euclidean distances, computed once
//!   per scenario and shared by all heuristics.
//! * [`Tour`] — an ordered Hamiltonian cycle over point indices with length,
//!   validity, rotation and edge bookkeeping.
//! * Construction heuristics: [`nearest_neighbor()`], [`cheapest_insertion`],
//!   [`convex_hull_insertion`] (the "CHB" construction), [`mst`] (Prim) with
//!   a pre-order-walk tour for a 2-approximation cross-check.
//! * Improvement: [`two_opt()`] and [`or_opt()`] local search (exact,
//!   all-pairs), plus their scalable candidate-list twins in
//!   [`candidates`] — k-nearest-neighbour lists with don't-look bits.
//! * [`partition`] — angular and k-means target grouping (used by the Sweep
//!   baseline and the grouping ablation).
//! * [`chb`] — the packaged pipeline (convex-hull insertion + 2-opt + Or-opt)
//!   used by the planners: `chb::construct_circuit(points)`. Its
//!   [`SearchMode`] knob picks exact vs. candidate-list search; the default
//!   `Auto` keeps paper-size instances byte-identical and switches to
//!   candidate lists above [`chb::AUTO_EXACT_THRESHOLD`] points. The
//!   metric-aware entry point [`construct_circuit_metric`] additionally
//!   accepts a [`mule_road::TravelMetric`]: Euclidean delegates to the
//!   historical path bit-for-bit, road metrics run the matrix-backed
//!   pipeline over precomputed shortest-path distances.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod candidates;
pub mod chb;
pub mod distance_matrix;
pub mod insertion;
pub mod mst;
pub mod nearest_neighbor;
pub mod or_opt;
pub mod partition;
pub mod tour;
pub mod two_opt;

pub use candidates::{
    or_opt_candidates, or_opt_candidates_matrix, two_opt_candidates, two_opt_candidates_matrix,
    CandidateLists,
};
pub use chb::{
    construct_circuit, construct_circuit_matrix_backed, construct_circuit_metric,
    construct_circuit_with, construct_circuit_with_matrix, ChbConfig, SearchMode,
};
pub use distance_matrix::DistanceMatrix;
pub use insertion::{cheapest_insertion, convex_hull_insertion, convex_hull_insertion_incremental};
pub use mst::{minimum_spanning_tree, mst_preorder_tour};
pub use nearest_neighbor::nearest_neighbor;
pub use or_opt::or_opt;
pub use partition::{angular_partition, kmeans_partition, within_group_spread};
pub use tour::Tour;
pub use two_opt::two_opt;

use mule_geom::Point;

#[cfg(test)]
pub(crate) mod test_support {
    use mule_geom::Point;

    /// Deterministic pseudo-random point sets shared by the unit tests of
    /// the construction and search modules (one LCG hash, one 800 m field,
    /// one copy — keep fixtures from silently diverging).
    pub(crate) fn pseudo_random_points(n: usize, salt: u64) -> Vec<Point> {
        (0..n as u64)
            .map(|i| {
                let h = i.wrapping_mul(6364136223846793005).wrapping_add(salt);
                Point::new((h % 800) as f64, ((h >> 17) % 800) as f64)
            })
            .collect()
    }
}

/// Which construction heuristic to use for the initial Hamiltonian circuit.
///
/// The paper's planners all use the convex-hull-based construction of
/// reference \[5\]; the other options exist for the `tours` ablation bench and
/// as sanity cross-checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TourConstruction {
    /// Convex-hull insertion (CHB) — the paper's choice.
    #[default]
    ConvexHullInsertion,
    /// Greedy nearest-neighbour chain.
    NearestNeighbor,
    /// Cheapest-insertion starting from the two farthest-apart points.
    CheapestInsertion,
    /// Pre-order walk of a minimum spanning tree (2-approximation).
    MstPreorder,
}

impl TourConstruction {
    /// Builds a tour over `points` with this heuristic. Returns a trivial
    /// tour for fewer than two points.
    pub fn build(&self, points: &[Point]) -> Tour {
        let dm = DistanceMatrix::from_points(points);
        self.build_with_matrix(points, &dm)
    }

    /// Like [`TourConstruction::build`] but reuses a precomputed distance
    /// matrix.
    pub fn build_with_matrix(&self, points: &[Point], dm: &DistanceMatrix) -> Tour {
        match self {
            TourConstruction::ConvexHullInsertion => convex_hull_insertion(points, dm),
            TourConstruction::NearestNeighbor => nearest_neighbor(points, dm, 0),
            TourConstruction::CheapestInsertion => cheapest_insertion(points, dm),
            TourConstruction::MstPreorder => mst_preorder_tour(points, dm),
        }
    }

    /// All variants, for sweeps in the ablation benches.
    pub const ALL: [TourConstruction; 4] = [
        TourConstruction::ConvexHullInsertion,
        TourConstruction::NearestNeighbor,
        TourConstruction::CheapestInsertion,
        TourConstruction::MstPreorder,
    ];

    /// Short human-readable label used in bench output tables.
    pub fn label(&self) -> &'static str {
        match self {
            TourConstruction::ConvexHullInsertion => "convex-hull",
            TourConstruction::NearestNeighbor => "nearest-neighbor",
            TourConstruction::CheapestInsertion => "cheapest-insertion",
            TourConstruction::MstPreorder => "mst-preorder",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize, radius: f64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let t = std::f64::consts::TAU * i as f64 / n as f64;
                Point::new(400.0 + radius * t.cos(), 400.0 + radius * t.sin())
            })
            .collect()
    }

    #[test]
    fn every_construction_yields_a_valid_tour() {
        let pts = ring(12, 300.0);
        for c in TourConstruction::ALL {
            let tour = c.build(&pts);
            assert!(tour.is_valid(), "{} produced an invalid tour", c.label());
            assert_eq!(tour.len(), pts.len());
            assert!(tour.length(&pts) > 0.0);
        }
    }

    #[test]
    fn constructions_on_a_ring_are_near_optimal() {
        // On a circle the optimal tour is the ring itself; good heuristics
        // should be within a small factor.
        let pts = ring(16, 250.0);
        let optimal = mule_geom::Polyline::closed(pts.clone()).length();
        for c in TourConstruction::ALL {
            let len = c.build(&pts).length(&pts);
            assert!(
                len <= optimal * 2.0 + 1e-6,
                "{} gave {len}, optimal {optimal}",
                c.label()
            );
        }
        // The hull-based construction is exactly optimal on a convex ring.
        let chb = TourConstruction::ConvexHullInsertion
            .build(&pts)
            .length(&pts);
        assert!((chb - optimal).abs() < 1e-6);
    }

    #[test]
    fn default_construction_is_convex_hull_insertion() {
        assert_eq!(
            TourConstruction::default(),
            TourConstruction::ConvexHullInsertion
        );
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<&str> =
            TourConstruction::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), TourConstruction::ALL.len());
    }
}
