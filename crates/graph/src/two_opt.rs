//! 2-opt local search.
//!
//! Repeatedly removes two edges of the tour and reconnects the two resulting
//! paths the other way (reversing one of them) whenever that shortens the
//! tour. Applied after the convex-hull insertion to polish the Hamiltonian
//! circuit the planners patrol.

use crate::distance_matrix::DistanceMatrix;
use crate::tour::Tour;

/// Improves `tour` in place with 2-opt moves until no improving move exists
/// or `max_passes` full sweeps have been made. Returns the number of
/// improving moves applied.
///
/// The tour is never lengthened: each accepted move strictly decreases the
/// length by more than the `1e-10` acceptance threshold (which guards
/// against floating-point churn on already-optimal tours).
pub fn two_opt(tour: &mut Tour, dm: &DistanceMatrix, max_passes: usize) -> usize {
    let n = tour.len();
    if n < 4 {
        return 0;
    }
    // Take the order out of the tour so the inner loop indexes one local
    // slice directly instead of re-borrowing `tour.order()` per pair (the
    // hottest loop in the exact pipeline). The scan order, acceptance test
    // and reversal are unchanged, so the move sequence — and the resulting
    // tour — stay byte-identical.
    let mut order = std::mem::take(tour).into_order();
    let mut moves = 0;
    for _ in 0..max_passes {
        let mut improved = false;
        for i in 0..n - 1 {
            for j in i + 1..n {
                // Edge A: (order[i-1], order[i]); Edge B: (order[j], order[j+1]).
                // Reversing order[i..=j] replaces them with (order[i-1], order[j])
                // and (order[i], order[j+1]).
                let prev = if i == 0 { n - 1 } else { i - 1 };
                let next = (j + 1) % n;
                if prev == j || next == i {
                    continue; // adjacent edges — reversal is a no-op
                }
                let a0 = order[prev];
                let a1 = order[i];
                let b0 = order[j];
                let b1 = order[next];
                let current = dm.get(a0, a1) + dm.get(b0, b1);
                let candidate = dm.get(a0, b0) + dm.get(a1, b1);
                if candidate + 1e-10 < current {
                    order[i..=j].reverse();
                    moves += 1;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    *tour = Tour::new(order);
    moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use mule_geom::Point;

    fn square_points() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ]
    }

    #[test]
    fn uncrosses_a_crossed_square() {
        let pts = square_points();
        let dm = DistanceMatrix::from_points(&pts);
        let mut tour = Tour::new(vec![0, 2, 1, 3]); // crossed
        let before = tour.length(&pts);
        let moves = two_opt(&mut tour, &dm, 10);
        assert!(moves >= 1);
        assert!(tour.is_valid());
        assert!(tour.length(&pts) < before);
        assert!((tour.length(&pts) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn leaves_an_optimal_tour_untouched() {
        let pts = square_points();
        let dm = DistanceMatrix::from_points(&pts);
        let mut tour = Tour::identity(4);
        let moves = two_opt(&mut tour, &dm, 10);
        assert_eq!(moves, 0);
        assert_eq!(tour.order(), &[0, 1, 2, 3]);
    }

    #[test]
    fn never_lengthens_random_like_tours() {
        // Deterministic pseudo-random points via integer hashing.
        let pts: Vec<Point> = (0..30u64)
            .map(|i| {
                let x = (i.wrapping_mul(2654435761) % 800) as f64;
                let y = (i.wrapping_mul(40503) % 800) as f64;
                Point::new(x, y)
            })
            .collect();
        let dm = DistanceMatrix::from_points(&pts);
        let mut tour = Tour::identity(pts.len());
        let before = tour.length(&pts);
        two_opt(&mut tour, &dm, 50);
        assert!(tour.is_valid());
        assert!(tour.length(&pts) <= before + 1e-9);
    }

    #[test]
    fn tiny_tours_are_untouched() {
        let pts = vec![Point::ORIGIN, Point::new(1.0, 0.0), Point::new(0.0, 1.0)];
        let dm = DistanceMatrix::from_points(&pts);
        let mut tour = Tour::identity(3);
        assert_eq!(two_opt(&mut tour, &dm, 5), 0);
        assert_eq!(tour.order(), &[0, 1, 2]);
    }

    #[test]
    fn respects_the_pass_budget() {
        let pts: Vec<Point> = (0..20u64)
            .map(|i| {
                let x = (i.wrapping_mul(97) % 500) as f64;
                let y = (i.wrapping_mul(61) % 500) as f64;
                Point::new(x, y)
            })
            .collect();
        let dm = DistanceMatrix::from_points(&pts);
        let mut zero_pass = Tour::identity(pts.len());
        assert_eq!(two_opt(&mut zero_pass, &dm, 0), 0);
        assert_eq!(zero_pass.order(), Tour::identity(pts.len()).order());
    }
}
