//! Dense pairwise travel-distance matrix.
//!
//! All tour heuristics and the WPP/WRP break-edge searches are expressed in
//! terms of inter-target distances. Computing them once per scenario and
//! sharing the matrix keeps the heuristics allocation-free in their inner
//! loops. The matrix is metric-agnostic: [`DistanceMatrix::from_points`]
//! fills it with Euclidean distances (the historical behaviour, bit for
//! bit), while [`DistanceMatrix::from_metric`] accepts any
//! [`mule_road::TravelMetric`] — road matrices cost one Dijkstra per
//! distinct snapped node instead of `O(n²)` subtractions, but every
//! consumer downstream is oblivious to the difference.

use mule_geom::Point;
use mule_road::TravelMetric;

/// A symmetric `n × n` matrix of travel distances, stored row-major in a
/// single flat allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Builds the matrix from a point slice (Euclidean distances).
    pub fn from_points(points: &[Point]) -> Self {
        let n = points.len();
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            // The matrix is symmetric; fill both triangles in one pass.
            for j in (i + 1)..n {
                let d = points[i].distance(&points[j]);
                data[i * n + j] = d;
                data[j * n + i] = d;
            }
        }
        DistanceMatrix { n, data }
    }

    /// Builds the matrix under an arbitrary travel metric. The Euclidean
    /// metric routes through [`DistanceMatrix::from_points`] so the bytes
    /// (and the float operations producing them) are identical to the
    /// pre-metric era.
    pub fn from_metric(points: &[Point], metric: &TravelMetric) -> Self {
        match metric {
            TravelMetric::Euclidean => DistanceMatrix::from_points(points),
            road => {
                let _s = mule_obs::span("graph.distance_matrix");
                mule_obs::add("n", points.len() as u64);
                DistanceMatrix {
                    n: points.len(),
                    data: road.pairwise(points),
                }
            }
        }
    }

    /// Number of points the matrix was built from.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` for a 0 × 0 matrix.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between points `i` and `j`.
    ///
    /// This is the single hottest accessor in the workspace (every exact
    /// local-search pair evaluation goes through it four times), so the
    /// friendly bounds message is a `debug_assert!`: debug builds still
    /// panic with "index out of range", release builds rely on the flat
    /// slice index alone (which catches any access beyond `n²` but maps
    /// in-bounds mixes of bad `i`/`j` to a wrong cell — an out-of-range
    /// target index is a programming error either way).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.n && j < self.n, "index out of range");
        self.data[i * self.n + j]
    }

    /// The nearest other point to `i` that satisfies `accept`, as
    /// `(index, distance)`. Returns `None` when no acceptable point exists.
    pub fn nearest_to<F: Fn(usize) -> bool>(&self, i: usize, accept: F) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for j in 0..self.n {
            if j == i || !accept(j) {
                continue;
            }
            let d = self.get(i, j);
            if best.map(|(_, b)| d < b).unwrap_or(true) {
                best = Some((j, d));
            }
        }
        best
    }

    /// The pair of distinct points with the largest separation, as
    /// `(i, j, distance)`. Returns `None` for fewer than two points.
    pub fn farthest_pair(&self) -> Option<(usize, usize, f64)> {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                let d = self.get(i, j);
                if best.map(|(_, _, b)| d > b).unwrap_or(true) {
                    best = Some((i, j, d));
                }
            }
        }
        best
    }

    /// Total length of a closed tour visiting `order` (indices into the
    /// original point slice) and returning to its first entry.
    pub fn cycle_length(&self, order: &[usize]) -> f64 {
        if order.len() < 2 {
            return 0.0;
        }
        let mut total = 0.0;
        for w in order.windows(2) {
            total += self.get(w[0], w[1]);
        }
        total + self.get(*order.last().unwrap(), order[0])
    }

    /// Total length of an open path visiting `order` in sequence.
    pub fn path_length(&self, order: &[usize]) -> f64 {
        order.windows(2).map(|w| self.get(w[0], w[1])).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ]
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let dm = DistanceMatrix::from_points(&unit_square());
        assert_eq!(dm.len(), 4);
        for i in 0..4 {
            assert_eq!(dm.get(i, i), 0.0);
            for j in 0..4 {
                assert_eq!(dm.get(i, j), dm.get(j, i));
            }
        }
        assert!((dm.get(0, 2) - 2.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(dm.get(0, 1), 1.0);
    }

    #[test]
    fn empty_and_single_point_matrices() {
        let empty = DistanceMatrix::from_points(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.cycle_length(&[]), 0.0);
        let single = DistanceMatrix::from_points(&[Point::new(3.0, 3.0)]);
        assert_eq!(single.len(), 1);
        assert_eq!(single.get(0, 0), 0.0);
        assert_eq!(single.cycle_length(&[0]), 0.0);
    }

    // The friendly bounds check is debug-only (see `get`); release test
    // runs would fall through to raw slice indexing with a different (or
    // no) panic.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "index out of range")]
    fn out_of_range_access_panics() {
        let dm = DistanceMatrix::from_points(&unit_square());
        let _ = dm.get(0, 10);
    }

    #[test]
    fn nearest_to_respects_the_filter() {
        let dm = DistanceMatrix::from_points(&unit_square());
        let (j, d) = dm.nearest_to(0, |_| true).unwrap();
        assert!(j == 1 || j == 3);
        assert_eq!(d, 1.0);
        let (j2, d2) = dm.nearest_to(0, |k| k == 2).unwrap();
        assert_eq!(j2, 2);
        assert!((d2 - 2.0_f64.sqrt()).abs() < 1e-12);
        assert!(dm.nearest_to(0, |_| false).is_none());
    }

    #[test]
    fn farthest_pair_is_the_diagonal_of_the_square() {
        let dm = DistanceMatrix::from_points(&unit_square());
        let (i, j, d) = dm.farthest_pair().unwrap();
        assert!((d - 2.0_f64.sqrt()).abs() < 1e-12);
        assert!((i == 0 && j == 2) || (i == 1 && j == 3));
        assert!(DistanceMatrix::from_points(&[Point::ORIGIN])
            .farthest_pair()
            .is_none());
    }

    #[test]
    fn from_metric_euclidean_is_identical_to_from_points() {
        let pts = unit_square();
        let a = DistanceMatrix::from_points(&pts);
        let b = DistanceMatrix::from_metric(&pts, &TravelMetric::Euclidean);
        assert_eq!(a, b);
    }

    #[test]
    fn from_metric_road_dominates_euclidean_and_stays_symmetric() {
        use mule_geom::BoundingBox;
        let idx = mule_road::RoadIndex::for_field(
            mule_road::RoadNetKind::Grid,
            &BoundingBox::square(800.0),
            5,
        );
        let metric = TravelMetric::road(idx);
        let pts = vec![
            Point::new(100.0, 100.0),
            Point::new(650.0, 200.0),
            Point::new(400.0, 700.0),
        ];
        let dm = DistanceMatrix::from_metric(&pts, &metric);
        for i in 0..3 {
            assert_eq!(dm.get(i, i), 0.0);
            for j in 0..3 {
                assert_eq!(dm.get(i, j), dm.get(j, i));
                if i != j {
                    assert!(
                        dm.get(i, j) >= pts[i].distance(&pts[j]) - 1e-9,
                        "road distance dominates the straight line"
                    );
                }
            }
        }
    }

    #[test]
    fn cycle_and_path_lengths() {
        let dm = DistanceMatrix::from_points(&unit_square());
        assert!((dm.cycle_length(&[0, 1, 2, 3]) - 4.0).abs() < 1e-12);
        assert!((dm.path_length(&[0, 1, 2, 3]) - 3.0).abs() < 1e-12);
        assert_eq!(dm.cycle_length(&[2]), 0.0);
        assert_eq!(dm.path_length(&[2]), 0.0);
    }
}
