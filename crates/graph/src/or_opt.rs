//! Or-opt local search.
//!
//! Relocates short chains of 1–3 consecutive targets to a better position in
//! the tour. Complements 2-opt (which only uncrosses edges) and together
//! they bring convex-hull-insertion tours very close to optimal at the
//! instance sizes the paper evaluates (10–50 targets).

use crate::distance_matrix::DistanceMatrix;
use crate::tour::Tour;

/// Improves `tour` in place by relocating chains of length 1, 2 and 3.
/// Returns the number of improving relocations applied. The tour length is
/// never increased.
pub fn or_opt(tour: &mut Tour, dm: &DistanceMatrix, max_passes: usize) -> usize {
    let n = tour.len();
    if n < 5 {
        return 0;
    }
    let mut moves = 0;
    for _ in 0..max_passes {
        let mut improved = false;
        'outer: for chain_len in 1..=3usize {
            for start in 0..n {
                if let Some(gain) = try_relocate(tour, dm, start, chain_len) {
                    if gain > 1e-10 {
                        moves += 1;
                        improved = true;
                        // Tour positions shifted; restart the scan.
                        break 'outer;
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
    moves
}

/// Attempts the best relocation of the chain of `chain_len` targets starting
/// at tour position `start`. Applies the move and returns its gain when an
/// improving position exists, otherwise returns `None` / `Some(0.0)` without
/// modifying the tour.
fn try_relocate(
    tour: &mut Tour,
    dm: &DistanceMatrix,
    start: usize,
    chain_len: usize,
) -> Option<f64> {
    let n = tour.len();
    if chain_len >= n - 2 {
        return None;
    }
    let order = tour.order().to_vec();
    let chain: Vec<usize> = (0..chain_len).map(|k| order[(start + k) % n]).collect();

    let before = order[(start + n - 1) % n];
    let after = order[(start + chain_len) % n];
    if before == *chain.last().unwrap() || after == chain[0] {
        return None; // chain wraps the whole tour
    }

    // Cost removed by excising the chain.
    let removed =
        dm.get(before, chain[0]) + dm.get(*chain.last().unwrap(), after) - dm.get(before, after);

    // Remaining tour after excision, in order.
    let remaining: Vec<usize> = order
        .iter()
        .copied()
        .filter(|i| !chain.contains(i))
        .collect();
    if remaining.len() < 2 {
        return None;
    }

    // Best reinsertion position.
    let mut best: Option<(usize, f64, bool)> = None; // (edge pos, added cost, reversed)
    let m = remaining.len();
    for pos in 0..m {
        let i = remaining[pos];
        let j = remaining[(pos + 1) % m];
        if i == before && j == after {
            continue; // reinserting where it came from
        }
        let fwd = dm.get(i, chain[0]) + dm.get(*chain.last().unwrap(), j) - dm.get(i, j);
        let rev = dm.get(i, *chain.last().unwrap()) + dm.get(chain[0], j) - dm.get(i, j);
        let (added, reversed) = if rev < fwd { (rev, true) } else { (fwd, false) };
        if best.map(|(_, b, _)| added < b).unwrap_or(true) {
            best = Some((pos, added, reversed));
        }
    }
    let (pos, added, reversed) = best?;
    let gain = removed - added;
    if gain <= 1e-10 {
        return Some(0.0);
    }

    // Rebuild the order with the chain spliced in at `pos`.
    let mut new_order = Vec::with_capacity(n);
    for (k, &idx) in remaining.iter().enumerate() {
        new_order.push(idx);
        if k == pos {
            if reversed {
                new_order.extend(chain.iter().rev().copied());
            } else {
                new_order.extend(chain.iter().copied());
            }
        }
    }
    *tour = Tour::new(new_order);
    Some(gain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mule_geom::Point;

    fn line_with_outlier() -> Vec<Point> {
        // Points on a line, except index 2 is visited badly out of order in
        // the identity tour, making a relocation clearly profitable.
        vec![
            Point::new(0.0, 0.0),
            Point::new(50.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(60.0, 0.0),
            Point::new(70.0, 0.0),
            Point::new(80.0, 0.0),
        ]
    }

    #[test]
    fn relocation_shortens_a_bad_tour() {
        let pts = line_with_outlier();
        let dm = DistanceMatrix::from_points(&pts);
        let mut tour = Tour::identity(pts.len());
        let before = tour.length(&pts);
        let moves = or_opt(&mut tour, &dm, 20);
        assert!(moves >= 1);
        assert!(tour.is_valid());
        assert!(tour.length(&pts) < before);
    }

    #[test]
    fn never_lengthens_a_tour() {
        let pts: Vec<Point> = (0..25u64)
            .map(|i| {
                Point::new(
                    (i.wrapping_mul(193) % 800) as f64,
                    (i.wrapping_mul(389) % 800) as f64,
                )
            })
            .collect();
        let dm = DistanceMatrix::from_points(&pts);
        let mut tour = Tour::identity(pts.len());
        let before = tour.length(&pts);
        or_opt(&mut tour, &dm, 50);
        assert!(tour.is_valid());
        assert!(tour.length(&pts) <= before + 1e-9);
    }

    #[test]
    fn optimal_square_is_left_alone() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(5.0, 15.0),
            Point::new(0.0, 10.0),
        ];
        let dm = DistanceMatrix::from_points(&pts);
        let mut tour = Tour::identity(5);
        let before = tour.length(&pts);
        or_opt(&mut tour, &dm, 20);
        assert!((tour.length(&pts) - before).abs() < 1e-9);
    }

    #[test]
    fn tiny_tours_are_untouched() {
        let pts = vec![
            Point::ORIGIN,
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0),
        ];
        let dm = DistanceMatrix::from_points(&pts);
        let mut tour = Tour::identity(4);
        assert_eq!(or_opt(&mut tour, &dm, 5), 0);
    }

    #[test]
    fn combined_with_two_opt_reaches_the_line_optimum() {
        let pts = line_with_outlier();
        let dm = DistanceMatrix::from_points(&pts);
        let mut tour = Tour::identity(pts.len());
        crate::two_opt(&mut tour, &dm, 50);
        or_opt(&mut tour, &dm, 50);
        crate::two_opt(&mut tour, &dm, 50);
        // Optimal tour over collinear points: out and back = 2 × 80 m.
        assert!((tour.length(&pts) - 160.0).abs() < 1e-6);
    }
}
