//! The packaged CHB Hamiltonian-circuit pipeline.
//!
//! Every TCTP planner (and the CHB baseline itself) needs "an efficient
//! Hamiltonian Circuit constructed from the convex hull" (paper §2.2,
//! reference \[5\]). This module packages the full pipeline the rest of the
//! workspace calls:
//!
//! 1. convex-hull insertion construction,
//! 2. 2-opt polishing,
//! 3. Or-opt polishing,
//!
//! with a small config to disable the polishing passes for ablation.
//! Because all data mules run the same deterministic code on the same
//! target list, they all obtain *the same* circuit — the distributed-
//! agreement property the paper relies on.

use crate::distance_matrix::DistanceMatrix;
use crate::insertion::convex_hull_insertion;
use crate::or_opt::or_opt;
use crate::tour::Tour;
use crate::two_opt::two_opt;
use mule_geom::Point;
use serde::{Deserialize, Serialize};

/// Configuration of the CHB circuit-construction pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChbConfig {
    /// Maximum number of full 2-opt sweeps (0 disables 2-opt).
    pub two_opt_passes: usize,
    /// Maximum number of full Or-opt sweeps (0 disables Or-opt).
    pub or_opt_passes: usize,
}

impl Default for ChbConfig {
    fn default() -> Self {
        // Enough passes to converge at the paper's instance sizes (≤ 50
        // targets) while keeping construction instantaneous.
        ChbConfig {
            two_opt_passes: 30,
            or_opt_passes: 30,
        }
    }
}

impl ChbConfig {
    /// A configuration with all polishing disabled — raw convex-hull
    /// insertion, used by the ablation bench.
    pub fn construction_only() -> Self {
        ChbConfig {
            two_opt_passes: 0,
            or_opt_passes: 0,
        }
    }
}

/// Builds the CHB Hamiltonian circuit over `points` with the default
/// configuration.
pub fn construct_circuit(points: &[Point]) -> Tour {
    construct_circuit_with(points, &ChbConfig::default())
}

/// Builds the CHB Hamiltonian circuit with an explicit configuration.
pub fn construct_circuit_with(points: &[Point], config: &ChbConfig) -> Tour {
    let dm = DistanceMatrix::from_points(points);
    construct_circuit_with_matrix(points, &dm, config)
}

/// Builds the CHB Hamiltonian circuit reusing a precomputed distance matrix.
pub fn construct_circuit_with_matrix(
    points: &[Point],
    dm: &DistanceMatrix,
    config: &ChbConfig,
) -> Tour {
    let mut tour = convex_hull_insertion(points, dm);
    if config.two_opt_passes > 0 {
        two_opt(&mut tour, dm, config.two_opt_passes);
    }
    if config.or_opt_passes > 0 {
        or_opt(&mut tour, dm, config.or_opt_passes);
        // A final 2-opt pass cleans up crossings introduced by relocations.
        if config.two_opt_passes > 0 {
            two_opt(&mut tour, dm, config.two_opt_passes);
        }
    }
    tour
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random_points(n: usize, salt: u64) -> Vec<Point> {
        (0..n as u64)
            .map(|i| {
                let h = i.wrapping_mul(6364136223846793005).wrapping_add(salt);
                Point::new((h % 800) as f64, ((h >> 17) % 800) as f64)
            })
            .collect()
    }

    #[test]
    fn circuit_is_a_valid_hamiltonian_cycle() {
        let pts = pseudo_random_points(30, 12345);
        let tour = construct_circuit(&pts);
        assert!(tour.is_valid());
        assert_eq!(tour.len(), pts.len());
    }

    #[test]
    fn polishing_never_hurts() {
        let pts = pseudo_random_points(40, 777);
        let raw = construct_circuit_with(&pts, &ChbConfig::construction_only());
        let polished = construct_circuit(&pts);
        assert!(polished.length(&pts) <= raw.length(&pts) + 1e-9);
    }

    #[test]
    fn construction_is_deterministic_across_calls() {
        // The distributed-agreement property: every mule computes the same
        // circuit from the same target list.
        let pts = pseudo_random_points(25, 42);
        let a = construct_circuit(&pts);
        let b = construct_circuit(&pts);
        assert_eq!(a.order(), b.order());
    }

    #[test]
    fn circuit_length_is_within_twice_the_mst_bound() {
        let pts = pseudo_random_points(35, 9001);
        let dm = DistanceMatrix::from_points(&pts);
        let mst = crate::minimum_spanning_tree(&pts, &dm);
        let tour = construct_circuit(&pts);
        assert!(tour.length(&pts) <= 2.0 * mst.weight + 1e-9);
    }

    #[test]
    fn degenerate_target_counts_are_handled() {
        for n in 0..4 {
            let pts = pseudo_random_points(n, 5);
            let tour = construct_circuit(&pts);
            assert_eq!(tour.len(), n);
            assert!(tour.is_valid());
        }
    }

    #[test]
    fn default_config_enables_both_polishers() {
        let c = ChbConfig::default();
        assert!(c.two_opt_passes > 0 && c.or_opt_passes > 0);
        let raw = ChbConfig::construction_only();
        assert_eq!(raw.two_opt_passes, 0);
        assert_eq!(raw.or_opt_passes, 0);
    }
}
