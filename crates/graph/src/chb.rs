//! The packaged CHB Hamiltonian-circuit pipeline.
//!
//! Every TCTP planner (and the CHB baseline itself) needs "an efficient
//! Hamiltonian Circuit constructed from the convex hull" (paper §2.2,
//! reference \[5\]). This module packages the full pipeline the rest of the
//! workspace calls:
//!
//! 1. convex-hull insertion construction,
//! 2. 2-opt polishing,
//! 3. Or-opt polishing,
//!
//! with a small config to disable the polishing passes for ablation.
//! Because all data mules run the same deterministic code on the same
//! target list, they all obtain *the same* circuit — the distributed-
//! agreement property the paper relies on.

use crate::candidates::{
    or_opt_candidates, or_opt_candidates_matrix, two_opt_candidates, two_opt_candidates_matrix,
    CandidateLists,
};
use crate::distance_matrix::DistanceMatrix;
use crate::insertion::{convex_hull_insertion, convex_hull_insertion_incremental};
use crate::nearest_neighbor::nearest_neighbor;
use crate::or_opt::or_opt;
use crate::tour::Tour;
use crate::two_opt::two_opt;
use mule_geom::Point;
use mule_road::TravelMetric;
use serde::{Deserialize, Serialize};

/// Instance size up to which [`SearchMode::Auto`] uses the exact pipeline.
///
/// This is the determinism contract documented in `docs/DETERMINISM.md`:
/// every instance with at most this many points goes through the exact
/// all-pairs path and is **byte-identical** to historical tours; larger
/// instances switch to candidate-list search. The paper's evaluation tops
/// out at ~50 targets, so all golden scenarios sit comfortably below.
pub const AUTO_EXACT_THRESHOLD: usize = 128;

/// Default candidate-list width (`k` nearest neighbours per point) used by
/// [`SearchMode::Auto`] and anywhere a `k` is not given explicitly.
pub const DEFAULT_CANDIDATES_K: usize = 10;

/// Which neighbourhood the construction pipeline searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SearchMode {
    /// Exact all-pairs construction and local search (`O(n³)` worst-case
    /// construction, `O(n²)` per polish pass). Byte-stable; the only mode
    /// that existed before candidate lists.
    Exact,
    /// Candidate-list search with the given `k` (nearest neighbours per
    /// point): incremental convex-hull insertion plus neighbour-list
    /// 2-opt / Or-opt with don't-look bits. Near `O(n log n)` in practice.
    Candidates(usize),
    /// Exact at or below [`AUTO_EXACT_THRESHOLD`] points (keeping small
    /// instances byte-identical), candidate lists with
    /// [`DEFAULT_CANDIDATES_K`] above it. The default.
    #[default]
    Auto,
}

impl SearchMode {
    /// Resolves `Auto` for an instance of `n` points; the result is always
    /// `Exact` or `Candidates(k)`.
    pub fn resolve(self, n: usize) -> SearchMode {
        match self {
            SearchMode::Auto => {
                if n <= AUTO_EXACT_THRESHOLD {
                    SearchMode::Exact
                } else {
                    SearchMode::Candidates(DEFAULT_CANDIDATES_K)
                }
            }
            other => other,
        }
    }

    /// Short human-readable label used in bench output.
    pub fn label(&self) -> String {
        match self {
            SearchMode::Exact => "exact".to_string(),
            SearchMode::Candidates(k) => format!("candidates({k})"),
            SearchMode::Auto => "auto".to_string(),
        }
    }
}

/// Configuration of the CHB circuit-construction pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChbConfig {
    /// Maximum number of full 2-opt sweeps (0 disables 2-opt).
    pub two_opt_passes: usize,
    /// Maximum number of full Or-opt sweeps (0 disables Or-opt).
    pub or_opt_passes: usize,
    /// Which neighbourhood the construction and polish passes search.
    pub search: SearchMode,
}

impl Default for ChbConfig {
    fn default() -> Self {
        // Enough passes to converge at the paper's instance sizes (≤ 50
        // targets) while keeping construction instantaneous. `Auto` search
        // keeps those sizes on the exact (byte-stable) path and switches to
        // candidate lists only above `AUTO_EXACT_THRESHOLD`.
        ChbConfig {
            two_opt_passes: 30,
            or_opt_passes: 30,
            search: SearchMode::Auto,
        }
    }
}

impl ChbConfig {
    /// A configuration with all polishing disabled — raw convex-hull
    /// insertion, used by the ablation bench.
    pub fn construction_only() -> Self {
        ChbConfig {
            two_opt_passes: 0,
            or_opt_passes: 0,
            search: SearchMode::Auto,
        }
    }

    /// Builder-style override of the search mode.
    pub fn with_search(mut self, search: SearchMode) -> Self {
        self.search = search;
        self
    }
}

/// Builds the CHB Hamiltonian circuit over `points` with the default
/// configuration.
pub fn construct_circuit(points: &[Point]) -> Tour {
    construct_circuit_with(points, &ChbConfig::default())
}

/// Builds the CHB Hamiltonian circuit with an explicit configuration.
///
/// In candidate-list mode (explicit or via `Auto` above the threshold) no
/// dense distance matrix is allocated — the `O(n²)` matrix is the first
/// thing that stops fitting at thousands of targets.
pub fn construct_circuit_with(points: &[Point], config: &ChbConfig) -> Tour {
    match config.search.resolve(points.len()) {
        SearchMode::Candidates(k) => construct_circuit_candidates(points, config, k),
        _ => {
            let dm = DistanceMatrix::from_points(points);
            construct_circuit_exact(points, &dm, config)
        }
    }
}

/// Builds the CHB Hamiltonian circuit reusing a precomputed distance matrix.
///
/// The matrix only feeds the exact path; in candidate-list mode distances
/// come straight from the coordinates (the candidate search never touches
/// `O(n²)` state).
pub fn construct_circuit_with_matrix(
    points: &[Point],
    dm: &DistanceMatrix,
    config: &ChbConfig,
) -> Tour {
    match config.search.resolve(points.len()) {
        SearchMode::Candidates(k) => construct_circuit_candidates(points, config, k),
        _ => construct_circuit_exact(points, dm, config),
    }
}

/// Builds the CHB Hamiltonian circuit under an arbitrary travel metric.
///
/// * `Euclidean` delegates to [`construct_circuit_with`] — the historical
///   code path, byte-identical tours included.
/// * `Road` precomputes the metric [`DistanceMatrix`] (one Dijkstra per
///   distinct snapped road node) and runs the matrix-backed pipeline:
///   exact construction + polish at or below the resolved threshold,
///   nearest-neighbour seeding + matrix candidate lists above it. The
///   convex-hull *seed* of the exact path still comes from the point
///   geometry (hulls are geometric objects), but every cost it compares is
///   a road distance.
pub fn construct_circuit_metric(
    points: &[Point],
    metric: &TravelMetric,
    config: &ChbConfig,
) -> Tour {
    if metric.is_euclidean() {
        return construct_circuit_with(points, config);
    }
    let dm = DistanceMatrix::from_metric(points, metric);
    match config.search.resolve(points.len()) {
        SearchMode::Candidates(k) => construct_circuit_candidates_matrix(points, &dm, config, k),
        _ => construct_circuit_exact(points, &dm, config),
    }
}

/// Builds the CHB circuit through the **dense-matrix** path at any size:
/// the full `O(n²)` Euclidean [`DistanceMatrix`] is materialised first,
/// then the resolved pipeline (exact at or below the threshold,
/// matrix-backed candidate lists above it) runs against it.
///
/// Functionally this mirrors [`construct_circuit_with`] — which never
/// allocates the matrix in candidate mode — and exists so `patrolctl
/// bench-scale` can measure the memory cost of the matrix representation
/// against the matrix-free pipeline at the same instance size (see
/// `docs/PERFORMANCE.md`). Everything runs under the existing
/// `graph.distance_matrix` / `chb.matrix_candidates` spans.
pub fn construct_circuit_matrix_backed(points: &[Point], config: &ChbConfig) -> Tour {
    let dm = DistanceMatrix::from_points(points);
    match config.search.resolve(points.len()) {
        SearchMode::Candidates(k) => construct_circuit_candidates_matrix(points, &dm, config, k),
        _ => construct_circuit_exact(points, &dm, config),
    }
}

/// The matrix-backed candidate pipeline: nearest-neighbour seeding plus
/// matrix candidate-list local search. Shared by the road-metric path and
/// [`construct_circuit_matrix_backed`].
fn construct_circuit_candidates_matrix(
    points: &[Point],
    dm: &DistanceMatrix,
    config: &ChbConfig,
    k: usize,
) -> Tour {
    let _pipeline = mule_obs::span("chb.matrix_candidates");
    mule_obs::add("n", points.len() as u64);
    mule_obs::add("k", k as u64);
    let mut tour = {
        let _s = mule_obs::span("chb.nn_seed");
        nearest_neighbor(points, dm, 0)
    };
    if config.two_opt_passes == 0 && config.or_opt_passes == 0 {
        return tour;
    }
    let candidates = {
        let _s = mule_obs::span("chb.candidate_lists");
        CandidateLists::from_matrix(dm, k.max(1))
    };
    if config.two_opt_passes > 0 {
        let _s = mule_obs::span("chb.two_opt");
        let moves = two_opt_candidates_matrix(&mut tour, dm, &candidates, config.two_opt_passes);
        mule_obs::add("moves", moves as u64);
    }
    if config.or_opt_passes > 0 {
        {
            let _s = mule_obs::span("chb.or_opt");
            let moves = or_opt_candidates_matrix(&mut tour, dm, &candidates, config.or_opt_passes);
            mule_obs::add("moves", moves as u64);
        }
        if config.two_opt_passes > 0 {
            let _s = mule_obs::span("chb.two_opt");
            let moves =
                two_opt_candidates_matrix(&mut tour, dm, &candidates, config.two_opt_passes);
            mule_obs::add("moves", moves as u64);
        }
    }
    tour
}

/// The exact pipeline: all-pairs convex-hull insertion, 2-opt, Or-opt, and
/// a final 2-opt. Byte-stable — golden tests pin its tours.
fn construct_circuit_exact(points: &[Point], dm: &DistanceMatrix, config: &ChbConfig) -> Tour {
    let _pipeline = mule_obs::span("chb.exact");
    mule_obs::add("n", points.len() as u64);
    let mut tour = {
        let _s = mule_obs::span("chb.hull_insertion");
        convex_hull_insertion(points, dm)
    };
    if config.two_opt_passes > 0 {
        let _s = mule_obs::span("chb.two_opt");
        let moves = two_opt(&mut tour, dm, config.two_opt_passes);
        mule_obs::add("moves", moves as u64);
    }
    if config.or_opt_passes > 0 {
        {
            let _s = mule_obs::span("chb.or_opt");
            let moves = or_opt(&mut tour, dm, config.or_opt_passes);
            mule_obs::add("moves", moves as u64);
        }
        // A final 2-opt pass cleans up crossings introduced by relocations.
        if config.two_opt_passes > 0 {
            let _s = mule_obs::span("chb.two_opt");
            let moves = two_opt(&mut tour, dm, config.two_opt_passes);
            mule_obs::add("moves", moves as u64);
        }
    }
    tour
}

/// The candidate-list pipeline: incremental insertion plus neighbour-list
/// local search, mirroring the exact pipeline's pass structure.
fn construct_circuit_candidates(points: &[Point], config: &ChbConfig, k: usize) -> Tour {
    let _pipeline = mule_obs::span("chb.candidates");
    mule_obs::add("n", points.len() as u64);
    mule_obs::add("k", k as u64);
    let mut tour = {
        let _s = mule_obs::span("chb.hull_seed");
        convex_hull_insertion_incremental(points)
    };
    if config.two_opt_passes == 0 && config.or_opt_passes == 0 {
        return tour;
    }
    let candidates = {
        let _s = mule_obs::span("chb.candidate_lists");
        CandidateLists::build(points, k.max(1))
    };
    if config.two_opt_passes > 0 {
        let _s = mule_obs::span("chb.two_opt");
        let moves = two_opt_candidates(&mut tour, points, &candidates, config.two_opt_passes);
        mule_obs::add("moves", moves as u64);
    }
    if config.or_opt_passes > 0 {
        {
            let _s = mule_obs::span("chb.or_opt");
            let moves = or_opt_candidates(&mut tour, points, &candidates, config.or_opt_passes);
            mule_obs::add("moves", moves as u64);
        }
        if config.two_opt_passes > 0 {
            let _s = mule_obs::span("chb.two_opt");
            let moves = two_opt_candidates(&mut tour, points, &candidates, config.two_opt_passes);
            mule_obs::add("moves", moves as u64);
        }
    }
    tour
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::pseudo_random_points;

    #[test]
    fn circuit_is_a_valid_hamiltonian_cycle() {
        let pts = pseudo_random_points(30, 12345);
        let tour = construct_circuit(&pts);
        assert!(tour.is_valid());
        assert_eq!(tour.len(), pts.len());
    }

    #[test]
    fn polishing_never_hurts() {
        let pts = pseudo_random_points(40, 777);
        let raw = construct_circuit_with(&pts, &ChbConfig::construction_only());
        let polished = construct_circuit(&pts);
        assert!(polished.length(&pts) <= raw.length(&pts) + 1e-9);
    }

    #[test]
    fn construction_is_deterministic_across_calls() {
        // The distributed-agreement property: every mule computes the same
        // circuit from the same target list.
        let pts = pseudo_random_points(25, 42);
        let a = construct_circuit(&pts);
        let b = construct_circuit(&pts);
        assert_eq!(a.order(), b.order());
    }

    #[test]
    fn circuit_length_is_within_twice_the_mst_bound() {
        let pts = pseudo_random_points(35, 9001);
        let dm = DistanceMatrix::from_points(&pts);
        let mst = crate::minimum_spanning_tree(&pts, &dm);
        let tour = construct_circuit(&pts);
        assert!(tour.length(&pts) <= 2.0 * mst.weight + 1e-9);
    }

    #[test]
    fn degenerate_target_counts_are_handled() {
        for n in 0..4 {
            let pts = pseudo_random_points(n, 5);
            let tour = construct_circuit(&pts);
            assert_eq!(tour.len(), n);
            assert!(tour.is_valid());
        }
    }

    #[test]
    fn default_config_enables_both_polishers() {
        let c = ChbConfig::default();
        assert!(c.two_opt_passes > 0 && c.or_opt_passes > 0);
        assert_eq!(c.search, SearchMode::Auto);
        let raw = ChbConfig::construction_only();
        assert_eq!(raw.two_opt_passes, 0);
        assert_eq!(raw.or_opt_passes, 0);
    }

    #[test]
    fn auto_mode_resolves_around_the_threshold() {
        assert_eq!(
            SearchMode::Auto.resolve(AUTO_EXACT_THRESHOLD),
            SearchMode::Exact
        );
        assert_eq!(
            SearchMode::Auto.resolve(AUTO_EXACT_THRESHOLD + 1),
            SearchMode::Candidates(DEFAULT_CANDIDATES_K)
        );
        assert_eq!(SearchMode::Exact.resolve(10_000), SearchMode::Exact);
        assert_eq!(
            SearchMode::Candidates(7).resolve(5),
            SearchMode::Candidates(7)
        );
        assert_eq!(SearchMode::Candidates(7).label(), "candidates(7)");
        assert_eq!(SearchMode::Auto.label(), "auto");
        assert_eq!(SearchMode::Exact.label(), "exact");
    }

    #[test]
    fn auto_is_byte_identical_to_exact_below_the_threshold() {
        for n in [5usize, 25, 50, AUTO_EXACT_THRESHOLD] {
            let pts = pseudo_random_points(n, 64);
            let auto = construct_circuit_with(&pts, &ChbConfig::default());
            let exact =
                construct_circuit_with(&pts, &ChbConfig::default().with_search(SearchMode::Exact));
            assert_eq!(auto.order(), exact.order(), "n = {n}");
        }
    }

    #[test]
    fn candidate_mode_yields_valid_near_exact_tours() {
        let pts = pseudo_random_points(150, 2024);
        let exact =
            construct_circuit_with(&pts, &ChbConfig::default().with_search(SearchMode::Exact));
        let fast = construct_circuit_with(
            &pts,
            &ChbConfig::default().with_search(SearchMode::Candidates(10)),
        );
        assert!(fast.is_valid());
        assert_eq!(fast.len(), pts.len());
        let ratio = fast.length(&pts) / exact.length(&pts);
        assert!(ratio <= 1.02, "candidate pipeline ratio {ratio:.4}");
    }

    #[test]
    fn candidate_mode_construction_only_skips_candidate_build() {
        let pts = pseudo_random_points(40, 7);
        let tour = construct_circuit_with(
            &pts,
            &ChbConfig::construction_only().with_search(SearchMode::Candidates(8)),
        );
        assert!(tour.is_valid());
        assert_eq!(tour.len(), pts.len());
    }

    #[test]
    fn metric_circuit_euclidean_is_byte_identical() {
        for n in [10usize, 60, AUTO_EXACT_THRESHOLD + 20] {
            let pts = pseudo_random_points(n, 31);
            let a = construct_circuit_metric(&pts, &TravelMetric::Euclidean, &ChbConfig::default());
            let b = construct_circuit_with(&pts, &ChbConfig::default());
            assert_eq!(a.order(), b.order(), "n = {n}");
        }
    }

    #[test]
    fn metric_circuit_road_is_valid_and_deterministic() {
        let idx = mule_road::RoadIndex::for_field(
            mule_road::RoadNetKind::Grid,
            &mule_geom::BoundingBox::square(800.0),
            9,
        );
        let metric = TravelMetric::road(idx);
        // Snap the points onto the network like road scenarios do.
        let pts: Vec<Point> = pseudo_random_points(40, 12)
            .iter()
            .map(|p| metric.road_index().unwrap().snap_position(p))
            .collect();
        let a = construct_circuit_metric(&pts, &metric, &ChbConfig::default());
        let b = construct_circuit_metric(&pts, &metric, &ChbConfig::default());
        assert_eq!(a.order(), b.order());
        assert!(a.is_valid());
        assert_eq!(a.len(), pts.len());
        // The road tour should beat naive identity order by road length.
        let dm = DistanceMatrix::from_metric(&pts, &metric);
        let naive: Vec<usize> = (0..pts.len()).collect();
        assert!(dm.cycle_length(a.order()) <= dm.cycle_length(&naive));
        // The candidate path also produces a valid tour on road costs.
        let large = construct_circuit_metric(
            &pts,
            &metric,
            &ChbConfig::default().with_search(SearchMode::Candidates(8)),
        );
        assert!(large.is_valid());
    }

    #[test]
    fn matrix_backed_pipeline_matches_quality_at_both_regimes() {
        // Below the threshold the matrix-backed entry point is the exact
        // pipeline — byte-identical to the default path.
        let small = pseudo_random_points(40, 99);
        let a = construct_circuit_matrix_backed(&small, &ChbConfig::default());
        let b = construct_circuit_with(&small, &ChbConfig::default());
        assert_eq!(a.order(), b.order());
        // Above it, the matrix candidate pipeline must stay near the
        // matrix-free candidate pipeline in quality.
        let large = pseudo_random_points(200, 99);
        let config = ChbConfig::default().with_search(SearchMode::Candidates(10));
        let matrix = construct_circuit_matrix_backed(&large, &config);
        let free = construct_circuit_with(&large, &config);
        assert!(matrix.is_valid());
        assert_eq!(matrix.len(), large.len());
        let ratio = matrix.length(&large) / free.length(&large);
        assert!((0.9..=1.1).contains(&ratio), "quality ratio {ratio:.4}");
    }

    #[test]
    fn auto_switches_to_candidates_above_the_threshold() {
        // Above the threshold the default config must still produce a valid
        // circuit (via the candidate path — this is what planners hit on
        // large scenarios).
        let pts = pseudo_random_points(AUTO_EXACT_THRESHOLD + 50, 5);
        let tour = construct_circuit(&pts);
        assert!(tour.is_valid());
        assert_eq!(tour.len(), pts.len());
    }
}
