//! Nearest-neighbour tour construction.
//!
//! The simplest Hamiltonian-circuit heuristic: start somewhere, repeatedly
//! walk to the closest unvisited target, close the cycle at the end. Used
//! as a cross-check and as a component of the Sweep baseline (each group's
//! internal route).

use crate::distance_matrix::DistanceMatrix;
use crate::tour::Tour;
use mule_geom::Point;

/// Builds a nearest-neighbour tour over `points`, starting from index
/// `start` (clamped to the valid range). Returns the trivial tour for fewer
/// than two points.
pub fn nearest_neighbor(points: &[Point], dm: &DistanceMatrix, start: usize) -> Tour {
    let n = points.len();
    if n <= 1 {
        return Tour::identity(n);
    }
    let start = start.min(n - 1);
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut current = start;
    visited[current] = true;
    order.push(current);
    for _ in 1..n {
        let (next, _) = dm
            .nearest_to(current, |j| !visited[j])
            .expect("unvisited points remain");
        visited[next] = true;
        order.push(next);
        current = next;
    }
    Tour::new(order)
}

/// Runs nearest-neighbour from every possible start point and returns the
/// shortest resulting tour — a common cheap improvement over a single run.
pub fn best_of_all_starts(points: &[Point], dm: &DistanceMatrix) -> Tour {
    let n = points.len();
    if n <= 1 {
        return Tour::identity(n);
    }
    (0..n)
        .map(|s| nearest_neighbor(points, dm, s))
        .min_by(|a, b| {
            a.length_with_matrix(dm)
                .total_cmp(&b.length_with_matrix(dm))
        })
        .expect("at least one start")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points() -> Vec<Point> {
        // 3 × 3 grid spaced 10 m apart.
        (0..9)
            .map(|i| Point::new((i % 3) as f64 * 10.0, (i / 3) as f64 * 10.0))
            .collect()
    }

    #[test]
    fn produces_a_valid_tour_from_any_start() {
        let pts = grid_points();
        let dm = DistanceMatrix::from_points(&pts);
        for start in 0..pts.len() {
            let tour = nearest_neighbor(&pts, &dm, start);
            assert!(tour.is_valid());
            assert_eq!(tour.len(), pts.len());
            assert_eq!(tour.order()[0], start);
        }
    }

    #[test]
    fn handles_degenerate_inputs() {
        let dm0 = DistanceMatrix::from_points(&[]);
        assert!(nearest_neighbor(&[], &dm0, 0).is_empty());
        let one = [Point::new(1.0, 1.0)];
        let dm1 = DistanceMatrix::from_points(&one);
        assert_eq!(nearest_neighbor(&one, &dm1, 5).len(), 1);
        let two = [Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let dm2 = DistanceMatrix::from_points(&two);
        let t = nearest_neighbor(&two, &dm2, 1);
        assert_eq!(t.order(), &[1, 0]);
    }

    #[test]
    fn start_index_is_clamped() {
        let pts = grid_points();
        let dm = DistanceMatrix::from_points(&pts);
        let tour = nearest_neighbor(&pts, &dm, 999);
        assert!(tour.is_valid());
        assert_eq!(tour.order()[0], pts.len() - 1);
    }

    #[test]
    fn greedy_choice_picks_the_adjacent_grid_point_first() {
        let pts = grid_points();
        let dm = DistanceMatrix::from_points(&pts);
        let tour = nearest_neighbor(&pts, &dm, 0);
        // From the corner (0,0) the first hop must be one of its two 10 m
        // neighbours, never the 14.1 m diagonal.
        let second = tour.order()[1];
        assert!(second == 1 || second == 3, "second visit was {second}");
    }

    #[test]
    fn best_of_all_starts_is_no_worse_than_any_single_start() {
        let pts = grid_points();
        let dm = DistanceMatrix::from_points(&pts);
        let best = best_of_all_starts(&pts, &dm).length_with_matrix(&dm);
        for s in 0..pts.len() {
            let single = nearest_neighbor(&pts, &dm, s).length_with_matrix(&dm);
            assert!(best <= single + 1e-9);
        }
    }
}
