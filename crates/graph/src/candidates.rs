//! Candidate-list local search (k-nearest-neighbour 2-opt / Or-opt).
//!
//! The exact [`two_opt`](crate::two_opt()) / [`or_opt`](crate::or_opt())
//! sweeps examine all `O(n²)` point pairs per pass, which is fine at the
//! paper's ≤ 50 targets but hopeless at thousands. This module implements
//! the classic scaling remedy (Bentley's TSP engineering): almost every
//! improving move replaces a tour edge with an edge to one of a point's few
//! geometrically nearest neighbours, so it suffices to examine **candidate
//! edges** only:
//!
//! * [`CandidateLists`] — per-point k-nearest-neighbour lists built from the
//!   [`mule_geom::KdTree`] in `O(n·k·log n)`, sorted by distance;
//! * [`two_opt_candidates`] — 2-opt restricted to candidate edges, with
//!   *don't-look bits* (a point whose neighbourhood yields no improving move
//!   is skipped until one of its tour edges changes) and shorter-arc
//!   reversals via [`Tour::reverse_arc`];
//! * [`or_opt_candidates`] — chain relocation (lengths 1–3) whose
//!   reinsertion edges come from the chain endpoints' candidate lists.
//!
//! Both searches work directly off the point coordinates (distances are
//! recomputed on demand), so no `O(n²)` [`DistanceMatrix`] allocation is
//! needed — at n = 5000 the dense matrix alone would cost 200 MB.
//!
//! Like their exact counterparts, both searches only ever *shorten* the
//! tour (acceptance threshold `1e-10`) and terminate when no candidate move
//! improves or the round budget is exhausted. They are deterministic: points
//! are scanned in index order and moves applied eagerly.
//!
//! [`DistanceMatrix`]: crate::DistanceMatrix

use crate::distance_matrix::DistanceMatrix;
use crate::tour::Tour;
use mule_geom::{KdTree, Point};

/// Acceptance threshold shared with the exact local searches: a move must
/// shorten the tour by more than this to be applied, which guards against
/// floating-point churn on already-optimal tours.
const GAIN_EPS: f64 = 1e-10;

/// Where the candidate searches read pairwise distances from.
///
/// The classic path recomputes Euclidean distances from the coordinates on
/// demand (no `O(n²)` state); the matrix path serves non-Euclidean metrics
/// (road networks) whose distances were precomputed once. Both searches are
/// generic over this trait and monomorphise, so the historical
/// point-backed code path compiles to exactly the same inner loop as
/// before.
trait SearchDist {
    /// Distance between points `i` and `j`.
    fn d(&self, i: usize, j: usize) -> f64;
}

impl SearchDist for &[Point] {
    #[inline]
    fn d(&self, i: usize, j: usize) -> f64 {
        dist(self, i, j)
    }
}

impl SearchDist for &DistanceMatrix {
    #[inline]
    fn d(&self, i: usize, j: usize) -> f64 {
        self.get(i, j)
    }
}

/// Per-point k-nearest-neighbour candidate lists, sorted by distance.
#[derive(Debug, Clone)]
pub struct CandidateLists {
    /// `lists[i]` holds the indices of the k nearest neighbours of point
    /// `i` (excluding `i` itself), nearest first.
    lists: Vec<Vec<u32>>,
    k: usize,
}

impl CandidateLists {
    /// Builds k-nearest-neighbour lists over `points` using a kd-tree.
    /// `k` is clamped to `points.len() - 1`.
    pub fn build(points: &[Point], k: usize) -> Self {
        let n = points.len();
        let k = k.min(n.saturating_sub(1));
        if k == 0 {
            return CandidateLists {
                lists: vec![Vec::new(); n],
                k,
            };
        }
        let tree = KdTree::build(points);
        let lists = points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                // Query k+1 and drop the point itself (duplicates of `p` at
                // other indices are legitimate candidates).
                tree.k_nearest(p, k + 1)
                    .into_iter()
                    .filter(|&(j, _)| j != i)
                    .take(k)
                    .map(|(j, _)| j as u32)
                    .collect()
            })
            .collect();
        CandidateLists { lists, k }
    }

    /// Builds k-nearest-neighbour lists from a precomputed distance
    /// matrix — the entry point for non-Euclidean metrics, where "nearest"
    /// must mean nearest *by travel distance* (a road detour can make a
    /// geometric neighbour a poor reconnection candidate). Ties break by
    /// index so the lists are deterministic. `k` is clamped to
    /// `matrix.len() - 1`.
    pub fn from_matrix(matrix: &DistanceMatrix, k: usize) -> Self {
        let n = matrix.len();
        let k = k.min(n.saturating_sub(1));
        if k == 0 {
            return CandidateLists {
                lists: vec![Vec::new(); n],
                k,
            };
        }
        let lists = (0..n)
            .map(|i| {
                let by_distance = |&a: &u32, &b: &u32| {
                    matrix
                        .get(i, a as usize)
                        .total_cmp(&matrix.get(i, b as usize))
                        .then(a.cmp(&b))
                };
                let mut order: Vec<u32> = (0..n as u32).filter(|&j| j as usize != i).collect();
                // Top-k selection, then sort only the survivors: O(n + k
                // log k) per point instead of a full O(n log n) sort. The
                // (distance, index) comparator is a total order, so the
                // selected set — and its sorted order — is exactly what
                // the full sort would produce.
                if k < order.len() {
                    order.select_nth_unstable_by(k - 1, by_distance);
                    order.truncate(k);
                }
                order.sort_by(by_distance);
                order
            })
            .collect();
        CandidateLists { lists, k }
    }

    /// The neighbour list of point `i`, nearest first.
    #[inline]
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.lists[i]
    }

    /// The `k` the lists were built with (after clamping).
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of points the lists cover.
    #[inline]
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// Returns `true` when built over an empty point set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }
}

#[inline]
fn dist(points: &[Point], i: usize, j: usize) -> f64 {
    points[i].distance(&points[j])
}

/// 2-opt restricted to candidate edges, with don't-look bits.
///
/// For each "active" point `t1` and each of its two tour edges `(t1, t2)`,
/// only reconnections `(t1, t3)` with `t3` in `t1`'s candidate list are
/// examined; since the list is sorted, the scan stops as soon as
/// `d(t1, t3) ≥ d(t1, t2)` (no such move can improve — the symmetric case
/// is found from `t3`'s own scan). A point with no improving move goes to
/// sleep until a move changes one of its edges.
///
/// `max_rounds` bounds the number of full passes over all points (mirroring
/// the exact `two_opt`'s `max_passes`). Returns the number of improving
/// moves applied; the tour is never lengthened.
pub fn two_opt_candidates(
    tour: &mut Tour,
    points: &[Point],
    candidates: &CandidateLists,
    max_rounds: usize,
) -> usize {
    two_opt_candidates_by(tour, &points, candidates, max_rounds)
}

/// [`two_opt_candidates`] reading distances from a precomputed matrix —
/// the variant metric-aware pipelines use (candidate lists should then come
/// from [`CandidateLists::from_matrix`] so "nearest" matches the metric).
pub fn two_opt_candidates_matrix(
    tour: &mut Tour,
    matrix: &DistanceMatrix,
    candidates: &CandidateLists,
    max_rounds: usize,
) -> usize {
    two_opt_candidates_by(tour, &matrix, candidates, max_rounds)
}

fn two_opt_candidates_by<D: SearchDist>(
    tour: &mut Tour,
    points: &D,
    candidates: &CandidateLists,
    max_rounds: usize,
) -> usize {
    let n = tour.len();
    if n < 4 {
        return 0;
    }
    debug_assert_eq!(candidates.len(), n, "candidate lists cover the tour");
    let mut pos = tour.position_index();
    let mut dont_look = vec![false; n];
    let mut moves = 0usize;

    for _ in 0..max_rounds {
        let mut improved_any = false;
        for t1 in 0..n {
            if dont_look[t1] {
                continue;
            }
            let mut improved_here = false;
            // `succ = true` examines edge (t1, succ(t1)); `succ = false`
            // examines edge (pred(t1), t1) from t1's side.
            for succ in [true, false] {
                loop {
                    let p1 = pos[t1];
                    let t2 = if succ {
                        tour.order()[(p1 + 1) % n]
                    } else {
                        tour.order()[(p1 + n - 1) % n]
                    };
                    let d_t1_t2 = points.d(t1, t2);
                    let mut applied = false;
                    for &c in candidates.neighbors(t1) {
                        let t3 = c as usize;
                        let d_t1_t3 = points.d(t1, t3);
                        if d_t1_t3 >= d_t1_t2 {
                            break; // sorted list: no shorter new edge left
                        }
                        let p3 = pos[t3];
                        let t4 = if succ {
                            tour.order()[(p3 + 1) % n]
                        } else {
                            tour.order()[(p3 + n - 1) % n]
                        };
                        if t3 == t2 || t4 == t1 {
                            continue; // adjacent edges — reversal is a no-op
                        }
                        let gain = d_t1_t2 + points.d(t3, t4) - d_t1_t3 - points.d(t2, t4);
                        if gain > GAIN_EPS {
                            // Removing (t1,t2) and (t3,t4), adding (t1,t3)
                            // and (t2,t4): reverse the run between the two
                            // removed edges.
                            if succ {
                                tour.reverse_arc(pos[t2], pos[t3], &mut pos);
                            } else {
                                tour.reverse_arc(pos[t1], pos[t4], &mut pos);
                            }
                            moves += 1;
                            applied = true;
                            improved_here = true;
                            improved_any = true;
                            for t in [t1, t2, t3, t4] {
                                dont_look[t] = false;
                            }
                            break;
                        }
                    }
                    if !applied {
                        break; // this edge of t1 is locally optimal
                    }
                }
            }
            if !improved_here {
                dont_look[t1] = true;
            }
        }
        if !improved_any {
            break;
        }
    }
    moves
}

/// Or-opt (chain relocation, lengths 1–3) restricted to candidate edges.
///
/// For each active point `a`, the chains starting at `a` are tried against
/// reinsertion edges adjacent to the candidates of the chain's endpoints.
/// The chain may be inserted forward or reversed, whichever is cheaper, and
/// the best improving candidate position is taken. Don't-look bits skip
/// points whose neighbourhood yielded no improving relocation.
///
/// Returns the number of improving relocations applied; the tour is never
/// lengthened.
pub fn or_opt_candidates(
    tour: &mut Tour,
    points: &[Point],
    candidates: &CandidateLists,
    max_rounds: usize,
) -> usize {
    or_opt_candidates_by(tour, &points, candidates, max_rounds)
}

/// [`or_opt_candidates`] reading distances from a precomputed matrix (see
/// [`two_opt_candidates_matrix`]).
pub fn or_opt_candidates_matrix(
    tour: &mut Tour,
    matrix: &DistanceMatrix,
    candidates: &CandidateLists,
    max_rounds: usize,
) -> usize {
    or_opt_candidates_by(tour, &matrix, candidates, max_rounds)
}

fn or_opt_candidates_by<D: SearchDist>(
    tour: &mut Tour,
    points: &D,
    candidates: &CandidateLists,
    max_rounds: usize,
) -> usize {
    let n = tour.len();
    if n < 5 {
        return 0;
    }
    debug_assert_eq!(candidates.len(), n, "candidate lists cover the tour");
    let mut pos = tour.position_index();
    let mut dont_look = vec![false; n];
    let mut moves = 0usize;

    for _ in 0..max_rounds {
        let mut improved_any = false;
        for a in 0..n {
            if dont_look[a] {
                continue;
            }
            if let Some(touched) = try_relocate_candidates(tour, points, candidates, a, &mut pos) {
                moves += 1;
                improved_any = true;
                for t in touched {
                    dont_look[t] = false;
                }
            } else {
                dont_look[a] = true;
            }
        }
        if !improved_any {
            break;
        }
    }
    moves
}

/// Tries the best candidate relocation of the chains of length 1–3 starting
/// at point `a`. On success applies the move, refreshes `pos`, and returns
/// the points whose tour edges changed.
fn try_relocate_candidates<D: SearchDist>(
    tour: &mut Tour,
    points: &D,
    candidates: &CandidateLists,
    a: usize,
    pos: &mut Vec<usize>,
) -> Option<[usize; 6]> {
    let n = tour.len();
    let mut best: Option<(f64, [usize; 3], usize, usize, bool)> = None; // (gain, chain, chain_len, edge_start, reversed)

    for chain_len in 1..=3usize {
        if chain_len >= n - 2 {
            break;
        }
        let start = pos[a];
        let mut chain = [0usize; 3];
        for (s, slot) in chain.iter_mut().enumerate().take(chain_len) {
            *slot = tour.order()[(start + s) % n];
        }
        let chain_first = chain[0];
        let chain_last = chain[chain_len - 1];
        let before = tour.order()[(start + n - 1) % n];
        let after = tour.order()[(start + chain_len) % n];
        if chain[..chain_len].contains(&before) || chain[..chain_len].contains(&after) {
            continue; // chain wraps the whole tour
        }
        let removed =
            points.d(before, chain_first) + points.d(chain_last, after) - points.d(before, after);
        if removed <= GAIN_EPS {
            continue; // excision itself saves nothing; no reinsertion can win
        }

        // Candidate reinsertion edges: (c, succ(c)) for c near either chain
        // endpoint. Scanning both endpoints' lists covers forward and
        // reversed insertions.
        for list in [
            candidates.neighbors(chain_first),
            candidates.neighbors(chain_last),
        ] {
            for &c in list {
                let i = c as usize;
                if chain[..chain_len].contains(&i) || i == before {
                    continue; // edge inside the chain or the excised edge
                }
                let j = tour.order()[(pos[i] + 1) % n];
                if chain[..chain_len].contains(&j) {
                    continue;
                }
                let d_i_j = points.d(i, j);
                let fwd = points.d(i, chain_first) + points.d(chain_last, j) - d_i_j;
                let rev = points.d(i, chain_last) + points.d(chain_first, j) - d_i_j;
                let (added, reversed) = if rev < fwd { (rev, true) } else { (fwd, false) };
                let gain = removed - added;
                if gain > GAIN_EPS && best.map(|(g, ..)| gain > g).unwrap_or(true) {
                    best = Some((gain, chain, chain_len, i, reversed));
                }
            }
        }
    }

    let (_, chain, chain_len, edge_start, reversed) = best?;
    let chain_first = chain[0];
    let chain_last = chain[chain_len - 1];
    let start = pos[chain_first];
    let before = tour.order()[(start + n - 1) % n];
    let after = tour.order()[(start + chain_len) % n];
    let edge_end = tour.order()[(pos[edge_start] + 1) % n];

    // Splice: rebuild the order without the chain, then insert it after
    // `edge_start`. O(n), but only paid on applied (improving) moves.
    let mut new_order = Vec::with_capacity(n);
    for p in 0..n {
        let idx = tour.order()[p];
        if chain[..chain_len].contains(&idx) {
            continue;
        }
        new_order.push(idx);
        if idx == edge_start {
            if reversed {
                new_order.extend(chain[..chain_len].iter().rev().copied());
            } else {
                new_order.extend(chain[..chain_len].iter().copied());
            }
        }
    }
    debug_assert_eq!(new_order.len(), n);
    *tour = Tour::new(new_order);
    *pos = tour.position_index();
    Some([before, after, chain_first, chain_last, edge_start, edge_end])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance_matrix::DistanceMatrix;
    use crate::insertion::convex_hull_insertion;
    use crate::test_support::pseudo_random_points;

    #[test]
    fn candidate_lists_are_sorted_and_exclude_self() {
        let pts = pseudo_random_points(40, 3);
        let cand = CandidateLists::build(&pts, 8);
        assert_eq!(cand.len(), 40);
        assert_eq!(cand.k(), 8);
        for i in 0..pts.len() {
            let list = cand.neighbors(i);
            assert_eq!(list.len(), 8);
            assert!(list.iter().all(|&j| j as usize != i));
            for w in list.windows(2) {
                assert!(
                    dist(&pts, i, w[0] as usize) <= dist(&pts, i, w[1] as usize) + 1e-12,
                    "list of {i} is sorted by distance"
                );
            }
        }
    }

    #[test]
    fn candidate_lists_match_brute_force_nearest() {
        let pts = pseudo_random_points(60, 9);
        let cand = CandidateLists::build(&pts, 5);
        for i in 0..pts.len() {
            let mut brute: Vec<usize> = (0..pts.len()).filter(|&j| j != i).collect();
            brute.sort_by(|&a, &b| dist(&pts, i, a).total_cmp(&dist(&pts, i, b)));
            let brute_d: Vec<f64> = brute[..5].iter().map(|&j| dist(&pts, i, j)).collect();
            let got_d: Vec<f64> = cand
                .neighbors(i)
                .iter()
                .map(|&j| dist(&pts, i, j as usize))
                .collect();
            for (g, b) in got_d.iter().zip(&brute_d) {
                assert!((g - b).abs() < 1e-9, "point {i}: {got_d:?} vs {brute_d:?}");
            }
        }
    }

    #[test]
    fn candidate_lists_clamp_k_and_handle_tiny_sets() {
        let pts = pseudo_random_points(3, 1);
        let cand = CandidateLists::build(&pts, 10);
        assert_eq!(cand.k(), 2);
        assert!(!cand.is_empty());
        let empty = CandidateLists::build(&[], 4);
        assert!(empty.is_empty());
        assert_eq!(empty.k(), 0);
        let single = CandidateLists::build(&[Point::ORIGIN], 4);
        assert_eq!(single.k(), 0);
        assert!(single.neighbors(0).is_empty());
    }

    #[test]
    fn candidate_two_opt_uncrosses_and_never_lengthens() {
        for salt in [7u64, 21, 90] {
            let pts = pseudo_random_points(60, salt);
            let cand = CandidateLists::build(&pts, 10);
            let mut tour = Tour::identity(pts.len());
            let before = tour.length(&pts);
            let moves = two_opt_candidates(&mut tour, &pts, &cand, 100);
            assert!(moves > 0, "salt {salt}: the identity tour is improvable");
            assert!(tour.is_valid());
            assert!(tour.length(&pts) < before);
        }
    }

    #[test]
    fn candidate_or_opt_relocates_and_never_lengthens() {
        for salt in [5u64, 33] {
            let pts = pseudo_random_points(50, salt);
            let cand = CandidateLists::build(&pts, 10);
            let dm = DistanceMatrix::from_points(&pts);
            let mut tour = convex_hull_insertion(&pts, &dm);
            let before = tour.length(&pts);
            or_opt_candidates(&mut tour, &pts, &cand, 100);
            assert!(tour.is_valid());
            assert!(tour.length(&pts) <= before + 1e-9);
        }
    }

    #[test]
    fn candidate_search_matches_exact_quality_closely() {
        // On mid-size instances, candidate-list polishing lands within a
        // couple of percent of the exact all-pairs polishing.
        for salt in [11u64, 47, 101] {
            let pts = pseudo_random_points(120, salt);
            let dm = DistanceMatrix::from_points(&pts);

            let mut exact = convex_hull_insertion(&pts, &dm);
            crate::two_opt(&mut exact, &dm, 30);
            crate::or_opt(&mut exact, &dm, 30);
            crate::two_opt(&mut exact, &dm, 30);

            let cand = CandidateLists::build(&pts, 10);
            let mut fast = convex_hull_insertion(&pts, &dm);
            two_opt_candidates(&mut fast, &pts, &cand, 100);
            or_opt_candidates(&mut fast, &pts, &cand, 100);
            two_opt_candidates(&mut fast, &pts, &cand, 100);

            let ratio = fast.length(&pts) / exact.length(&pts);
            assert!(
                ratio <= 1.02,
                "salt {salt}: candidate search ratio {ratio:.4}"
            );
            assert!(fast.is_valid());
        }
    }

    #[test]
    fn matrix_backed_search_is_byte_identical_to_point_backed() {
        // With a Euclidean matrix, the matrix code path must apply exactly
        // the same moves in the same order as the coordinate code path —
        // the generic core monomorphises over the distance source only.
        for salt in [3u64, 19, 77] {
            let pts = pseudo_random_points(80, salt);
            let dm = DistanceMatrix::from_points(&pts);
            let cand = CandidateLists::build(&pts, 8);

            let mut by_points = Tour::identity(pts.len());
            let mut by_matrix = Tour::identity(pts.len());
            let a = two_opt_candidates(&mut by_points, &pts, &cand, 50);
            let b = two_opt_candidates_matrix(&mut by_matrix, &dm, &cand, 50);
            assert_eq!(a, b);
            assert_eq!(by_points.order(), by_matrix.order());

            let c = or_opt_candidates(&mut by_points, &pts, &cand, 50);
            let d = or_opt_candidates_matrix(&mut by_matrix, &dm, &cand, 50);
            assert_eq!(c, d);
            assert_eq!(by_points.order(), by_matrix.order());
        }
    }

    #[test]
    fn from_matrix_lists_are_sorted_by_matrix_distance() {
        let pts = pseudo_random_points(30, 6);
        let dm = DistanceMatrix::from_points(&pts);
        let cand = CandidateLists::from_matrix(&dm, 6);
        assert_eq!(cand.k(), 6);
        for i in 0..pts.len() {
            let list = cand.neighbors(i);
            assert_eq!(list.len(), 6);
            assert!(list.iter().all(|&j| j as usize != i));
            for w in list.windows(2) {
                assert!(dm.get(i, w[0] as usize) <= dm.get(i, w[1] as usize) + 1e-12);
            }
            // Same neighbour *distances* as the kd-tree build (tie order
            // may differ between the two constructions).
            let tree_list = CandidateLists::build(&pts, 6);
            let a: Vec<f64> = list.iter().map(|&j| dm.get(i, j as usize)).collect();
            let b: Vec<f64> = tree_list
                .neighbors(i)
                .iter()
                .map(|&j| dm.get(i, j as usize))
                .collect();
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-9);
            }
        }
        let empty = CandidateLists::from_matrix(&DistanceMatrix::from_points(&[]), 4);
        assert!(empty.is_empty());
    }

    #[test]
    fn tiny_tours_are_untouched() {
        let pts = pseudo_random_points(3, 2);
        let cand = CandidateLists::build(&pts, 2);
        let mut tour = Tour::identity(3);
        assert_eq!(two_opt_candidates(&mut tour, &pts, &cand, 10), 0);
        assert_eq!(or_opt_candidates(&mut tour, &pts, &cand, 10), 0);
        assert_eq!(tour.order(), &[0, 1, 2]);
    }

    #[test]
    fn zero_round_budget_is_a_no_op() {
        let pts = pseudo_random_points(30, 8);
        let cand = CandidateLists::build(&pts, 8);
        let mut tour = Tour::identity(pts.len());
        assert_eq!(two_opt_candidates(&mut tour, &pts, &cand, 0), 0);
        assert_eq!(or_opt_candidates(&mut tour, &pts, &cand, 0), 0);
        assert_eq!(tour.order(), Tour::identity(pts.len()).order());
    }

    #[test]
    fn duplicate_points_are_handled() {
        let mut pts = pseudo_random_points(20, 4);
        pts.push(pts[0]);
        pts.push(pts[5]);
        let cand = CandidateLists::build(&pts, 6);
        let mut tour = Tour::identity(pts.len());
        let before = tour.length(&pts);
        two_opt_candidates(&mut tour, &pts, &cand, 50);
        or_opt_candidates(&mut tour, &pts, &cand, 50);
        assert!(tour.is_valid());
        assert!(tour.length(&pts) <= before + 1e-9);
    }
}
