//! Hamiltonian cycles over point indices.
//!
//! A [`Tour`] is an ordering of the indices `0..n` interpreted as a closed
//! cycle: the mule visits `order[0], order[1], …, order[n-1]` and then
//! returns to `order[0]`. Planners manipulate tours by index so that target
//! metadata (weights, identities) stays attached to its original slot.

use crate::distance_matrix::DistanceMatrix;
use mule_geom::{Point, Polyline};
use serde::{Deserialize, Serialize};

/// An ordered Hamiltonian cycle over the point indices `0..n`.
///
/// The `Default` tour is empty (no points), which lets callers
/// `std::mem::take` a tour to work on its order without cloning.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tour {
    order: Vec<usize>,
}

impl Tour {
    /// Creates a tour from an explicit visiting order.
    pub fn new(order: Vec<usize>) -> Self {
        Tour { order }
    }

    /// The identity tour `0, 1, …, n-1`.
    pub fn identity(n: usize) -> Self {
        Tour {
            order: (0..n).collect(),
        }
    }

    /// The visiting order (without the implicit closing edge).
    #[inline]
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Number of visited points.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` for an empty tour.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Returns `true` when the tour is a permutation of `0..n` — every index
    /// appears exactly once.
    pub fn is_valid(&self) -> bool {
        let n = self.order.len();
        let mut seen = vec![false; n];
        for &i in &self.order {
            if i >= n || seen[i] {
                return false;
            }
            seen[i] = true;
        }
        true
    }

    /// Total length of the closed tour over `points`.
    pub fn length(&self, points: &[Point]) -> f64 {
        if self.order.len() < 2 {
            return 0.0;
        }
        let mut total = 0.0;
        for w in self.order.windows(2) {
            total += points[w[0]].distance(&points[w[1]]);
        }
        total + points[*self.order.last().unwrap()].distance(&points[self.order[0]])
    }

    /// Total length using a precomputed distance matrix.
    pub fn length_with_matrix(&self, dm: &DistanceMatrix) -> f64 {
        dm.cycle_length(&self.order)
    }

    /// The successor of position `pos` in cyclic order.
    #[inline]
    pub fn next_pos(&self, pos: usize) -> usize {
        (pos + 1) % self.order.len()
    }

    /// The predecessor of position `pos` in cyclic order.
    #[inline]
    pub fn prev_pos(&self, pos: usize) -> usize {
        (pos + self.order.len() - 1) % self.order.len()
    }

    /// Position of point index `target` within the tour, if present.
    pub fn position_of(&self, target: usize) -> Option<usize> {
        self.order.iter().position(|&i| i == target)
    }

    /// The directed edges of the tour as `(from_index, to_index)` pairs,
    /// including the closing edge.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let n = self.order.len();
        if n < 2 {
            return Vec::new();
        }
        (0..n)
            .map(|i| (self.order[i], self.order[(i + 1) % n]))
            .collect()
    }

    /// Rotates the tour (in place) so that traversal starts at the point
    /// index `start`. No-op when `start` is not in the tour.
    pub fn rotate_to_start(&mut self, start: usize) {
        if let Some(pos) = self.position_of(start) {
            self.order.rotate_left(pos);
        }
    }

    /// Reverses the sub-sequence of positions `[i, j]` (inclusive), the
    /// 2-opt move primitive. Indices are positions in the tour, not point
    /// indices; `i <= j` is required.
    ///
    /// This is the *literal* (array-level) reversal used by the exact
    /// pipeline, kept byte-for-byte stable so golden tours never change.
    /// The candidate-list local search uses [`Tour::reverse_arc`] instead,
    /// which reverses whichever cyclic arc is shorter.
    pub fn reverse_segment(&mut self, i: usize, j: usize) {
        if i < j && j < self.order.len() {
            self.order[i..=j].reverse();
        }
    }

    /// Builds the inverse mapping `pos[point] = position` of the current
    /// order, i.e. `pos[self.order()[p]] == p` for every position `p`.
    /// The candidate-list local search keeps this index up to date across
    /// [`Tour::reverse_arc`] calls to answer successor/predecessor queries
    /// in `O(1)`.
    pub fn position_index(&self) -> Vec<usize> {
        let mut pos = vec![0usize; self.order.len()];
        for (p, &i) in self.order.iter().enumerate() {
            pos[i] = p;
        }
        pos
    }

    /// Reverses the cyclic run of positions from `from` to `to` (inclusive,
    /// walking forward and wrapping past the end), updating the caller's
    /// position index in place.
    ///
    /// Unlike [`Tour::reverse_segment`] this is orientation-agnostic: when
    /// the complementary arc is shorter, *that* arc is physically reversed
    /// instead — an equivalent cycle under symmetric distances — so a 2-opt
    /// move always costs `O(min(arc, n − arc))` element swaps instead of a
    /// full-arc `O(n)` reverse. Length bookkeeping stays exact because the
    /// removed and added edges are identical either way.
    ///
    /// # Panics
    /// Panics (in debug builds) when `pos` is not the position index of the
    /// current order.
    pub fn reverse_arc(&mut self, from: usize, to: usize, pos: &mut [usize]) {
        let n = self.order.len();
        if n < 2 {
            return;
        }
        debug_assert_eq!(pos.len(), n, "position index length mismatch");
        let inner = (to + n - from) % n + 1;
        // Reverse whichever arc is shorter; reversing the complement
        // `[to+1, from-1]` produces the same cycle.
        let (mut a, mut b, len) = if inner <= n - inner {
            (from, to, inner)
        } else {
            ((to + 1) % n, (from + n - 1) % n, n - inner)
        };
        for _ in 0..len / 2 {
            self.order.swap(a, b);
            pos[self.order[a]] = a;
            pos[self.order[b]] = b;
            a = (a + 1) % n;
            b = (b + n - 1) % n;
        }
    }

    /// Removes the point at tour position `pos` and returns its index.
    pub fn remove_at(&mut self, pos: usize) -> Option<usize> {
        if pos < self.order.len() {
            Some(self.order.remove(pos))
        } else {
            None
        }
    }

    /// Inserts point index `target` so that it is visited after position
    /// `pos` (or at the front when the tour is empty).
    pub fn insert_after(&mut self, pos: usize, target: usize) {
        if self.order.is_empty() {
            self.order.push(target);
        } else {
            let at = (pos + 1).min(self.order.len());
            self.order.insert(at, target);
        }
    }

    /// Converts the tour into the closed [`Polyline`] over the actual
    /// coordinates, ready to hand to the simulator.
    pub fn to_polyline(&self, points: &[Point]) -> Polyline {
        Polyline::closed(self.order.iter().map(|&i| points[i]).collect())
    }

    /// Consumes the tour and returns the underlying order.
    pub fn into_order(self) -> Vec<usize> {
        self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_points() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ]
    }

    #[test]
    fn identity_tour_is_valid_and_has_square_perimeter() {
        let pts = square_points();
        let tour = Tour::identity(4);
        assert!(tour.is_valid());
        assert_eq!(tour.len(), 4);
        assert!((tour.length(&pts) - 40.0).abs() < 1e-12);
        let dm = DistanceMatrix::from_points(&pts);
        assert!((tour.length_with_matrix(&dm) - 40.0).abs() < 1e-12);
    }

    #[test]
    fn validity_rejects_duplicates_and_out_of_range() {
        assert!(!Tour::new(vec![0, 1, 1, 3]).is_valid());
        assert!(!Tour::new(vec![0, 1, 2, 4]).is_valid());
        assert!(Tour::new(vec![]).is_valid());
        assert!(Tour::new(vec![2, 0, 1]).is_valid());
    }

    #[test]
    fn edges_wrap_around() {
        let tour = Tour::new(vec![2, 0, 3, 1]);
        assert_eq!(tour.edges(), vec![(2, 0), (0, 3), (3, 1), (1, 2)]);
        assert!(Tour::new(vec![7]).edges().is_empty());
    }

    #[test]
    fn cyclic_navigation_helpers() {
        let tour = Tour::identity(4);
        assert_eq!(tour.next_pos(3), 0);
        assert_eq!(tour.prev_pos(0), 3);
        assert_eq!(tour.position_of(2), Some(2));
        assert_eq!(tour.position_of(9), None);
    }

    #[test]
    fn rotation_preserves_validity_and_length() {
        let pts = square_points();
        let mut tour = Tour::identity(4);
        tour.rotate_to_start(2);
        assert_eq!(tour.order()[0], 2);
        assert!(tour.is_valid());
        assert!((tour.length(&pts) - 40.0).abs() < 1e-12);
        // Rotating to an unknown index leaves the tour unchanged.
        let before = tour.clone();
        tour.rotate_to_start(99);
        assert_eq!(tour, before);
    }

    #[test]
    fn reverse_segment_performs_a_two_opt_move() {
        // A crossed square: 0-2-1-3 has crossing diagonals; reversing
        // positions 1..=2 uncrosses it.
        let pts = square_points();
        let mut tour = Tour::new(vec![0, 2, 1, 3]);
        let before = tour.length(&pts);
        tour.reverse_segment(1, 2);
        assert_eq!(tour.order(), &[0, 1, 2, 3]);
        assert!(tour.length(&pts) < before);
        assert!(tour.is_valid());
    }

    #[test]
    fn position_index_inverts_the_order() {
        let tour = Tour::new(vec![3, 1, 0, 2]);
        let pos = tour.position_index();
        for (p, &i) in tour.order().iter().enumerate() {
            assert_eq!(pos[i], p);
        }
    }

    #[test]
    fn reverse_arc_matches_reverse_segment_on_inner_arcs() {
        let mut a = Tour::new(vec![0, 1, 2, 3, 4, 5]);
        let mut b = a.clone();
        let mut pos = b.position_index();
        a.reverse_segment(1, 2);
        b.reverse_arc(1, 2, &mut pos);
        assert_eq!(a.order(), b.order());
        assert_eq!(pos, b.position_index());
    }

    #[test]
    fn reverse_arc_of_the_long_way_reverses_the_complement() {
        // Reversing positions 4..=1 (wrapping) touches {4, 5, 0, 1}; the
        // complement {2, 3} is shorter, so that is what physically moves.
        let pts = square_points();
        let mut tour = Tour::new(vec![0, 2, 1, 3]);
        let before = tour.length(&pts);
        let mut pos = tour.position_index();
        // Same 2-opt move as reverse_segment(1, 2) expressed as the
        // complementary wrapped arc 3..=0.
        tour.reverse_arc(3, 0, &mut pos);
        assert!(tour.is_valid());
        assert!(tour.length(&pts) < before, "the square is uncrossed");
        assert_eq!(pos, tour.position_index());
        // The cycle is 0-1-2-3 up to rotation/direction: every edge has
        // length 10.
        let dm = DistanceMatrix::from_points(&pts);
        assert!((tour.length_with_matrix(&dm) - 40.0).abs() < 1e-12);
    }

    #[test]
    fn reverse_arc_keeps_cycles_equivalent_on_random_moves() {
        // Cross-check: reverse_arc(from, to) and an order rebuilt by hand
        // give identical cyclic lengths for every (from, to) pair.
        let pts: Vec<Point> = (0..9u64)
            .map(|i| {
                Point::new(
                    (i.wrapping_mul(131) % 300) as f64,
                    (i.wrapping_mul(57) % 300) as f64,
                )
            })
            .collect();
        let n = pts.len();
        for from in 0..n {
            for to in 0..n {
                let mut tour = Tour::identity(n);
                let mut pos = tour.position_index();
                tour.reverse_arc(from, to, &mut pos);
                assert!(tour.is_valid(), "from={from} to={to}");
                assert_eq!(pos, tour.position_index(), "from={from} to={to}");

                // Reference: reverse the cyclic run [from, to] explicitly.
                let mut reference: Vec<usize> = (0..n).collect();
                let len = (to + n - from) % n + 1;
                let run: Vec<usize> = (0..len).map(|s| reference[(from + s) % n]).collect();
                for (s, &v) in run.iter().rev().enumerate() {
                    reference[(from + s) % n] = v;
                }
                let expected = Tour::new(reference).length(&pts);
                assert!(
                    (tour.length(&pts) - expected).abs() < 1e-9,
                    "from={from} to={to}: {} vs {expected}",
                    tour.length(&pts)
                );
            }
        }
    }

    #[test]
    fn insert_and_remove_round_trip() {
        let mut tour = Tour::new(vec![0, 1, 2]);
        tour.insert_after(1, 3);
        assert_eq!(tour.order(), &[0, 1, 3, 2]);
        let removed = tour.remove_at(2).unwrap();
        assert_eq!(removed, 3);
        assert_eq!(tour.order(), &[0, 1, 2]);
        assert!(tour.remove_at(17).is_none());

        let mut empty = Tour::new(vec![]);
        empty.insert_after(5, 0);
        assert_eq!(empty.order(), &[0]);
    }

    #[test]
    fn to_polyline_is_closed_with_matching_length() {
        let pts = square_points();
        let tour = Tour::identity(4);
        let poly = tour.to_polyline(&pts);
        assert!(poly.is_closed());
        assert!((poly.length() - tour.length(&pts)).abs() < 1e-12);
        assert_eq!(poly.points().len(), 4);
    }

    #[test]
    fn into_order_returns_the_backing_vector() {
        let tour = Tour::new(vec![3, 1, 0, 2]);
        assert_eq!(tour.into_order(), vec![3, 1, 0, 2]);
    }
}
