//! Minimum spanning tree (Prim) and the classic MST pre-order tour.
//!
//! The MST tour is the textbook 2-approximation for metric TSP. It is not
//! used by the TCTP planners themselves; it serves as an independent upper
//! bound in tests ("no construction heuristic should be wildly worse than
//! 2 × MST weight") and as one arm of the tour-construction ablation bench.

use crate::distance_matrix::DistanceMatrix;
use crate::tour::Tour;
use mule_geom::Point;

/// An undirected spanning tree given as `(parent, child)` index pairs plus
/// its total edge weight.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanningTree {
    /// Edges of the tree as `(parent, child)` pairs, in the order Prim's
    /// algorithm added them (root first).
    pub edges: Vec<(usize, usize)>,
    /// Sum of edge lengths in metres.
    pub weight: f64,
}

/// Computes the minimum spanning tree of the complete Euclidean graph over
/// `points` with Prim's algorithm, rooted at index 0. Returns an empty tree
/// for fewer than two points.
pub fn minimum_spanning_tree(points: &[Point], dm: &DistanceMatrix) -> SpanningTree {
    let n = points.len();
    if n < 2 {
        return SpanningTree {
            edges: Vec::new(),
            weight: 0.0,
        };
    }
    let mut in_tree = vec![false; n];
    let mut best_dist = vec![f64::INFINITY; n];
    let mut best_parent = vec![usize::MAX; n];
    in_tree[0] = true;
    for j in 1..n {
        best_dist[j] = dm.get(0, j);
        best_parent[j] = 0;
    }
    let mut edges = Vec::with_capacity(n - 1);
    let mut weight = 0.0;
    for _ in 1..n {
        // Pick the cheapest fringe vertex.
        let mut next = usize::MAX;
        let mut next_d = f64::INFINITY;
        for j in 0..n {
            if !in_tree[j] && best_dist[j] < next_d {
                next = j;
                next_d = best_dist[j];
            }
        }
        debug_assert_ne!(next, usize::MAX);
        in_tree[next] = true;
        edges.push((best_parent[next], next));
        weight += next_d;
        for j in 0..n {
            if !in_tree[j] && dm.get(next, j) < best_dist[j] {
                best_dist[j] = dm.get(next, j);
                best_parent[j] = next;
            }
        }
    }
    SpanningTree { edges, weight }
}

/// Builds a Hamiltonian tour by a depth-first pre-order walk of the MST
/// (children visited nearest-first), the classic 2-approximation.
pub fn mst_preorder_tour(points: &[Point], dm: &DistanceMatrix) -> Tour {
    let n = points.len();
    if n <= 2 {
        return Tour::identity(n);
    }
    let tree = minimum_spanning_tree(points, dm);
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(p, c) in &tree.edges {
        children[p].push(c);
    }
    // Visit nearer children first for a slightly tighter walk.
    for (i, ch) in children.iter_mut().enumerate() {
        ch.sort_by(|&a, &b| dm.get(i, a).total_cmp(&dm.get(i, b)));
    }
    let mut order = Vec::with_capacity(n);
    let mut stack = vec![0usize];
    while let Some(v) = stack.pop() {
        order.push(v);
        // Push children in reverse so the nearest child is visited first.
        for &c in children[v].iter().rev() {
            stack.push(c);
        }
    }
    Tour::new(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_points() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ]
    }

    #[test]
    fn mst_of_square_has_three_unit_edges() {
        let pts = square_points();
        let dm = DistanceMatrix::from_points(&pts);
        let tree = minimum_spanning_tree(&pts, &dm);
        assert_eq!(tree.edges.len(), 3);
        assert!((tree.weight - 30.0).abs() < 1e-9);
    }

    #[test]
    fn mst_spans_every_vertex_exactly_once_as_child() {
        let pts: Vec<Point> = (0..15u64)
            .map(|i| {
                Point::new(
                    (i.wrapping_mul(131) % 700) as f64,
                    (i.wrapping_mul(313) % 700) as f64,
                )
            })
            .collect();
        let dm = DistanceMatrix::from_points(&pts);
        let tree = minimum_spanning_tree(&pts, &dm);
        assert_eq!(tree.edges.len(), pts.len() - 1);
        let mut child_seen = vec![false; pts.len()];
        for &(p, c) in &tree.edges {
            assert!(p < pts.len() && c < pts.len());
            assert!(!child_seen[c], "vertex {c} added twice");
            child_seen[c] = true;
        }
        assert!(!child_seen[0], "the root is never a child");
    }

    #[test]
    fn mst_weight_lower_bounds_every_tour() {
        let pts: Vec<Point> = (0..20u64)
            .map(|i| {
                Point::new(
                    (i.wrapping_mul(271) % 800) as f64,
                    (i.wrapping_mul(523) % 800) as f64,
                )
            })
            .collect();
        let dm = DistanceMatrix::from_points(&pts);
        let tree = minimum_spanning_tree(&pts, &dm);
        for c in crate::TourConstruction::ALL {
            let len = c.build_with_matrix(&pts, &dm).length(&pts);
            assert!(
                len >= tree.weight - 1e-9,
                "{} shorter than the MST?!",
                c.label()
            );
        }
    }

    #[test]
    fn preorder_tour_is_valid_and_within_twice_mst() {
        let pts: Vec<Point> = (0..25u64)
            .map(|i| {
                Point::new(
                    (i.wrapping_mul(379) % 800) as f64,
                    (i.wrapping_mul(947) % 800) as f64,
                )
            })
            .collect();
        let dm = DistanceMatrix::from_points(&pts);
        let tour = mst_preorder_tour(&pts, &dm);
        assert!(tour.is_valid());
        assert_eq!(tour.len(), pts.len());
        let tree = minimum_spanning_tree(&pts, &dm);
        assert!(tour.length(&pts) <= 2.0 * tree.weight + 1e-9);
    }

    #[test]
    fn degenerate_inputs() {
        let dm0 = DistanceMatrix::from_points(&[]);
        assert!(minimum_spanning_tree(&[], &dm0).edges.is_empty());
        assert!(mst_preorder_tour(&[], &dm0).is_empty());
        let one = [Point::ORIGIN];
        let dm1 = DistanceMatrix::from_points(&one);
        assert_eq!(minimum_spanning_tree(&one, &dm1).weight, 0.0);
        assert_eq!(mst_preorder_tour(&one, &dm1).len(), 1);
    }
}
