//! Spatial partitioning of target sets.
//!
//! The Sweep baseline (paper reference \[4\]) "divides the DMs into several
//! groups and then each DM individually patrols the targets of one group".
//! This module provides the grouping primitives:
//!
//! * [`angular_partition`] — contiguous angular sectors around a pivot
//!   (balanced by count), the default Sweep grouping;
//! * [`kmeans_partition`] — Lloyd's k-means over target positions with
//!   deterministic farthest-point seeding, an alternative grouping that
//!   produces spatially compact groups for disconnected-cluster fields.
//!
//! Both return one vector of indices (into the input slice) per group; every
//! input index appears in exactly one group and empty groups are allowed
//! only when there are fewer points than groups.

use mule_geom::Point;

/// Groups `points` into `groups` contiguous angular sectors around `pivot`,
/// balanced by count. Returns `groups` vectors of indices (some possibly
/// empty when there are fewer points than groups).
pub fn angular_partition(points: &[Point], pivot: &Point, groups: usize) -> Vec<Vec<usize>> {
    let groups = groups.max(1);
    let mut indexed: Vec<(usize, f64)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (i, (*p - *pivot).angle()))
        .collect();
    indexed.sort_by(|a, b| a.1.total_cmp(&b.1));

    let mut out = vec![Vec::new(); groups];
    if indexed.is_empty() {
        return out;
    }
    let per_group = indexed.len().div_ceil(groups);
    for (rank, (idx, _)) in indexed.into_iter().enumerate() {
        out[(rank / per_group).min(groups - 1)].push(idx);
    }
    out
}

/// Groups `points` into `groups` clusters with Lloyd's k-means.
///
/// Seeding is deterministic farthest-point traversal (the first centre is
/// the point closest to the centroid, each further centre the point farthest
/// from all chosen centres), so the partition is reproducible without an
/// RNG. Runs at most `max_iters` Lloyd iterations (or until assignments
/// stop changing). Empty clusters are repaired by stealing the point
/// farthest from its centre in the largest cluster.
pub fn kmeans_partition(points: &[Point], groups: usize, max_iters: usize) -> Vec<Vec<usize>> {
    let groups = groups.max(1);
    let n = points.len();
    if n == 0 {
        return vec![Vec::new(); groups];
    }
    if groups >= n {
        let mut out = vec![Vec::new(); groups];
        for (i, slot) in out.iter_mut().enumerate().take(n) {
            slot.push(i);
        }
        return out;
    }

    // Farthest-point seeding.
    let centroid = Point::centroid(points).expect("non-empty");
    let first = (0..n)
        .min_by(|&a, &b| {
            points[a]
                .distance_squared(&centroid)
                .total_cmp(&points[b].distance_squared(&centroid))
        })
        .expect("non-empty");
    let mut centers: Vec<Point> = vec![points[first]];
    while centers.len() < groups {
        let next = (0..n)
            .max_by(|&a, &b| {
                let da = centers
                    .iter()
                    .map(|c| points[a].distance_squared(c))
                    .fold(f64::INFINITY, f64::min);
                let db = centers
                    .iter()
                    .map(|c| points[b].distance_squared(c))
                    .fold(f64::INFINITY, f64::min);
                da.total_cmp(&db)
            })
            .expect("non-empty");
        centers.push(points[next]);
    }

    let mut assignment = vec![0usize; n];
    for _ in 0..max_iters.max(1) {
        // Assign.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = centers
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| p.distance_squared(a).total_cmp(&p.distance_squared(b)))
                .map(|(k, _)| k)
                .unwrap_or(0);
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Update.
        for (k, center) in centers.iter_mut().enumerate() {
            let members: Vec<Point> = (0..n)
                .filter(|&i| assignment[i] == k)
                .map(|i| points[i])
                .collect();
            if let Some(c) = Point::centroid(&members) {
                *center = c;
            }
        }
        if !changed {
            break;
        }
    }

    let mut out = vec![Vec::new(); groups];
    for (i, &k) in assignment.iter().enumerate() {
        out[k].push(i);
    }

    // Repair empty clusters so every mule gets work when n >= groups.
    while let Some(empty) = out.iter().position(Vec::is_empty) {
        let Some(donor) = (0..groups)
            .filter(|&k| out[k].len() > 1)
            .max_by_key(|&k| out[k].len())
        else {
            break;
        };
        // Move the donor's point farthest from the donor centre.
        let donor_center =
            Point::centroid(&out[donor].iter().map(|&i| points[i]).collect::<Vec<_>>())
                .expect("donor non-empty");
        let (slot, _) = out[donor]
            .iter()
            .enumerate()
            .max_by(|(_, &a), (_, &b)| {
                points[a]
                    .distance_squared(&donor_center)
                    .total_cmp(&points[b].distance_squared(&donor_center))
            })
            .expect("donor non-empty");
        let moved = out[donor].remove(slot);
        out[empty].push(moved);
    }
    out
}

/// Sum over groups of the total pairwise within-group distance — a compactness
/// score for comparing partitions (smaller is more compact).
pub fn within_group_spread(points: &[Point], groups: &[Vec<usize>]) -> f64 {
    let mut total = 0.0;
    for group in groups {
        for (a_pos, &a) in group.iter().enumerate() {
            for &b in &group[a_pos + 1..] {
                total += points[a].distance(&points[b]);
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_partition(n: usize, groups: &[Vec<usize>]) -> bool {
        let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        all == (0..n).collect::<Vec<_>>()
    }

    fn three_clusters() -> Vec<Point> {
        let mut pts = Vec::new();
        for (cx, cy) in [(100.0, 100.0), (700.0, 120.0), (400.0, 700.0)] {
            for k in 0..6 {
                pts.push(Point::new(
                    cx + (k % 3) as f64 * 8.0,
                    cy + (k / 3) as f64 * 8.0,
                ));
            }
        }
        pts
    }

    #[test]
    fn angular_partition_is_a_balanced_partition() {
        let pts = three_clusters();
        let groups = angular_partition(&pts, &Point::new(400.0, 300.0), 3);
        assert_eq!(groups.len(), 3);
        assert!(is_partition(pts.len(), &groups));
        assert!(groups.iter().all(|g| g.len() == 6));
    }

    #[test]
    fn angular_partition_handles_degenerate_inputs() {
        assert_eq!(angular_partition(&[], &Point::ORIGIN, 3).len(), 3);
        let single = angular_partition(&[Point::new(1.0, 1.0)], &Point::ORIGIN, 4);
        assert_eq!(single.iter().map(Vec::len).sum::<usize>(), 1);
        // Zero groups clamps to one.
        let one = angular_partition(&three_clusters(), &Point::ORIGIN, 0);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].len(), 18);
    }

    #[test]
    fn kmeans_recovers_well_separated_clusters() {
        let pts = three_clusters();
        let groups = kmeans_partition(&pts, 3, 50);
        assert!(is_partition(pts.len(), &groups));
        // Each recovered group must be one of the ground-truth blocks of six
        // consecutive indices.
        for g in &groups {
            assert_eq!(g.len(), 6);
            let base = g[0] / 6;
            assert!(g.iter().all(|&i| i / 6 == base), "mixed cluster: {g:?}");
        }
    }

    #[test]
    fn kmeans_handles_fewer_points_than_groups() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
        let groups = kmeans_partition(&pts, 5, 10);
        assert_eq!(groups.len(), 5);
        assert!(is_partition(2, &groups));
        assert!(kmeans_partition(&[], 3, 10).iter().all(Vec::is_empty));
    }

    #[test]
    fn kmeans_never_leaves_a_group_empty_when_enough_points_exist() {
        // Points arranged so naive seeding could starve a cluster.
        let pts: Vec<Point> = (0..12).map(|i| Point::new(i as f64, 0.0)).collect();
        let groups = kmeans_partition(&pts, 4, 30);
        assert!(is_partition(12, &groups));
        assert!(groups.iter().all(|g| !g.is_empty()));
    }

    #[test]
    fn kmeans_is_deterministic() {
        let pts = three_clusters();
        assert_eq!(kmeans_partition(&pts, 3, 50), kmeans_partition(&pts, 3, 50));
    }

    #[test]
    fn kmeans_is_at_least_as_compact_as_angular_on_clustered_data() {
        let pts = three_clusters();
        let pivot = Point::centroid(&pts).unwrap();
        let angular = angular_partition(&pts, &pivot, 3);
        let kmeans = kmeans_partition(&pts, 3, 50);
        assert!(within_group_spread(&pts, &kmeans) <= within_group_spread(&pts, &angular) + 1e-9);
    }

    #[test]
    fn within_group_spread_of_singletons_is_zero() {
        let pts = three_clusters();
        let singletons: Vec<Vec<usize>> = (0..pts.len()).map(|i| vec![i]).collect();
        assert_eq!(within_group_spread(&pts, &singletons), 0.0);
    }
}
