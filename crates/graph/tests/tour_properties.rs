//! Property-based tests for tour construction and improvement.

use mule_geom::Point;
use mule_graph::{
    construct_circuit, minimum_spanning_tree, or_opt, two_opt, DistanceMatrix, Tour,
    TourConstruction,
};
use proptest::prelude::*;

fn field_points(min: usize, max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (0.0..800.0f64, 0.0..800.0f64).prop_map(|(x, y)| Point::new(x, y)),
        min..=max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_construction_is_a_permutation(points in field_points(0, 40)) {
        for c in TourConstruction::ALL {
            let tour = c.build(&points);
            prop_assert!(tour.is_valid(), "{} invalid", c.label());
            prop_assert_eq!(tour.len(), points.len());
        }
    }

    #[test]
    fn two_opt_never_lengthens(points in field_points(4, 35)) {
        let dm = DistanceMatrix::from_points(&points);
        let mut tour = Tour::identity(points.len());
        let before = tour.length(&points);
        two_opt(&mut tour, &dm, 40);
        prop_assert!(tour.is_valid());
        prop_assert!(tour.length(&points) <= before + 1e-6);
    }

    #[test]
    fn or_opt_never_lengthens(points in field_points(5, 35)) {
        let dm = DistanceMatrix::from_points(&points);
        let mut tour = Tour::identity(points.len());
        let before = tour.length(&points);
        or_opt(&mut tour, &dm, 40);
        prop_assert!(tour.is_valid());
        prop_assert!(tour.length(&points) <= before + 1e-6);
    }

    #[test]
    fn chb_circuit_respects_mst_bounds(points in field_points(3, 35)) {
        let dm = DistanceMatrix::from_points(&points);
        let mst = minimum_spanning_tree(&points, &dm);
        let tour = construct_circuit(&points);
        prop_assert!(tour.is_valid());
        // MST weight is a lower bound for any Hamiltonian cycle; twice the
        // MST weight is an upper bound for the shortcut pre-order walk, and
        // CHB + 2-opt + Or-opt should never be worse than that.
        prop_assert!(tour.length(&points) >= mst.weight - 1e-6);
        prop_assert!(tour.length(&points) <= 2.0 * mst.weight + 1e-6);
    }

    #[test]
    fn chb_beats_or_matches_the_mst_preorder_walk(points in field_points(3, 30)) {
        let chb = construct_circuit(&points).length(&points);
        let walk = TourConstruction::MstPreorder.build(&points).length(&points);
        prop_assert!(chb <= walk + 1e-6);
    }

    #[test]
    fn tour_length_is_rotation_invariant(points in field_points(2, 30), start in 0usize..30) {
        let tour = construct_circuit(&points);
        let mut rotated = tour.clone();
        let start_target = tour.order()[start % tour.len()];
        rotated.rotate_to_start(start_target);
        prop_assert!((tour.length(&points) - rotated.length(&points)).abs() <= 1e-6);
        prop_assert_eq!(rotated.order()[0], start_target);
    }

    #[test]
    fn distance_matrix_cycle_length_matches_tour_length(points in field_points(2, 30)) {
        let dm = DistanceMatrix::from_points(&points);
        let tour = construct_circuit(&points);
        let a = tour.length(&points);
        let b = tour.length_with_matrix(&dm);
        prop_assert!((a - b).abs() <= 1e-6);
    }
}
