//! Property-based tests for the candidate-list search pipeline: permutation
//! validity, monotone improvement, quality vs. the exact pipeline, and the
//! `Auto` byte-identity contract below the threshold.

use mule_geom::Point;
use mule_graph::chb::AUTO_EXACT_THRESHOLD;
use mule_graph::{
    construct_circuit_with, convex_hull_insertion_incremental, or_opt_candidates,
    two_opt_candidates, CandidateLists, ChbConfig, SearchMode,
};
use proptest::prelude::*;

fn field_points(min: usize, max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (0.0..2000.0f64, 0.0..2000.0f64).prop_map(|(x, y)| Point::new(x, y)),
        min..=max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn candidate_pipeline_is_a_valid_permutation(points in field_points(0, 300)) {
        let config = ChbConfig::default().with_search(SearchMode::Candidates(10));
        let tour = construct_circuit_with(&points, &config);
        prop_assert!(tour.is_valid());
        prop_assert_eq!(tour.len(), points.len());
    }

    #[test]
    fn candidate_local_search_never_lengthens(points in field_points(4, 300)) {
        let candidates = CandidateLists::build(&points, 10);
        let mut tour = convex_hull_insertion_incremental(&points);
        let mut length = tour.length(&points);

        two_opt_candidates(&mut tour, &points, &candidates, 50);
        prop_assert!(tour.is_valid());
        prop_assert!(tour.length(&points) <= length + 1e-6);
        length = tour.length(&points);

        or_opt_candidates(&mut tour, &points, &candidates, 50);
        prop_assert!(tour.is_valid());
        prop_assert!(tour.length(&points) <= length + 1e-6);
    }

    #[test]
    fn candidate_pipeline_tracks_exact_quality(points in field_points(6, 300)) {
        let exact = construct_circuit_with(
            &points,
            &ChbConfig::default().with_search(SearchMode::Exact),
        );
        let fast = construct_circuit_with(
            &points,
            &ChbConfig::default().with_search(SearchMode::Candidates(10)),
        );
        prop_assert!(fast.is_valid());
        let exact_len = exact.length(&points);
        let fast_len = fast.length(&points);
        prop_assume!(exact_len > 1e-9); // all-coincident points: both zero
        prop_assert!(
            fast_len <= exact_len * 1.02,
            "candidate pipeline {:.1} vs exact {:.1} (ratio {:.4}) on n = {}",
            fast_len, exact_len, fast_len / exact_len, points.len()
        );
    }

    #[test]
    fn auto_is_byte_identical_to_exact_below_the_threshold(
        points in field_points(0, AUTO_EXACT_THRESHOLD)
    ) {
        let auto = construct_circuit_with(&points, &ChbConfig::default());
        let exact = construct_circuit_with(
            &points,
            &ChbConfig::default().with_search(SearchMode::Exact),
        );
        prop_assert_eq!(auto.order(), exact.order());
    }
}
