//! The energy consumption model.
//!
//! Constants follow the paper's simulation model (§5.1): moving one metre
//! costs 8.267 J and collecting one target's data costs 0.075 J (the paper
//! states 0.075 J/s for the collection radio and charges it per collection
//! event; we keep the same per-collection accounting).

use serde::{Deserialize, Serialize};

/// Per-activity energy costs of a data mule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy to move one metre, in joules (`c_m` in Eq. 4).
    pub move_cost_j_per_m: f64,
    /// Energy to collect one target's data, in joules (`c_s` in Eq. 4).
    pub collect_cost_j: f64,
    /// Moving speed of the mule in metres per second (2 m/s in the paper).
    pub speed_m_per_s: f64,
    /// Initial battery energy `M_Energy` in joules.
    pub initial_energy_j: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::paper_default()
    }
}

impl EnergyModel {
    /// The paper's simulation constants. The initial energy is sized so a
    /// mule can cover several complete 800 m × 800 m patrolling rounds
    /// before needing the recharge station (the paper does not state
    /// `M_Energy` explicitly; 200 kJ ≈ 6–8 rounds at the stated costs, which
    /// reproduces the "recharge every r rounds" behaviour).
    pub fn paper_default() -> Self {
        EnergyModel {
            move_cost_j_per_m: 8.267,
            collect_cost_j: 0.075,
            speed_m_per_s: 2.0,
            initial_energy_j: 200_000.0,
        }
    }

    /// Energy to travel `distance_m` metres.
    #[inline]
    pub fn movement_energy(&self, distance_m: f64) -> f64 {
        self.move_cost_j_per_m * distance_m.max(0.0)
    }

    /// Energy to perform `collections` data collections.
    #[inline]
    pub fn collection_energy(&self, collections: usize) -> f64 {
        self.collect_cost_j * collections as f64
    }

    /// Energy to complete one traversal of a closed path of length
    /// `path_length_m` that performs `collections` collections — the
    /// denominator of Eq. 4.
    #[inline]
    pub fn round_energy(&self, path_length_m: f64, collections: usize) -> f64 {
        self.movement_energy(path_length_m) + self.collection_energy(collections)
    }

    /// Time to travel `distance_m` metres at the mule's speed.
    #[inline]
    pub fn travel_time(&self, distance_m: f64) -> f64 {
        if self.speed_m_per_s <= 0.0 {
            f64::INFINITY
        } else {
            distance_m.max(0.0) / self.speed_m_per_s
        }
    }

    /// Maximum distance a mule can travel on `energy_j` joules if it does
    /// nothing but move.
    #[inline]
    pub fn range_on(&self, energy_j: f64) -> f64 {
        if self.move_cost_j_per_m <= 0.0 {
            f64::INFINITY
        } else {
            energy_j.max(0.0) / self.move_cost_j_per_m
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_5_1() {
        let m = EnergyModel::paper_default();
        assert_eq!(m.move_cost_j_per_m, 8.267);
        assert_eq!(m.collect_cost_j, 0.075);
        assert_eq!(m.speed_m_per_s, 2.0);
        assert_eq!(EnergyModel::default(), m);
    }

    #[test]
    fn movement_energy_is_linear_and_clamps_negative_distances() {
        let m = EnergyModel::paper_default();
        assert!((m.movement_energy(100.0) - 826.7).abs() < 1e-9);
        assert_eq!(m.movement_energy(-50.0), 0.0);
    }

    #[test]
    fn collection_energy_counts_events() {
        let m = EnergyModel::paper_default();
        assert!((m.collection_energy(10) - 0.75).abs() < 1e-12);
        assert_eq!(m.collection_energy(0), 0.0);
    }

    #[test]
    fn round_energy_is_the_sum_of_both_terms() {
        let m = EnergyModel::paper_default();
        let e = m.round_energy(1000.0, 10);
        assert!((e - (8267.0 + 0.75)).abs() < 1e-9);
    }

    #[test]
    fn travel_time_uses_the_mule_speed() {
        let m = EnergyModel::paper_default();
        assert_eq!(m.travel_time(100.0), 50.0);
        assert_eq!(m.travel_time(-3.0), 0.0);
        let stopped = EnergyModel {
            speed_m_per_s: 0.0,
            ..m
        };
        assert!(stopped.travel_time(1.0).is_infinite());
    }

    #[test]
    fn range_on_inverts_movement_energy() {
        let m = EnergyModel::paper_default();
        let d = 1234.0;
        let e = m.movement_energy(d);
        assert!((m.range_on(e) - d).abs() < 1e-9);
        assert_eq!(m.range_on(-10.0), 0.0);
    }
}
