//! Eq. 4 of the paper: the patrol-round budget.
//!
//! `r = ⌊ M_Energy / (|P̂|·c_m + h·c_s) ⌋`
//!
//! where `|P̂|` is the length of the recharge path, `c_m` / `c_s` the
//! movement / collection costs and `h` the number of targets. A mule can
//! afford `r` complete rounds per battery charge; RW-TCTP therefore patrols
//! the ordinary weighted patrolling path for `r − 1` rounds and takes the
//! recharge path on round `r`.

use crate::model::EnergyModel;
use serde::{Deserialize, Serialize};

/// The recharge schedule derived from Eq. 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PatrolRounds {
    /// Total rounds affordable per charge (`r` in Eq. 4, at least 1).
    pub rounds_per_charge: u32,
    /// Energy consumed by one round of the path used for the estimate.
    pub energy_per_round_j: f64,
    /// Energy left over after `rounds_per_charge` rounds (safety margin).
    pub residual_energy_j: f64,
}

impl PatrolRounds {
    /// Evaluates Eq. 4 for a path of length `path_length_m` containing
    /// `collections_per_round` data collections, with the battery capacity
    /// and costs taken from `model`.
    ///
    /// The result is clamped to at least one round: a path so long that even
    /// a single traversal exceeds the battery is still "planned" as one
    /// round so the caller can detect the infeasibility via
    /// [`PatrolRounds::is_feasible`].
    pub fn evaluate(model: &EnergyModel, path_length_m: f64, collections_per_round: usize) -> Self {
        let per_round = model.round_energy(path_length_m, collections_per_round);
        let raw = if per_round <= 0.0 {
            // A zero-cost round can be repeated arbitrarily often; pick a
            // large but finite schedule so downstream arithmetic stays sane.
            u32::MAX
        } else {
            (model.initial_energy_j / per_round).floor() as u32
        };
        let rounds = raw.max(1);
        let residual = model.initial_energy_j - per_round * f64::from(rounds.min(raw.max(1)));
        PatrolRounds {
            rounds_per_charge: rounds,
            energy_per_round_j: per_round,
            residual_energy_j: residual.max(0.0),
        }
    }

    /// Returns `true` when at least one full round fits in the battery.
    pub fn is_feasible(&self, model: &EnergyModel) -> bool {
        self.energy_per_round_j <= model.initial_energy_j
    }

    /// Number of ordinary (non-recharge) rounds between recharge rounds:
    /// `r − 1`.
    pub fn patrol_rounds_between_recharges(&self) -> u32 {
        self.rounds_per_charge.saturating_sub(1)
    }

    /// Returns `true` when round number `round_index` (0-based, counting
    /// every completed traversal) should follow the recharge path: every
    /// `r`-th round, i.e. rounds `r−1, 2r−1, 3r−1, …`.
    pub fn is_recharge_round(&self, round_index: u64) -> bool {
        let r = u64::from(self.rounds_per_charge.max(1));
        round_index % r == r - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_with_energy(e: f64) -> EnergyModel {
        EnergyModel {
            initial_energy_j: e,
            ..EnergyModel::paper_default()
        }
    }

    #[test]
    fn evaluate_matches_hand_computed_eq4() {
        // 1000 m path, 10 targets: per round = 8267 + 0.75 = 8267.75 J.
        let model = model_with_energy(50_000.0);
        let r = PatrolRounds::evaluate(&model, 1000.0, 10);
        assert!((r.energy_per_round_j - 8267.75).abs() < 1e-9);
        assert_eq!(r.rounds_per_charge, 6); // floor(50000 / 8267.75) = 6
        assert!(r.is_feasible(&model));
        assert_eq!(r.patrol_rounds_between_recharges(), 5);
        assert!((r.residual_energy_j - (50_000.0 - 6.0 * 8267.75)).abs() < 1e-6);
    }

    #[test]
    fn infeasible_paths_are_clamped_to_one_round_and_flagged() {
        let model = model_with_energy(100.0);
        let r = PatrolRounds::evaluate(&model, 1000.0, 5);
        assert_eq!(r.rounds_per_charge, 1);
        assert!(!r.is_feasible(&model));
        assert_eq!(r.patrol_rounds_between_recharges(), 0);
        assert_eq!(r.residual_energy_j, 0.0);
    }

    #[test]
    fn zero_cost_rounds_do_not_divide_by_zero() {
        let model = EnergyModel {
            move_cost_j_per_m: 0.0,
            collect_cost_j: 0.0,
            ..EnergyModel::paper_default()
        };
        let r = PatrolRounds::evaluate(&model, 500.0, 10);
        assert_eq!(r.rounds_per_charge, u32::MAX);
        assert!(r.is_feasible(&model));
    }

    #[test]
    fn recharge_round_fires_every_r_rounds() {
        let model = model_with_energy(50_000.0);
        let r = PatrolRounds::evaluate(&model, 1000.0, 10); // r = 6
        let recharge_rounds: Vec<u64> = (0..18).filter(|&i| r.is_recharge_round(i)).collect();
        assert_eq!(recharge_rounds, vec![5, 11, 17]);
    }

    #[test]
    fn single_round_schedules_recharge_every_round() {
        let model = model_with_energy(100.0);
        let r = PatrolRounds::evaluate(&model, 1000.0, 5);
        assert!(r.is_recharge_round(0));
        assert!(r.is_recharge_round(1));
    }

    #[test]
    fn residual_energy_never_negative_and_less_than_one_round() {
        let model = model_with_energy(30_000.0);
        let r = PatrolRounds::evaluate(&model, 700.0, 20);
        assert!(r.residual_energy_j >= 0.0);
        assert!(r.residual_energy_j < r.energy_per_round_j);
    }
}
