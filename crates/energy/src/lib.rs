//! # mule-energy
//!
//! The data-mule energy substrate used by RW-TCTP and by the simulator's
//! energy accounting.
//!
//! * [`EnergyModel`] — the paper's consumption constants: 8.267 J per metre
//!   of movement and 0.075 J per target data collection (§5.1).
//! * [`Battery`] — a finite energy store with draw / recharge operations and
//!   depletion detection.
//! * [`PatrolRounds`] — Eq. 4 of the paper: how many complete traversals of
//!   the recharge path a mule can afford per battery charge, which drives
//!   the RW-TCTP schedule (patrol the WPP for `r − 1` rounds, then the WRP).
//! * [`ConsumptionLedger`] — per-cause energy bookkeeping (movement,
//!   collection, idle) used for the energy-efficiency reporting.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod battery;
pub mod consumption;
pub mod model;
pub mod rounds;

pub use battery::{Battery, BatteryState};
pub use consumption::{ConsumptionLedger, EnergyCause};
pub use model::EnergyModel;
pub use rounds::PatrolRounds;
