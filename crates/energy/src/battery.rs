//! The mule battery: a finite energy store with recharge support.

use serde::{Deserialize, Serialize};

/// Coarse battery condition, used by the RW-TCTP patrolling strategy to
/// decide whether the next round follows the ordinary patrolling path or the
/// recharge path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BatteryState {
    /// Remaining energy is above the planning threshold.
    Healthy,
    /// Remaining energy is at or below the threshold — head for the
    /// recharge station on the next opportunity.
    NeedsRecharge,
    /// The battery is empty; the mule is stranded.
    Depleted,
}

/// A battery with capacity and current charge in joules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    capacity_j: f64,
    remaining_j: f64,
    /// Total energy ever drawn, for efficiency reporting.
    total_drawn_j: f64,
    /// Number of times the battery hit zero.
    depletion_events: usize,
    /// Number of recharges performed.
    recharge_count: usize,
}

impl Battery {
    /// Creates a full battery of the given capacity (clamped to ≥ 0).
    pub fn full(capacity_j: f64) -> Self {
        let cap = capacity_j.max(0.0);
        Battery {
            capacity_j: cap,
            remaining_j: cap,
            total_drawn_j: 0.0,
            depletion_events: 0,
            recharge_count: 0,
        }
    }

    /// Battery capacity in joules.
    #[inline]
    pub fn capacity(&self) -> f64 {
        self.capacity_j
    }

    /// Remaining energy in joules.
    #[inline]
    pub fn remaining(&self) -> f64 {
        self.remaining_j
    }

    /// Remaining energy as a fraction of capacity in `[0, 1]`.
    pub fn state_of_charge(&self) -> f64 {
        if self.capacity_j <= 0.0 {
            0.0
        } else {
            (self.remaining_j / self.capacity_j).clamp(0.0, 1.0)
        }
    }

    /// Total energy drawn over the battery's lifetime (across recharges).
    #[inline]
    pub fn total_drawn(&self) -> f64 {
        self.total_drawn_j
    }

    /// Number of times the battery was fully depleted.
    #[inline]
    pub fn depletion_events(&self) -> usize {
        self.depletion_events
    }

    /// Number of recharges performed.
    #[inline]
    pub fn recharge_count(&self) -> usize {
        self.recharge_count
    }

    /// Returns `true` when the battery is empty.
    #[inline]
    pub fn is_depleted(&self) -> bool {
        self.remaining_j <= 0.0
    }

    /// Draws `amount` joules. The draw is truncated at zero: the battery
    /// never goes negative, and the truncated shortfall is returned so the
    /// simulator can detect a stranded mule. Returns `0.0` when the full
    /// amount was available.
    pub fn draw(&mut self, amount: f64) -> f64 {
        let amount = amount.max(0.0);
        let available = self.remaining_j;
        if amount <= available {
            self.remaining_j -= amount;
            self.total_drawn_j += amount;
            if self.remaining_j <= 0.0 {
                self.depletion_events += 1;
            }
            0.0
        } else {
            self.remaining_j = 0.0;
            self.total_drawn_j += available;
            self.depletion_events += 1;
            amount - available
        }
    }

    /// Returns `true` when `amount` joules can be drawn without depleting
    /// the battery.
    pub fn can_afford(&self, amount: f64) -> bool {
        amount.max(0.0) <= self.remaining_j
    }

    /// Recharges the battery back to full capacity.
    pub fn recharge_full(&mut self) {
        if self.remaining_j < self.capacity_j {
            self.recharge_count += 1;
        }
        self.remaining_j = self.capacity_j;
    }

    /// Classifies the battery against a planning threshold (fraction of
    /// capacity, e.g. `0.25`).
    pub fn state(&self, threshold_fraction: f64) -> BatteryState {
        if self.is_depleted() {
            BatteryState::Depleted
        } else if self.state_of_charge() <= threshold_fraction.clamp(0.0, 1.0) {
            BatteryState::NeedsRecharge
        } else {
            BatteryState::Healthy
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_battery_starts_at_capacity() {
        let b = Battery::full(1000.0);
        assert_eq!(b.capacity(), 1000.0);
        assert_eq!(b.remaining(), 1000.0);
        assert_eq!(b.state_of_charge(), 1.0);
        assert!(!b.is_depleted());
        assert_eq!(b.depletion_events(), 0);
    }

    #[test]
    fn negative_capacity_is_clamped() {
        let b = Battery::full(-5.0);
        assert_eq!(b.capacity(), 0.0);
        assert!(b.is_depleted());
        assert_eq!(b.state_of_charge(), 0.0);
    }

    #[test]
    fn draw_decrements_and_tracks_totals() {
        let mut b = Battery::full(100.0);
        assert_eq!(b.draw(30.0), 0.0);
        assert_eq!(b.remaining(), 70.0);
        assert_eq!(b.total_drawn(), 30.0);
        assert!(b.can_afford(70.0));
        assert!(!b.can_afford(70.1));
        // Negative draws are ignored.
        assert_eq!(b.draw(-10.0), 0.0);
        assert_eq!(b.remaining(), 70.0);
    }

    #[test]
    fn overdraw_truncates_and_reports_shortfall() {
        let mut b = Battery::full(50.0);
        let shortfall = b.draw(80.0);
        assert!((shortfall - 30.0).abs() < 1e-12);
        assert_eq!(b.remaining(), 0.0);
        assert!(b.is_depleted());
        assert_eq!(b.depletion_events(), 1);
        assert_eq!(b.total_drawn(), 50.0);
    }

    #[test]
    fn exact_depletion_counts_as_a_depletion_event() {
        let mut b = Battery::full(50.0);
        assert_eq!(b.draw(50.0), 0.0);
        assert!(b.is_depleted());
        assert_eq!(b.depletion_events(), 1);
    }

    #[test]
    fn recharge_restores_capacity_and_counts() {
        let mut b = Battery::full(100.0);
        b.draw(60.0);
        b.recharge_full();
        assert_eq!(b.remaining(), 100.0);
        assert_eq!(b.recharge_count(), 1);
        // Recharging a full battery is not counted.
        b.recharge_full();
        assert_eq!(b.recharge_count(), 1);
        // Total drawn survives recharging.
        assert_eq!(b.total_drawn(), 60.0);
    }

    #[test]
    fn state_classification_uses_the_threshold() {
        let mut b = Battery::full(100.0);
        assert_eq!(b.state(0.25), BatteryState::Healthy);
        b.draw(76.0);
        assert_eq!(b.state(0.25), BatteryState::NeedsRecharge);
        b.draw(24.0);
        assert_eq!(b.state(0.25), BatteryState::Depleted);
        // Threshold is clamped into [0, 1].
        let c = Battery::full(100.0);
        assert_eq!(c.state(5.0), BatteryState::NeedsRecharge);
        assert_eq!(c.state(-1.0), BatteryState::Healthy);
    }
}
