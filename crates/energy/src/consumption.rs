//! Per-cause energy bookkeeping.
//!
//! The paper's §V discusses "energy efficiency of DM" as an evaluation
//! dimension; to report it we track *where* each joule went (movement,
//! collection, recharging detours), per mule.

use serde::{Deserialize, Serialize};

/// Why energy was consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EnergyCause {
    /// Moving along the ordinary patrolling path.
    PatrolMovement,
    /// Moving along the recharge path (the detour through the station).
    RechargeMovement,
    /// Collecting data at a target.
    Collection,
}

impl EnergyCause {
    /// All causes, in reporting order.
    pub const ALL: [EnergyCause; 3] = [
        EnergyCause::PatrolMovement,
        EnergyCause::RechargeMovement,
        EnergyCause::Collection,
    ];

    /// Human-readable label for report tables.
    pub fn label(&self) -> &'static str {
        match self {
            EnergyCause::PatrolMovement => "patrol movement",
            EnergyCause::RechargeMovement => "recharge movement",
            EnergyCause::Collection => "data collection",
        }
    }
}

/// A ledger of energy consumption broken down by cause.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConsumptionLedger {
    patrol_movement_j: f64,
    recharge_movement_j: f64,
    collection_j: f64,
}

impl ConsumptionLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `joules` consumed for `cause` (negative amounts ignored).
    pub fn record(&mut self, cause: EnergyCause, joules: f64) {
        let j = joules.max(0.0);
        match cause {
            EnergyCause::PatrolMovement => self.patrol_movement_j += j,
            EnergyCause::RechargeMovement => self.recharge_movement_j += j,
            EnergyCause::Collection => self.collection_j += j,
        }
    }

    /// Energy attributed to `cause`.
    pub fn get(&self, cause: EnergyCause) -> f64 {
        match cause {
            EnergyCause::PatrolMovement => self.patrol_movement_j,
            EnergyCause::RechargeMovement => self.recharge_movement_j,
            EnergyCause::Collection => self.collection_j,
        }
    }

    /// Total energy across all causes.
    pub fn total(&self) -> f64 {
        self.patrol_movement_j + self.recharge_movement_j + self.collection_j
    }

    /// Fraction of total energy spent on productive work (patrol movement +
    /// collection) as opposed to recharge detours. Returns 1.0 for an empty
    /// ledger (no energy wasted yet).
    pub fn useful_fraction(&self) -> f64 {
        let total = self.total();
        if total <= 0.0 {
            1.0
        } else {
            (self.patrol_movement_j + self.collection_j) / total
        }
    }

    /// Merges another ledger into this one (used to aggregate per-mule
    /// ledgers into a fleet total).
    pub fn merge(&mut self, other: &ConsumptionLedger) {
        self.patrol_movement_j += other.patrol_movement_j;
        self.recharge_movement_j += other.recharge_movement_j;
        self.collection_j += other.collection_j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_get_per_cause() {
        let mut l = ConsumptionLedger::new();
        l.record(EnergyCause::PatrolMovement, 100.0);
        l.record(EnergyCause::Collection, 1.5);
        l.record(EnergyCause::RechargeMovement, 20.0);
        assert_eq!(l.get(EnergyCause::PatrolMovement), 100.0);
        assert_eq!(l.get(EnergyCause::Collection), 1.5);
        assert_eq!(l.get(EnergyCause::RechargeMovement), 20.0);
        assert!((l.total() - 121.5).abs() < 1e-12);
    }

    #[test]
    fn negative_amounts_are_ignored() {
        let mut l = ConsumptionLedger::new();
        l.record(EnergyCause::Collection, -5.0);
        assert_eq!(l.total(), 0.0);
    }

    #[test]
    fn useful_fraction_splits_patrol_from_recharge() {
        let mut l = ConsumptionLedger::new();
        assert_eq!(l.useful_fraction(), 1.0);
        l.record(EnergyCause::PatrolMovement, 80.0);
        l.record(EnergyCause::RechargeMovement, 20.0);
        assert!((l.useful_fraction() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates_all_causes() {
        let mut a = ConsumptionLedger::new();
        a.record(EnergyCause::PatrolMovement, 10.0);
        let mut b = ConsumptionLedger::new();
        b.record(EnergyCause::PatrolMovement, 5.0);
        b.record(EnergyCause::Collection, 2.0);
        a.merge(&b);
        assert_eq!(a.get(EnergyCause::PatrolMovement), 15.0);
        assert_eq!(a.get(EnergyCause::Collection), 2.0);
    }

    #[test]
    fn cause_labels_are_distinct() {
        let labels: std::collections::HashSet<&str> =
            EnergyCause::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), EnergyCause::ALL.len());
    }
}
