//! ALT preprocessing: landmarks + triangle-inequality lower bounds.
//!
//! The ALT technique (A*, Landmarks, Triangle inequality) precomputes the
//! exact shortest-path cost from a handful of *landmark* nodes to every
//! node. For any nodes `v` and `t` and landmark `L`, the triangle
//! inequality gives `d(v, t) ≥ |d(L, t) − d(L, v)|`; the maximum over all
//! landmarks is a tight admissible heuristic that steers A* down the
//! correct corridor even where plain Euclidean bounds are weak (e.g. when
//! the road network detours around a deleted block).
//!
//! Landmarks are chosen with the classic **farthest-point** rule: start
//! from the node farthest from node 0, then repeatedly add the node
//! maximising the minimum distance to the already-chosen set. On an
//! undirected graph one cost vector per landmark serves both directions.

use crate::graph::RoadGraph;
use crate::route::dijkstra;
use serde::{Deserialize, Serialize};

/// Precomputed landmark distances for ALT queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Landmarks {
    /// Chosen landmark node ids, in selection order.
    ids: Vec<u32>,
    /// `dist[l][v]` = exact cost between landmark `l` and node `v`.
    dist: Vec<Vec<f64>>,
}

impl Landmarks {
    /// Selects up to `count` landmarks by the farthest-point rule and
    /// precomputes their one-to-all distance vectors (`count` Dijkstra
    /// runs). An empty graph yields an empty set.
    pub fn select(graph: &RoadGraph, count: usize) -> Self {
        let n = graph.len();
        if n == 0 || count == 0 {
            return Landmarks {
                ids: Vec::new(),
                dist: Vec::new(),
            };
        }
        let count = count.min(n);

        // Seed: the node farthest (by road cost) from node 0; falls back
        // to node 0 itself on a single-node graph. Unreachable nodes never
        // win (their distance is +inf, which `total_cmp` sorts last, so we
        // filter them out explicitly).
        let from0 = dijkstra(graph, 0);
        let first = farthest_finite(&from0).unwrap_or(0);

        let mut ids = vec![first];
        let mut dist = vec![dijkstra(graph, first)];
        // min_dist[v] = distance from v to its nearest chosen landmark.
        let mut min_dist = dist[0].clone();
        while ids.len() < count {
            let Some(next) = farthest_finite(&min_dist) else {
                break;
            };
            if ids.contains(&next) || min_dist[next as usize] <= 0.0 {
                break; // graph exhausted (fewer distinct spots than asked)
            }
            let vec = dijkstra(graph, next);
            for (m, d) in min_dist.iter_mut().zip(&vec) {
                if d < m {
                    *m = *d;
                }
            }
            ids.push(next);
            dist.push(vec);
        }
        Landmarks { ids, dist }
    }

    /// Number of landmarks.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Returns `true` when no landmarks were selected.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The chosen landmark node ids.
    #[inline]
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// The ALT lower bound on `d(v, t)`: the best triangle bound over all
    /// landmarks. Returns 0 when either node is unreachable from a
    /// landmark (an infinite bound would be unsound there) — admissible by
    /// construction, see the module docs.
    #[inline]
    pub fn lower_bound(&self, v: u32, t: u32) -> f64 {
        let mut best = 0.0f64;
        for d in &self.dist {
            let dv = d[v as usize];
            let dt = d[t as usize];
            if dv.is_finite() && dt.is_finite() {
                let bound = (dt - dv).abs();
                if bound > best {
                    best = bound;
                }
            }
        }
        best
    }
}

/// Index of the largest finite entry (ties: smallest index), or `None`
/// when every entry is infinite.
fn farthest_finite(dist: &[f64]) -> Option<u32> {
    let mut best: Option<(u32, f64)> = None;
    for (i, &d) in dist.iter().enumerate() {
        if !d.is_finite() {
            continue;
        }
        if best.map(|(_, b)| d > b).unwrap_or(true) {
            best = Some((i as u32, d));
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{RoadGraphBuilder, SpeedClass};
    use crate::route::dijkstra_to;
    use mule_geom::Point;

    fn path_graph(n: usize) -> RoadGraph {
        let mut b = RoadGraphBuilder::new();
        for i in 0..n {
            b.add_node(Point::new(i as f64 * 10.0, 0.0));
        }
        for i in 0..n as u32 - 1 {
            b.add_edge(i, i + 1, SpeedClass::Highway);
        }
        b.build()
    }

    #[test]
    fn farthest_point_selection_spreads_landmarks() {
        let g = path_graph(10);
        let lm = Landmarks::select(&g, 2);
        assert_eq!(lm.len(), 2);
        // On a path, the farthest node from 0 is the far end; the second
        // landmark maximises distance to it — the near end.
        assert_eq!(lm.ids(), &[9, 0]);
    }

    #[test]
    fn lower_bounds_are_exact_on_a_path() {
        // With a landmark at an end of a path, the triangle bound is the
        // exact distance for every pair.
        let g = path_graph(8);
        let lm = Landmarks::select(&g, 1);
        for s in 0..8u32 {
            for t in 0..8u32 {
                let exact = dijkstra_to(&g, s, t).unwrap().cost;
                let bound = lm.lower_bound(s, t);
                assert!(bound <= exact + 1e-9);
                assert!((bound - exact).abs() < 1e-9, "path bound is tight");
            }
        }
    }

    #[test]
    fn landmark_count_is_clamped_to_distinct_nodes() {
        let g = path_graph(3);
        let lm = Landmarks::select(&g, 10);
        assert!(lm.len() <= 3);
        assert!(!lm.is_empty());
        let empty = Landmarks::select(&RoadGraphBuilder::new().build(), 4);
        assert!(empty.is_empty());
        assert_eq!(empty.lower_bound(0, 0), 0.0);
    }

    #[test]
    fn disconnected_nodes_get_a_zero_bound() {
        let mut b = RoadGraphBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        b.add_node(Point::new(10.0, 0.0));
        b.add_node(Point::new(500.0, 0.0)); // isolated
        b.add_edge(0, 1, SpeedClass::Highway);
        let g = b.build();
        let lm = Landmarks::select(&g, 2);
        assert_eq!(lm.lower_bound(0, 2), 0.0, "unreachable pair bounds to 0");
    }
}
