//! The pluggable travel metric the rest of the stack consumes.
//!
//! Every distance the planners, tour engine and simulator compute goes
//! through a [`TravelMetric`]: `Euclidean` reproduces the historical
//! straight-line behaviour **bit for bit** (it delegates to the exact same
//! `Point::distance` calls), while `Road` routes every leg over a
//! [`RoadIndex`]. The index sits behind an `Arc` so scenarios, plans and
//! replan contexts can share one preprocessed network without copying the
//! CSR arrays or landmark tables.

use crate::index::RoadIndex;
use mule_geom::Point;
use std::sync::Arc;

/// How travel between two field points is measured.
#[derive(Debug, Clone, Default)]
pub enum TravelMetric {
    /// Straight-line distance — the workspace's historical default.
    #[default]
    Euclidean,
    /// Shortest-path distance over a road network.
    Road(Arc<RoadIndex>),
}

impl PartialEq for TravelMetric {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (TravelMetric::Euclidean, TravelMetric::Euclidean) => true,
            (TravelMetric::Road(a), TravelMetric::Road(b)) => Arc::ptr_eq(a, b) || a == b,
            _ => false,
        }
    }
}

impl TravelMetric {
    /// Wraps a prepared road index.
    pub fn road(index: RoadIndex) -> Self {
        TravelMetric::Road(Arc::new(index))
    }

    /// Returns `true` for the Euclidean default.
    #[inline]
    pub fn is_euclidean(&self) -> bool {
        matches!(self, TravelMetric::Euclidean)
    }

    /// The road index, when the metric is road-based.
    pub fn road_index(&self) -> Option<&RoadIndex> {
        match self {
            TravelMetric::Euclidean => None,
            TravelMetric::Road(index) => Some(index),
        }
    }

    /// Travel distance from `a` to `b` under this metric, metres
    /// (effective metres for road classes slower than highway).
    #[inline]
    pub fn distance(&self, a: &Point, b: &Point) -> f64 {
        match self {
            TravelMetric::Euclidean => a.distance(b),
            TravelMetric::Road(index) => index.distance(a, b),
        }
    }

    /// The intermediate geometry of the leg from `a` to `b` — the points a
    /// mule physically passes *between* the two endpoints. Empty for the
    /// Euclidean metric (straight legs have no interior vertices).
    pub fn leg_path(&self, a: &Point, b: &Point) -> Vec<Point> {
        match self {
            TravelMetric::Euclidean => Vec::new(),
            TravelMetric::Road(index) => index.leg_path(a, b),
        }
    }

    /// The dense row-major `n × n` distance matrix over `points`.
    ///
    /// Note for `mule-graph` readers: `DistanceMatrix::from_metric` routes
    /// the Euclidean case to its own `from_points` (the bit-for-bit
    /// historical path) and only calls this for road metrics; the
    /// Euclidean arm below exists so the metric is a complete API for
    /// callers without `mule-graph`, and mirrors `from_points` exactly.
    pub fn pairwise(&self, points: &[Point]) -> Vec<f64> {
        match self {
            TravelMetric::Euclidean => {
                let n = points.len();
                let mut out = vec![0.0; n * n];
                for i in 0..n {
                    for j in (i + 1)..n {
                        let d = points[i].distance(&points[j]);
                        out[i * n + j] = d;
                        out[j * n + i] = d;
                    }
                }
                out
            }
            TravelMetric::Road(index) => index.pairwise(points),
        }
    }

    /// Short label used in reports and JSON documents.
    pub fn label(&self) -> &'static str {
        match self {
            TravelMetric::Euclidean => "euclidean",
            TravelMetric::Road(index) => match index.kind() {
                crate::generate::RoadNetKind::Grid => "road-grid",
                crate::generate::RoadNetKind::Planar => "road-planar",
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::RoadNetKind;
    use mule_geom::BoundingBox;

    fn road_metric() -> TravelMetric {
        TravelMetric::road(RoadIndex::for_field(
            RoadNetKind::Grid,
            &BoundingBox::square(800.0),
            3,
        ))
    }

    #[test]
    fn euclidean_matches_point_distance_exactly() {
        let m = TravelMetric::Euclidean;
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(m.distance(&a, &b), a.distance(&b));
        assert!(m.leg_path(&a, &b).is_empty());
        assert!(m.is_euclidean());
        assert_eq!(m.label(), "euclidean");
        assert!(m.road_index().is_none());
    }

    #[test]
    fn road_distances_dominate_euclidean() {
        let m = road_metric();
        assert!(!m.is_euclidean());
        assert_eq!(m.label(), "road-grid");
        let a = Point::new(100.0, 100.0);
        let b = Point::new(700.0, 600.0);
        assert!(m.distance(&a, &b) >= a.distance(&b));
        assert!(!m.leg_path(&a, &b).is_empty());
    }

    #[test]
    fn pairwise_euclidean_equals_manual_distances() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 4.0),
            Point::new(-1.0, 1.0),
        ];
        let m = TravelMetric::Euclidean.pairwise(&pts);
        assert_eq!(m[1], 5.0, "d(0, 1)");
        assert_eq!(m[3], 5.0, "d(1, 0)");
        assert_eq!(m[0], 0.0);
    }

    #[test]
    fn equality_distinguishes_metrics_and_shares_arcs() {
        let a = road_metric();
        let b = a.clone();
        assert_eq!(a, b, "clones share the Arc");
        assert_eq!(a, road_metric(), "equal seeds rebuild equal indices");
        assert_ne!(a, TravelMetric::Euclidean);
        assert_eq!(TravelMetric::Euclidean, TravelMetric::default());
    }
}
