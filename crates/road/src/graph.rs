//! The compact road graph: CSR adjacency over planar points.
//!
//! Nodes are 2-D positions (metres); edges are undirected road segments
//! stored as two directed arcs in compressed-sparse-row form, sorted by
//! `(source, target)` so iteration order — and therefore every algorithm
//! built on it — is deterministic regardless of insertion order.
//!
//! Every arc carries a [`SpeedClass`] whose *cost factor* scales the
//! geometric length into the routing cost. All factors are ≥ 1, so an arc
//! never costs less than its straight-line length; summed over a path this
//! keeps the plain Euclidean distance an admissible A* heuristic (see
//! [`crate::route`]).

use mule_geom::Point;
use serde::{Deserialize, Serialize};

/// Road category of an edge. The cost factor models how slow the class is
/// relative to the fastest road: routing cost = length × factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpeedClass {
    /// Fast arterial road (factor 1.0 — cost equals geometric length).
    Highway,
    /// Mid-tier road (factor 1.3).
    Avenue,
    /// Slow local road (factor 1.6).
    Street,
}

impl SpeedClass {
    /// Cost multiplier applied to the edge's geometric length. Always ≥ 1
    /// (the admissibility invariant of the Euclidean A* heuristic).
    #[inline]
    pub fn cost_factor(self) -> f64 {
        match self {
            SpeedClass::Highway => 1.0,
            SpeedClass::Avenue => 1.3,
            SpeedClass::Street => 1.6,
        }
    }

    /// All classes, slowest last (used by the generators' seeded draws).
    pub const ALL: [SpeedClass; 3] = [SpeedClass::Highway, SpeedClass::Avenue, SpeedClass::Street];
}

/// An immutable road network in CSR form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoadGraph {
    positions: Vec<Point>,
    /// `offsets[u]..offsets[u + 1]` indexes `u`'s outgoing arcs.
    offsets: Vec<u32>,
    /// Arc target node ids, sorted per source.
    targets: Vec<u32>,
    /// Arc routing costs (length × class factor), aligned with `targets`.
    costs: Vec<f64>,
    /// Arc speed classes, aligned with `targets`.
    classes: Vec<SpeedClass>,
}

impl RoadGraph {
    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Returns `true` for a graph with no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Number of undirected edges (arc count / 2).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// Position of node `u`.
    #[inline]
    pub fn position(&self, u: u32) -> Point {
        self.positions[u as usize]
    }

    /// All node positions, in node-id order.
    #[inline]
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// The outgoing arcs of `u` as `(target, cost)` pairs, sorted by
    /// target id.
    #[inline]
    pub fn neighbors(&self, u: u32) -> impl Iterator<Item = (u32, f64)> + '_ {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .zip(&self.costs[lo..hi])
            .map(|(&t, &c)| (t, c))
    }

    /// Each undirected edge exactly once as `(u, v, class)` with `u < v`,
    /// in `(u, v)` order — the iteration the SVG renderer draws.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32, SpeedClass)> + '_ {
        (0..self.len() as u32).flat_map(move |u| {
            let lo = self.offsets[u as usize] as usize;
            let hi = self.offsets[u as usize + 1] as usize;
            self.targets[lo..hi]
                .iter()
                .zip(&self.classes[lo..hi])
                .filter(move |(&v, _)| u < v)
                .map(move |(&v, &class)| (u, v, class))
        })
    }

    /// Sum of all undirected edge geometric lengths, metres.
    pub fn total_length_m(&self) -> f64 {
        self.edges()
            .map(|(u, v, _)| self.position(u).distance(&self.position(v)))
            .sum()
    }
}

/// Incremental construction of a [`RoadGraph`].
#[derive(Debug, Clone, Default)]
pub struct RoadGraphBuilder {
    positions: Vec<Point>,
    /// Undirected edges as `(min, max, class)`; deduplicated at build time.
    edges: Vec<(u32, u32, SpeedClass)>,
}

impl RoadGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        RoadGraphBuilder::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, position: Point) -> u32 {
        let id = self.positions.len() as u32;
        self.positions.push(position);
        id
    }

    /// Adds an undirected edge between `u` and `v`. Self-loops are ignored;
    /// duplicate edges collapse to the first-added class at build time.
    pub fn add_edge(&mut self, u: u32, v: u32, class: SpeedClass) {
        assert!(
            (u as usize) < self.positions.len() && (v as usize) < self.positions.len(),
            "edge endpoint out of range"
        );
        if u == v {
            return;
        }
        self.edges.push((u.min(v), u.max(v), class));
    }

    /// Number of nodes added so far.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Finalises the CSR graph. Edges are sorted and deduplicated by
    /// `(u, v)` (keeping the first-added class), so the result does not
    /// depend on insertion order beyond that tie rule.
    pub fn build(mut self) -> RoadGraph {
        // Stable sort keeps the first-added class for duplicate edges.
        self.edges.sort_by_key(|&(u, v, _)| (u, v));
        self.edges.dedup_by_key(|&mut (u, v, _)| (u, v));

        let n = self.positions.len();
        let mut degree = vec![0u32; n];
        for &(u, v, _) in &self.edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let arc_count = acc as usize;
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![0u32; arc_count];
        let mut costs = vec![0.0f64; arc_count];
        let mut classes = vec![SpeedClass::Street; arc_count];
        for &(u, v, class) in &self.edges {
            let cost = self.positions[u as usize].distance(&self.positions[v as usize])
                * class.cost_factor();
            for (src, dst) in [(u, v), (v, u)] {
                let slot = cursor[src as usize] as usize;
                cursor[src as usize] += 1;
                targets[slot] = dst;
                costs[slot] = cost;
                classes[slot] = class;
            }
        }
        // Per-source arcs arrive in (u, v)-sorted edge order; for the
        // reverse arcs of a source they are also target-sorted because the
        // edge list is sorted by (min, max). Sort each bucket to make the
        // invariant unconditional.
        for u in 0..n {
            let lo = offsets[u] as usize;
            let hi = offsets[u + 1] as usize;
            let mut bucket: Vec<(u32, f64, SpeedClass)> = (lo..hi)
                .map(|i| (targets[i], costs[i], classes[i]))
                .collect();
            bucket.sort_by_key(|&(t, _, _)| t);
            for (i, (t, c, cl)) in bucket.into_iter().enumerate() {
                targets[lo + i] = t;
                costs[lo + i] = c;
                classes[lo + i] = cl;
            }
        }
        RoadGraph {
            positions: self.positions,
            offsets,
            targets,
            costs,
            classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_graph() -> RoadGraph {
        let mut b = RoadGraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(10.0, 0.0));
        let d = b.add_node(Point::new(10.0, 10.0));
        let e = b.add_node(Point::new(0.0, 10.0));
        b.add_edge(a, c, SpeedClass::Highway);
        b.add_edge(c, d, SpeedClass::Avenue);
        b.add_edge(d, e, SpeedClass::Street);
        b.add_edge(e, a, SpeedClass::Highway);
        b.build()
    }

    #[test]
    fn csr_layout_round_trips_edges() {
        let g = square_graph();
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 4);
        let n0: Vec<(u32, f64)> = g.neighbors(0).collect();
        assert_eq!(n0.len(), 2);
        assert_eq!(n0[0].0, 1);
        assert_eq!(n0[1].0, 3);
        assert!((n0[0].1 - 10.0).abs() < 1e-12, "highway cost = length");
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        assert!(edges.iter().all(|&(u, v, _)| u < v));
        assert!((g.total_length_m() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn speed_classes_scale_costs_and_stay_admissible() {
        let g = square_graph();
        // Avenue edge 1→2: length 10, factor 1.3.
        let cost = g.neighbors(1).find(|&(t, _)| t == 2).unwrap().1;
        assert!((cost - 13.0).abs() < 1e-12);
        for class in SpeedClass::ALL {
            assert!(class.cost_factor() >= 1.0, "{class:?} must be >= 1");
        }
    }

    #[test]
    fn duplicate_edges_and_self_loops_are_dropped() {
        let mut b = RoadGraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(5.0, 0.0));
        b.add_edge(a, c, SpeedClass::Highway);
        b.add_edge(c, a, SpeedClass::Street); // duplicate, other direction
        b.add_edge(a, a, SpeedClass::Avenue); // self-loop
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        // First-added class wins.
        assert_eq!(g.edges().next().unwrap().2, SpeedClass::Highway);
    }

    #[test]
    fn build_is_insertion_order_independent() {
        let build = |order: &[(u32, u32)]| {
            let mut b = RoadGraphBuilder::new();
            for i in 0..4 {
                b.add_node(Point::new(i as f64 * 10.0, 0.0));
            }
            for &(u, v) in order {
                b.add_edge(u, v, SpeedClass::Avenue);
            }
            b.build()
        };
        let a = build(&[(0, 1), (1, 2), (2, 3)]);
        let b = build(&[(2, 3), (1, 0), (2, 1)]);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_graph_is_consistent() {
        let g = RoadGraphBuilder::new().build();
        assert!(g.is_empty());
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.edges().count(), 0);
        assert_eq!(g.total_length_m(), 0.0);
    }
}
