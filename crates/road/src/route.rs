//! Shortest paths on a [`RoadGraph`]: Dijkstra and A*.
//!
//! All three query flavours (plain Dijkstra, A* with the Euclidean
//! heuristic, A* with ALT lower bounds — see [`crate::landmarks`]) return
//! the same costs and are deterministic: the priority queue orders by
//! `(priority, node id)` under `f64::total_cmp`, so ties never depend on
//! heap internals.
//!
//! The Euclidean heuristic is admissible because every arc's cost is its
//! geometric length times a class factor ≥ 1 ([`crate::SpeedClass`]), so
//! any path between two nodes costs at least their straight-line distance.
//! It is also consistent (the same inequality edge-by-edge), so nodes
//! never need reopening and lazy heap deletion is safe.

use crate::graph::RoadGraph;
use crate::landmarks::Landmarks;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A computed shortest path.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// Total routing cost (length × class factors along the path).
    pub cost: f64,
    /// Node ids from source to destination inclusive.
    pub nodes: Vec<u32>,
    /// How many nodes the search settled — the work measure the
    /// `bench-routes` harness reports alongside wall time.
    pub settled: usize,
}

/// Min-heap entry ordered by `(priority, node)`; `BinaryHeap` is a
/// max-heap, so the `Ord` impl is reversed.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    priority: f64,
    cost: f64,
    node: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.priority.total_cmp(&other.priority).is_eq() && self.node == other.node
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: smallest (priority, node) pops first.
        other
            .priority
            .total_cmp(&self.priority)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// One-to-all Dijkstra: the cost from `src` to every node
/// (`f64::INFINITY` for unreachable ones).
pub fn dijkstra(graph: &RoadGraph, src: u32) -> Vec<f64> {
    dijkstra_counted(graph, src).0
}

/// [`dijkstra`] also reporting how many nodes the search settled (popped
/// non-stale), the work measure instrumented callers attach to their
/// trace spans.
pub fn dijkstra_counted(graph: &RoadGraph, src: u32) -> (Vec<f64>, usize) {
    let mut dist = vec![f64::INFINITY; graph.len()];
    if graph.is_empty() {
        return (dist, 0);
    }
    let mut settled = 0usize;
    let mut heap = BinaryHeap::new();
    dist[src as usize] = 0.0;
    heap.push(HeapEntry {
        priority: 0.0,
        cost: 0.0,
        node: src,
    });
    while let Some(entry) = heap.pop() {
        if entry.cost > dist[entry.node as usize] {
            continue; // stale heap entry
        }
        settled += 1;
        for (next, arc_cost) in graph.neighbors(entry.node) {
            let cand = entry.cost + arc_cost;
            if cand < dist[next as usize] {
                dist[next as usize] = cand;
                heap.push(HeapEntry {
                    priority: cand,
                    cost: cand,
                    node: next,
                });
            }
        }
    }
    (dist, settled)
}

/// The generic best-first search behind all point-to-point queries.
/// `heuristic(v)` must be an admissible, consistent lower bound on the
/// remaining cost from `v` to `dst`.
fn best_first<H: Fn(u32) -> f64>(
    graph: &RoadGraph,
    src: u32,
    dst: u32,
    heuristic: H,
) -> Option<Route> {
    let n = graph.len();
    if src as usize >= n || dst as usize >= n {
        return None;
    }
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![u32::MAX; n];
    let mut settled = 0usize;
    let mut heap = BinaryHeap::new();
    dist[src as usize] = 0.0;
    heap.push(HeapEntry {
        priority: heuristic(src),
        cost: 0.0,
        node: src,
    });
    while let Some(entry) = heap.pop() {
        if entry.cost > dist[entry.node as usize] {
            continue;
        }
        settled += 1;
        if entry.node == dst {
            let mut nodes = vec![dst];
            let mut cur = dst;
            while cur != src {
                cur = parent[cur as usize];
                nodes.push(cur);
            }
            nodes.reverse();
            return Some(Route {
                cost: entry.cost,
                nodes,
                settled,
            });
        }
        for (next, arc_cost) in graph.neighbors(entry.node) {
            let cand = entry.cost + arc_cost;
            if cand < dist[next as usize] {
                dist[next as usize] = cand;
                parent[next as usize] = entry.node;
                heap.push(HeapEntry {
                    priority: cand + heuristic(next),
                    cost: cand,
                    node: next,
                });
            }
        }
    }
    None
}

/// Point-to-point Dijkstra (early exit when the destination settles).
pub fn dijkstra_to(graph: &RoadGraph, src: u32, dst: u32) -> Option<Route> {
    best_first(graph, src, dst, |_| 0.0)
}

/// A* with the straight-line (Euclidean) heuristic.
pub fn astar(graph: &RoadGraph, src: u32, dst: u32) -> Option<Route> {
    if (dst as usize) >= graph.len() {
        return None;
    }
    let goal = graph.position(dst);
    best_first(graph, src, dst, |v| graph.position(v).distance(&goal))
}

/// A* with ALT lower bounds (the max of every landmark's triangle bound
/// and the Euclidean bound — the max of admissible bounds is admissible).
pub fn astar_alt(graph: &RoadGraph, landmarks: &Landmarks, src: u32, dst: u32) -> Option<Route> {
    if (dst as usize) >= graph.len() {
        return None;
    }
    let goal = graph.position(dst);
    best_first(graph, src, dst, |v| {
        landmarks
            .lower_bound(v, dst)
            .max(graph.position(v).distance(&goal))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{RoadGraphBuilder, SpeedClass};
    use mule_geom::Point;

    /// 3 × 3 grid, 10 m spacing, all streets (factor 1.6).
    fn grid3() -> RoadGraph {
        let mut b = RoadGraphBuilder::new();
        for y in 0..3 {
            for x in 0..3 {
                b.add_node(Point::new(x as f64 * 10.0, y as f64 * 10.0));
            }
        }
        for y in 0..3u32 {
            for x in 0..3u32 {
                let id = y * 3 + x;
                if x + 1 < 3 {
                    b.add_edge(id, id + 1, SpeedClass::Street);
                }
                if y + 1 < 3 {
                    b.add_edge(id, id + 3, SpeedClass::Street);
                }
            }
        }
        b.build()
    }

    #[test]
    fn dijkstra_costs_match_manhattan_times_factor() {
        let g = grid3();
        let dist = dijkstra(&g, 0);
        // Corner to corner: 4 edges of 10 m at factor 1.6.
        assert!((dist[8] - 64.0).abs() < 1e-9);
        assert!((dist[4] - 32.0).abs() < 1e-9);
        assert_eq!(dist[0], 0.0);
    }

    #[test]
    fn point_to_point_flavours_agree_on_cost_and_endpoints() {
        let g = grid3();
        let lm = Landmarks::select(&g, 3);
        for (s, t) in [(0u32, 8u32), (2, 6), (1, 7), (3, 3)] {
            let d = dijkstra_to(&g, s, t).unwrap();
            let a = astar(&g, s, t).unwrap();
            let alt = astar_alt(&g, &lm, s, t).unwrap();
            assert!((d.cost - a.cost).abs() < 1e-9, "{s}->{t}");
            assert!((d.cost - alt.cost).abs() < 1e-9, "{s}->{t}");
            for r in [&d, &a, &alt] {
                assert_eq!(r.nodes.first(), Some(&s));
                assert_eq!(r.nodes.last(), Some(&t));
                // Path cost re-derived from arcs matches the reported cost.
                let mut acc = 0.0;
                for w in r.nodes.windows(2) {
                    acc += g
                        .neighbors(w[0])
                        .find(|&(n, _)| n == w[1])
                        .expect("consecutive path nodes are adjacent")
                        .1;
                }
                assert!((acc - r.cost).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn goal_direction_prunes_the_search() {
        let g = grid3();
        let d = dijkstra_to(&g, 0, 2).unwrap();
        let a = astar(&g, 0, 2).unwrap();
        assert!(
            a.settled <= d.settled,
            "A* never settles more than Dijkstra"
        );
    }

    #[test]
    fn unreachable_and_out_of_range_queries_return_none() {
        let mut b = RoadGraphBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        b.add_node(Point::new(100.0, 0.0)); // isolated
        let g = b.build();
        assert!(dijkstra_to(&g, 0, 1).is_none());
        assert!(astar(&g, 0, 9).is_none());
        assert!(dijkstra(&g, 0)[1].is_infinite());
        let trivial = dijkstra_to(&g, 0, 0).unwrap();
        assert_eq!(trivial.cost, 0.0);
        assert_eq!(trivial.nodes, vec![0]);
    }
}
