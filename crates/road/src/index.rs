//! The queryable road bundle: graph + ALT landmarks + snapping.
//!
//! A [`RoadIndex`] is what scenarios carry: the connected road graph, its
//! precomputed [`Landmarks`] and a kd-tree over the node positions so
//! arbitrary field points (targets, the sink, mule positions) snap to
//! their nearest road node in `O(log n)`.
//!
//! Distances between arbitrary points decompose as *connector + road +
//! connector*: the straight-line hop onto the network at each end plus
//! the shortest road path between the snapped nodes. When both points
//! snap to the same node, the road part is zero and the metric degrades
//! gracefully to the two connectors.

use crate::generate::{self, ComponentReport, RoadNet, RoadNetKind};
use crate::graph::RoadGraph;
use crate::landmarks::Landmarks;
use crate::route::{astar_alt, dijkstra_counted};
use mule_geom::{BoundingBox, KdTree, Point};

/// Landmark count used by [`RoadIndex::build`]'s callers in this
/// workspace. 8 is the classic sweet spot for ALT on planar networks:
/// more landmarks sharpen bounds slowly while each costs one full
/// distance vector of memory.
pub const DEFAULT_LANDMARKS: usize = 8;

/// A road graph prepared for fast repeated queries.
#[derive(Debug, Clone)]
pub struct RoadIndex {
    graph: RoadGraph,
    landmarks: Landmarks,
    snap_tree: KdTree,
    component: ComponentReport,
    kind: RoadNetKind,
    seed: u64,
}

impl PartialEq for RoadIndex {
    fn eq(&self, other: &Self) -> bool {
        // The kd-tree is a deterministic function of the graph's node
        // positions, so graph equality subsumes it.
        self.graph == other.graph
            && self.landmarks == other.landmarks
            && self.component == other.component
            && self.kind == other.kind
            && self.seed == other.seed
    }
}

impl RoadIndex {
    /// Prepares a generated network for queries (`landmark_count` Dijkstra
    /// runs of preprocessing).
    pub fn build(net: RoadNet, kind: RoadNetKind, seed: u64, landmark_count: usize) -> Self {
        let landmarks = Landmarks::select(&net.graph, landmark_count);
        let snap_tree = KdTree::build(net.graph.positions());
        RoadIndex {
            graph: net.graph,
            landmarks,
            snap_tree,
            component: net.component,
            kind,
            seed,
        }
    }

    /// The deterministic road network a scenario field implies: generator
    /// parameters are derived from the field bounds (≈ 70 m grid blocks /
    /// an equivalent planar intersection density) and everything downstream
    /// of `(kind, bounds, seed)` is fixed. This is the single entry point
    /// the workload generator uses, so CLI, server and tests cannot drift.
    pub fn for_field(kind: RoadNetKind, bounds: &BoundingBox, seed: u64) -> Self {
        // Decouple the road RNG stream from the scenario's target stream:
        // the same seed must keep generating byte-identical Euclidean
        // scenarios whether or not a road layer exists.
        let road_seed = seed ^ 0x526f_6164_5f76_3031; // "Road_v01"
        let net = match kind {
            RoadNetKind::Grid => {
                let nx = ((bounds.width() / 70.0).round() as usize).clamp(6, 160);
                let ny = ((bounds.height() / 70.0).round() as usize).clamp(6, 160);
                generate::grid_with_deletions(bounds, nx, ny, 0.18, road_seed)
            }
            RoadNetKind::Planar => {
                let density = (bounds.area() / (70.0 * 70.0)).round() as usize;
                let nodes = density.clamp(36, 25_000);
                generate::random_planar(bounds, nodes, 4, road_seed)
            }
        };
        RoadIndex::build(net, kind, seed, DEFAULT_LANDMARKS)
    }

    /// The underlying road graph.
    #[inline]
    pub fn graph(&self) -> &RoadGraph {
        &self.graph
    }

    /// The ALT landmark set.
    #[inline]
    pub fn landmarks(&self) -> &Landmarks {
        &self.landmarks
    }

    /// The largest-component restriction report of the generator.
    #[inline]
    pub fn component(&self) -> ComponentReport {
        self.component
    }

    /// Which generator family produced the graph.
    #[inline]
    pub fn kind(&self) -> RoadNetKind {
        self.kind
    }

    /// The scenario seed the index was derived from.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The nearest road node to `p`. Panics on an empty graph (scenario
    /// generation never builds one — the generators clamp their sizes).
    #[inline]
    pub fn snap(&self, p: &Point) -> u32 {
        self.snap_tree
            .nearest(p)
            .expect("road graph has at least one node")
            .0 as u32
    }

    /// The snapped position of `p` (the nearest road node's coordinates).
    #[inline]
    pub fn snap_position(&self, p: &Point) -> Point {
        self.graph.position(self.snap(p))
    }

    /// Road-metric distance between two arbitrary field points:
    /// straight connectors onto the network plus the shortest road path
    /// (via ALT A*) between the snapped nodes.
    pub fn distance(&self, a: &Point, b: &Point) -> f64 {
        let (sa, sb) = (self.snap(a), self.snap(b));
        let connectors =
            a.distance(&self.graph.position(sa)) + b.distance(&self.graph.position(sb));
        if sa == sb {
            return connectors;
        }
        let road = astar_alt(&self.graph, &self.landmarks, sa, sb)
            .map(|r| {
                mule_obs::add("alt_queries", 1);
                mule_obs::add("alt_settled", r.settled as u64);
                r.cost
            })
            .unwrap_or(f64::INFINITY); // unreachable cannot happen on a connected graph
        connectors + road
    }

    /// The intermediate geometry of the road leg from `a` to `b`: the road
    /// node positions of the shortest path between the snapped endpoints,
    /// excluding any node that coincides with `a` or `b` themselves (so
    /// the caller can splice the result strictly between its own
    /// waypoints without zero-length stutters).
    pub fn leg_path(&self, a: &Point, b: &Point) -> Vec<Point> {
        let (sa, sb) = (self.snap(a), self.snap(b));
        let node_points: Vec<Point> = if sa == sb {
            vec![self.graph.position(sa)]
        } else {
            match astar_alt(&self.graph, &self.landmarks, sa, sb) {
                Some(route) => {
                    mule_obs::add("alt_queries", 1);
                    mule_obs::add("alt_settled", route.settled as u64);
                    route
                        .nodes
                        .iter()
                        .map(|&n| self.graph.position(n))
                        .collect()
                }
                None => Vec::new(),
            }
        };
        let coincides = |p: &Point, q: &Point| p.distance(q) < 1e-9;
        let mut out = Vec::with_capacity(node_points.len());
        for p in node_points {
            if coincides(&p, a) || coincides(&p, b) {
                continue;
            }
            if out.last().map(|l| coincides(l, &p)).unwrap_or(false) {
                continue;
            }
            out.push(p);
        }
        out
    }

    /// The dense `n × n` road-distance matrix over `points`, row-major.
    /// One full Dijkstra per *distinct snapped node* (typically ≪ n when
    /// targets share intersections), then connector adjustment per pair —
    /// the right tool for one-to-all workloads like tour construction,
    /// where point-to-point ALT would redo the same corridors n² times.
    pub fn pairwise(&self, points: &[Point]) -> Vec<f64> {
        let n = points.len();
        let mut out = vec![0.0; n * n];
        if n == 0 {
            return out;
        }
        let snapped: Vec<u32> = points.iter().map(|p| self.snap(p)).collect();
        let connector: Vec<f64> = points
            .iter()
            .zip(&snapped)
            .map(|(p, &s)| p.distance(&self.graph.position(s)))
            .collect();
        let _span = mule_obs::span("road.pairwise");
        mule_obs::add("n", n as u64);
        // BTreeMap: deterministic iteration over the distinct sources.
        let mut tables: std::collections::BTreeMap<u32, Vec<f64>> = Default::default();
        for &s in &snapped {
            tables.entry(s).or_insert_with(|| {
                let (table, settled) = dijkstra_counted(&self.graph, s);
                mule_obs::add("dijkstra_sources", 1);
                mule_obs::add("dijkstra_settled", settled as u64);
                table
            });
        }
        for i in 0..n {
            let table = &tables[&snapped[i]];
            for j in (i + 1)..n {
                let road = if snapped[i] == snapped[j] {
                    0.0
                } else {
                    table[snapped[j] as usize]
                };
                let d = connector[i] + road + connector[j];
                out[i * n + j] = d;
                out[j * n + i] = d;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::dijkstra_to;

    fn index() -> RoadIndex {
        RoadIndex::for_field(RoadNetKind::Grid, &BoundingBox::square(800.0), 1)
    }

    #[test]
    fn for_field_is_deterministic_per_seed_and_kind() {
        let a = index();
        let b = RoadIndex::for_field(RoadNetKind::Grid, &BoundingBox::square(800.0), 1);
        assert_eq!(a, b);
        let other_seed = RoadIndex::for_field(RoadNetKind::Grid, &BoundingBox::square(800.0), 2);
        assert_ne!(a, other_seed);
        let planar = RoadIndex::for_field(RoadNetKind::Planar, &BoundingBox::square(800.0), 1);
        assert_ne!(a, planar);
        assert_eq!(planar.kind(), RoadNetKind::Planar);
        assert!(a.graph().len() > 50, "800 m field has a real network");
        assert!(!a.landmarks().is_empty());
    }

    #[test]
    fn snapping_returns_the_nearest_node() {
        let idx = index();
        let q = Point::new(123.0, 456.0);
        let s = idx.snap(&q);
        let snapped = idx.snap_position(&q);
        let best = idx
            .graph()
            .positions()
            .iter()
            .map(|p| p.distance(&q))
            .fold(f64::INFINITY, f64::min);
        assert!((snapped.distance(&q) - best).abs() < 1e-9);
        assert_eq!(idx.graph().position(s), snapped);
    }

    #[test]
    fn distance_decomposes_into_connectors_plus_road() {
        let idx = index();
        let a = Point::new(100.0, 100.0);
        let b = Point::new(700.0, 650.0);
        let (sa, sb) = (idx.snap(&a), idx.snap(&b));
        let road = dijkstra_to(idx.graph(), sa, sb).unwrap().cost;
        let expected =
            a.distance(&idx.graph().position(sa)) + road + b.distance(&idx.graph().position(sb));
        assert!((idx.distance(&a, &b) - expected).abs() < 1e-9);
        // Road distance always dominates the straight line.
        assert!(idx.distance(&a, &b) >= a.distance(&b) - 1e-9);
        // Same point: zero.
        assert!(idx.distance(&a, &a) < 1e-9 + 2.0 * a.distance(&idx.snap_position(&a)));
    }

    #[test]
    fn leg_path_is_on_road_nodes_and_excludes_endpoints() {
        let idx = index();
        let a = idx.snap_position(&Point::new(50.0, 50.0));
        let b = idx.snap_position(&Point::new(750.0, 700.0));
        let path = idx.leg_path(&a, &b);
        assert!(!path.is_empty(), "distant points route through the network");
        for p in &path {
            assert!(p.distance(&a) > 1e-9 && p.distance(&b) > 1e-9);
            assert!(
                idx.graph().positions().iter().any(|q| q.distance(p) < 1e-9),
                "leg point {p} is a road node"
            );
        }
        // Consecutive path points are road-adjacent (no straight shortcuts).
        let all = std::iter::once(a)
            .chain(path.iter().copied())
            .chain(std::iter::once(b))
            .collect::<Vec<_>>();
        for w in all.windows(2) {
            let (u, v) = (idx.snap(&w[0]), idx.snap(&w[1]));
            assert!(
                u == v || idx.graph().neighbors(u).any(|(t, _)| t == v),
                "{} -> {} is not a road hop",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn pairwise_matches_point_to_point_distances() {
        let idx = index();
        let pts = [
            Point::new(100.0, 100.0),
            Point::new(400.0, 400.0),
            Point::new(700.0, 200.0),
            Point::new(100.0, 100.0), // duplicate point
        ];
        let m = idx.pairwise(&pts);
        let n = pts.len();
        for i in 0..n {
            assert_eq!(m[i * n + i], 0.0);
            for j in 0..n {
                assert!((m[i * n + j] - m[j * n + i]).abs() < 1e-9, "symmetric");
                if i != j {
                    assert!(
                        (m[i * n + j] - idx.distance(&pts[i], &pts[j])).abs() < 1e-6,
                        "pairwise [{i}][{j}] agrees with point-to-point"
                    );
                }
            }
        }
        assert!(idx.pairwise(&[]).is_empty());
    }
}
