//! Seeded road-network generators.
//!
//! Two families, both pure functions of `(bounds, parameters, seed)`:
//!
//! * [`grid_with_deletions`] — a jittered city grid with a seeded fraction
//!   of edges deleted (closed blocks), the classic street-network stand-in;
//! * [`random_planar`] — uniformly random intersections joined by
//!   k-nearest-neighbour candidate edges, greedily accepted shortest-first
//!   with a crossing filter so the result stays planar (country-road
//!   style).
//!
//! Deletions (and sparse k-NN connectivity) can disconnect the graph, so
//! every generator restricts the result to its **largest connected
//! component** and reports what was dropped in a [`ComponentReport`] —
//! callers never see an unroutable node, and the report makes the
//! restriction auditable instead of silent.

use crate::graph::{RoadGraph, RoadGraphBuilder, SpeedClass};
use mule_geom::{BoundingBox, KdTree, Point};
use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which generator family a road network comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RoadNetKind {
    /// Jittered grid with deleted edges ([`grid_with_deletions`]).
    #[default]
    Grid,
    /// Random planar k-NN network ([`random_planar`]).
    Planar,
}

impl RoadNetKind {
    /// Short label used in reports and canonical spec strings.
    pub fn label(&self) -> &'static str {
        match self {
            RoadNetKind::Grid => "grid",
            RoadNetKind::Planar => "planar",
        }
    }
}

/// What the largest-component restriction kept and dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComponentReport {
    /// Nodes generated before the restriction.
    pub total_nodes: usize,
    /// Nodes in the kept (largest) component.
    pub kept_nodes: usize,
    /// Nodes dropped with the smaller components.
    pub dropped_nodes: usize,
    /// How many connected components the raw graph had.
    pub component_count: usize,
}

/// A generated road network: the routable graph plus the restriction
/// report.
#[derive(Debug, Clone, PartialEq)]
pub struct RoadNet {
    /// The (connected) road graph.
    pub graph: RoadGraph,
    /// What the largest-component restriction did.
    pub component: ComponentReport,
}

/// Draws a speed class: 1/10 highway, 3/10 avenue, 6/10 street.
fn draw_class(rng: &mut StdRng) -> SpeedClass {
    match rng.next_u64() % 10 {
        0 => SpeedClass::Highway,
        1..=3 => SpeedClass::Avenue,
        _ => SpeedClass::Street,
    }
}

/// A jittered `nx × ny` grid over `bounds` with `delete_fraction` of the
/// edges removed at random. `nx`/`ny` are clamped to ≥ 2 and the fraction
/// to `[0, 0.9]` (deleting everything would leave nothing to patrol).
pub fn grid_with_deletions(
    bounds: &BoundingBox,
    nx: usize,
    ny: usize,
    delete_fraction: f64,
    seed: u64,
) -> RoadNet {
    let nx = nx.max(2);
    let ny = ny.max(2);
    let delete_fraction = delete_fraction.clamp(0.0, 0.9);
    let mut rng = StdRng::seed_from_u64(seed);

    let step_x = bounds.width() / (nx - 1) as f64;
    let step_y = bounds.height() / (ny - 1) as f64;
    let jitter = 0.18 * step_x.min(step_y);

    let mut builder = RoadGraphBuilder::new();
    for j in 0..ny {
        for i in 0..nx {
            let p = Point::new(
                bounds.min_x + i as f64 * step_x + rng.random_range(-jitter..=jitter),
                bounds.min_y + j as f64 * step_y + rng.random_range(-jitter..=jitter),
            );
            builder.add_node(bounds.clamp(&p));
        }
    }
    for j in 0..ny as u32 {
        for i in 0..nx as u32 {
            let id = j * nx as u32 + i;
            if i + 1 < nx as u32 && rng.random_f64() >= delete_fraction {
                builder.add_edge(id, id + 1, draw_class(&mut rng));
            }
            if j + 1 < ny as u32 && rng.random_f64() >= delete_fraction {
                builder.add_edge(id, id + nx as u32, draw_class(&mut rng));
            }
        }
    }
    restrict_to_largest_component(builder.build())
}

/// Returns `true` when segments `a1‒a2` and `b1‒b2` properly cross
/// (intersect at an interior point of both). Shared endpoints do not
/// count — adjacent road edges always meet at intersections.
fn segments_cross(a1: Point, a2: Point, b1: Point, b2: Point) -> bool {
    const EPS: f64 = 1e-12;
    let shares_endpoint = |p: Point, q: Point| (p.x - q.x).abs() < EPS && (p.y - q.y).abs() < EPS;
    if shares_endpoint(a1, b1)
        || shares_endpoint(a1, b2)
        || shares_endpoint(a2, b1)
        || shares_endpoint(a2, b2)
    {
        return false;
    }
    let cross =
        |o: Point, p: Point, q: Point| (p.x - o.x) * (q.y - o.y) - (p.y - o.y) * (q.x - o.x);
    let d1 = cross(b1, b2, a1);
    let d2 = cross(b1, b2, a2);
    let d3 = cross(a1, a2, b1);
    let d4 = cross(a1, a2, b2);
    ((d1 > EPS && d2 < -EPS) || (d1 < -EPS && d2 > EPS))
        && ((d3 > EPS && d4 < -EPS) || (d3 < -EPS && d4 > EPS))
}

/// `node_count` random intersections joined by k-nearest-neighbour
/// candidate edges, accepted shortest-first when they cross no
/// already-accepted edge. `k` is clamped to ≥ 2 so the graph has a chance
/// to connect.
pub fn random_planar(bounds: &BoundingBox, node_count: usize, k: usize, seed: u64) -> RoadNet {
    let k = k.max(2);
    let mut rng = StdRng::seed_from_u64(seed);

    let mut builder = RoadGraphBuilder::new();
    let mut positions = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        let p = Point::new(
            rng.random_range(bounds.min_x..=bounds.max_x),
            rng.random_range(bounds.min_y..=bounds.max_y),
        );
        positions.push(p);
        builder.add_node(p);
    }
    if node_count >= 2 {
        let tree = KdTree::build(&positions);
        // Unique candidate pairs, shortest first (ties by ids) so greedy
        // acceptance is deterministic and prefers short local roads.
        let mut candidates: Vec<(u32, u32, f64)> = Vec::new();
        for (i, p) in positions.iter().enumerate() {
            for (j, d) in tree.k_nearest(p, k + 1) {
                if j != i {
                    let (a, b) = (i.min(j) as u32, i.max(j) as u32);
                    candidates.push((a, b, d));
                }
            }
        }
        candidates.sort_by(|x, y| x.2.total_cmp(&y.2).then(x.0.cmp(&y.0)).then(x.1.cmp(&y.1)));
        candidates.dedup_by_key(|&mut (a, b, _)| (a, b));

        // Bucket accepted edges by midpoint on a grid whose cell is the
        // longest candidate: two crossing edges have midpoints within one
        // cell of each other, so checking the 3 × 3 neighbourhood suffices.
        let cell = candidates
            .iter()
            .map(|c| c.2)
            .fold(0.0f64, f64::max)
            .max(1e-9);
        let key = |p: Point| ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64);
        let mut buckets: std::collections::HashMap<(i64, i64), Vec<(u32, u32)>> =
            std::collections::HashMap::new();
        for (a, b, _) in candidates {
            let (pa, pb) = (positions[a as usize], positions[b as usize]);
            let mid = Point::new((pa.x + pb.x) / 2.0, (pa.y + pb.y) / 2.0);
            let (cx, cy) = key(mid);
            let mut crosses = false;
            'scan: for dx in -1..=1 {
                for dy in -1..=1 {
                    if let Some(edges) = buckets.get(&(cx + dx, cy + dy)) {
                        for &(u, v) in edges {
                            if segments_cross(pa, pb, positions[u as usize], positions[v as usize])
                            {
                                crosses = true;
                                break 'scan;
                            }
                        }
                    }
                }
            }
            if !crosses {
                builder.add_edge(a, b, draw_class(&mut rng));
                buckets.entry((cx, cy)).or_default().push((a, b));
            }
        }
    }
    restrict_to_largest_component(builder.build())
}

/// Keeps only the largest connected component (ties broken towards the
/// component containing the smallest node id), renumbering nodes in their
/// original order, and reports the restriction.
pub fn restrict_to_largest_component(graph: RoadGraph) -> RoadNet {
    let n = graph.len();
    if n == 0 {
        return RoadNet {
            graph,
            component: ComponentReport {
                total_nodes: 0,
                kept_nodes: 0,
                dropped_nodes: 0,
                component_count: 0,
            },
        };
    }
    // Union-find over the arcs.
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for u in 0..n as u32 {
        for (v, _) in graph.neighbors(u) {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                parent[ru.max(rv) as usize] = ru.min(rv);
            }
        }
    }
    let mut sizes: std::collections::BTreeMap<u32, usize> = Default::default();
    for u in 0..n as u32 {
        *sizes.entry(find(&mut parent, u)).or_insert(0) += 1;
    }
    let component_count = sizes.len();
    // Largest component; BTreeMap iteration makes the tie-break (smallest
    // root) deterministic.
    let (&best_root, &kept_nodes) = sizes
        .iter()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
        .expect("n > 0");

    if kept_nodes == n {
        return RoadNet {
            graph,
            component: ComponentReport {
                total_nodes: n,
                kept_nodes: n,
                dropped_nodes: 0,
                component_count,
            },
        };
    }

    let mut remap = vec![u32::MAX; n];
    let mut builder = RoadGraphBuilder::new();
    for u in 0..n as u32 {
        if find(&mut parent, u) == best_root {
            remap[u as usize] = builder.add_node(graph.position(u));
        }
    }
    for (u, v, class) in graph.edges() {
        let (nu, nv) = (remap[u as usize], remap[v as usize]);
        if nu != u32::MAX && nv != u32::MAX {
            builder.add_edge(nu, nv, class);
        }
    }
    RoadNet {
        graph: builder.build(),
        component: ComponentReport {
            total_nodes: n,
            kept_nodes,
            dropped_nodes: n - kept_nodes,
            component_count,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::dijkstra;

    fn bounds() -> BoundingBox {
        BoundingBox::square(800.0)
    }

    /// The kept graph must be one connected component.
    fn assert_connected(graph: &RoadGraph) {
        if graph.is_empty() {
            return;
        }
        let dist = dijkstra(graph, 0);
        assert!(
            dist.iter().all(|d| d.is_finite()),
            "graph must be connected after restriction"
        );
    }

    #[test]
    fn grid_generator_is_seed_deterministic_and_connected() {
        let a = grid_with_deletions(&bounds(), 10, 10, 0.2, 7);
        let b = grid_with_deletions(&bounds(), 10, 10, 0.2, 7);
        let c = grid_with_deletions(&bounds(), 10, 10, 0.2, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_connected(&a.graph);
        assert_eq!(a.component.kept_nodes, a.graph.len());
        assert_eq!(
            a.component.total_nodes,
            a.component.kept_nodes + a.component.dropped_nodes
        );
        assert!(a.graph.len() <= 100);
        assert!(a.graph.len() > 50, "most of a 10x10 grid survives 20% loss");
    }

    #[test]
    fn zero_deletion_grid_keeps_every_node_and_edge() {
        let net = grid_with_deletions(&bounds(), 5, 4, 0.0, 3);
        assert_eq!(net.graph.len(), 20);
        assert_eq!(net.component.dropped_nodes, 0);
        assert_eq!(net.component.component_count, 1);
        // 4 * (5-1) horizontal + 5 * (4-1) vertical.
        assert_eq!(net.graph.edge_count(), 4 * 4 + 5 * 3);
        // All nodes inside bounds.
        let b = bounds();
        assert!(net.graph.positions().iter().all(|p| b.contains(p)));
    }

    #[test]
    fn heavy_deletions_shrink_to_the_reported_component() {
        let net = grid_with_deletions(&bounds(), 12, 12, 0.55, 11);
        assert_connected(&net.graph);
        assert!(
            net.component.component_count > 1,
            "55% loss fragments a grid"
        );
        assert_eq!(net.graph.len(), net.component.kept_nodes);
        assert!(net.component.dropped_nodes > 0);
    }

    #[test]
    fn planar_generator_is_deterministic_connected_and_crossing_free() {
        let net = random_planar(&bounds(), 120, 4, 5);
        assert_eq!(net, random_planar(&bounds(), 120, 4, 5));
        assert_connected(&net.graph);
        assert!(net.graph.edge_count() >= net.graph.len() - 1);
        // No two accepted edges properly cross.
        let edges: Vec<(Point, Point)> = net
            .graph
            .edges()
            .map(|(u, v, _)| (net.graph.position(u), net.graph.position(v)))
            .collect();
        for i in 0..edges.len() {
            for j in (i + 1)..edges.len() {
                assert!(
                    !segments_cross(edges[i].0, edges[i].1, edges[j].0, edges[j].1),
                    "edges {i} and {j} cross"
                );
            }
        }
    }

    #[test]
    fn degenerate_parameters_are_survivable() {
        let empty = random_planar(&bounds(), 0, 4, 1);
        assert!(empty.graph.is_empty());
        assert_eq!(empty.component.component_count, 0);
        let single = random_planar(&bounds(), 1, 4, 1);
        assert_eq!(single.graph.len(), 1);
        let tiny_grid = grid_with_deletions(&bounds(), 1, 1, 0.0, 1);
        assert_eq!(tiny_grid.graph.len(), 4, "dims clamp to 2x2");
        // Full deletion clamps to 0.9, so something always survives.
        let slashed = grid_with_deletions(&bounds(), 8, 8, 1.0, 2);
        assert!(!slashed.graph.is_empty());
        assert_connected(&slashed.graph);
    }

    #[test]
    fn segments_cross_detects_proper_crossings_only() {
        let p = |x: f64, y: f64| Point::new(x, y);
        assert!(segments_cross(
            p(0.0, 0.0),
            p(10.0, 10.0),
            p(0.0, 10.0),
            p(10.0, 0.0)
        ));
        // Shared endpoint: not a crossing.
        assert!(!segments_cross(
            p(0.0, 0.0),
            p(10.0, 10.0),
            p(0.0, 0.0),
            p(10.0, 0.0)
        ));
        // Parallel disjoint.
        assert!(!segments_cross(
            p(0.0, 0.0),
            p(10.0, 0.0),
            p(0.0, 5.0),
            p(10.0, 5.0)
        ));
        // Touching at an interior point of one segment but an endpoint of
        // the other (a T-junction): treated as non-crossing.
        assert!(!segments_cross(
            p(0.0, 0.0),
            p(10.0, 0.0),
            p(5.0, 0.0),
            p(5.0, 10.0)
        ));
    }
}
