//! # mule-road
//!
//! A deterministic road-network travel metric for the data-mule patrolling
//! stack. Every planner and simulation in the workspace historically
//! measured travel as straight-line Euclidean distance; real mule patrols
//! move on constrained networks. This crate supplies the missing layer:
//!
//! * [`RoadGraph`] — a compact CSR adjacency graph over
//!   [`mule_geom::Point`] nodes with per-edge [`SpeedClass`]es (edge cost =
//!   geometric length × class cost factor, so every edge cost is at least
//!   its straight-line length — the invariant that keeps the Euclidean A*
//!   heuristic admissible).
//! * [`generate`] — seeded generators: a jittered grid with random edge
//!   deletions and a random planar network (k-nearest-neighbour candidate
//!   edges with a crossing filter). Both restrict to the largest connected
//!   component and report what was dropped ([`ComponentReport`]).
//! * [`route`] — Dijkstra and A* shortest paths with deterministic
//!   tie-breaking (`(cost, node)` heap order).
//! * [`Landmarks`] — ALT preprocessing: farthest-point landmark selection
//!   and triangle-inequality lower bounds, so thousand-target
//!   point-to-point queries explore a corridor instead of the whole graph.
//! * [`RoadIndex`] — the queryable bundle (graph + landmarks + a kd-tree
//!   for snapping arbitrary field points to their nearest road node).
//! * [`TravelMetric`] — the pluggable metric the rest of the stack
//!   consumes: `Euclidean` (the default, byte-identical to the historical
//!   behaviour) or `Road` (an [`RoadIndex`] behind an `Arc`).
//!
//! Everything here is a pure deterministic function of its seeds: equal
//! seeds produce equal graphs, routes and distances on every platform (the
//! RNG is the workspace's vendored SplitMix64 shim). See `docs/ROADS.md`
//! for the full contract.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod generate;
pub mod graph;
pub mod index;
pub mod landmarks;
pub mod metric;
pub mod route;

pub use generate::{grid_with_deletions, random_planar, ComponentReport, RoadNet, RoadNetKind};
pub use graph::{RoadGraph, RoadGraphBuilder, SpeedClass};
pub use index::RoadIndex;
pub use landmarks::Landmarks;
pub use metric::TravelMetric;
pub use route::{astar, astar_alt, dijkstra, dijkstra_counted, dijkstra_to, Route};
