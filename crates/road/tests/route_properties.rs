//! Property tests of the road routing stack (satellite of the road-metric
//! PR): on randomly generated connected graphs,
//!
//! * A* (Euclidean heuristic) and ALT A* report exactly the same path
//!   costs as plain Dijkstra;
//! * ALT lower bounds never exceed the true shortest-path distance;
//! * generated graphs are connected after deletions — the generator either
//!   keeps every node or restricts to (and reports) the component used.

use mule_geom::BoundingBox;
use mule_road::{astar, astar_alt, dijkstra, dijkstra_to, Landmarks};
use mule_road::{grid_with_deletions, random_planar, RoadNet};
use proptest::prelude::*;

/// Deterministic query pairs spread over the node range.
fn query_pairs(n: usize, count: usize) -> Vec<(u32, u32)> {
    (0..count)
        .map(|q| {
            let s = (q * 7919) % n;
            let t = (q * 104_729 + n / 2) % n;
            (s as u32, t as u32)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn astar_and_alt_match_dijkstra_costs_on_random_grids(
        seed in 0u64..1_000_000,
        nx in 4usize..10,
        ny in 4usize..10,
        frac in 0.0..0.35f64,
    ) {
        let net = grid_with_deletions(&BoundingBox::square(800.0), nx, ny, frac, seed);
        let g = &net.graph;
        prop_assume!(g.len() >= 2);
        let lm = Landmarks::select(g, 4);
        for (s, t) in query_pairs(g.len(), 12) {
            let d = dijkstra_to(g, s, t);
            let a = astar(g, s, t);
            let alt = astar_alt(g, &lm, s, t);
            // The kept component is connected, so every query resolves.
            let d = d.expect("connected graph");
            let a = a.expect("connected graph");
            let alt = alt.expect("connected graph");
            prop_assert!((d.cost - a.cost).abs() < 1e-9,
                "A* cost {} != Dijkstra cost {} for {}->{}", a.cost, d.cost, s, t);
            prop_assert!((d.cost - alt.cost).abs() < 1e-9,
                "ALT cost {} != Dijkstra cost {} for {}->{}", alt.cost, d.cost, s, t);
            // Paths re-cost to their reported cost (validity of the
            // returned node sequences, not just the scalar).
            for r in [&a, &alt] {
                let mut acc = 0.0;
                for w in r.nodes.windows(2) {
                    let arc = g.neighbors(w[0]).find(|&(v, _)| v == w[1]);
                    prop_assert!(arc.is_some(), "path hop {}->{} not an arc", w[0], w[1]);
                    acc += arc.unwrap().1;
                }
                prop_assert!((acc - r.cost).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn astar_matches_dijkstra_on_random_planar_graphs(
        seed in 0u64..1_000_000,
        nodes in 10usize..60,
    ) {
        let net = random_planar(&BoundingBox::square(800.0), nodes, 3, seed);
        let g = &net.graph;
        prop_assume!(g.len() >= 2);
        let lm = Landmarks::select(g, 3);
        for (s, t) in query_pairs(g.len(), 8) {
            let d = dijkstra_to(g, s, t).expect("connected graph");
            let a = astar(g, s, t).expect("connected graph");
            let alt = astar_alt(g, &lm, s, t).expect("connected graph");
            prop_assert!((d.cost - a.cost).abs() < 1e-9);
            prop_assert!((d.cost - alt.cost).abs() < 1e-9);
        }
    }

    #[test]
    fn alt_lower_bounds_never_exceed_true_distances(
        seed in 0u64..1_000_000,
        nx in 4usize..9,
        ny in 4usize..9,
        frac in 0.0..0.45f64,
        landmark_count in 1usize..6,
    ) {
        let net = grid_with_deletions(&BoundingBox::square(800.0), nx, ny, frac, seed);
        let g = &net.graph;
        prop_assume!(g.len() >= 2);
        let lm = Landmarks::select(g, landmark_count);
        for (s, t) in query_pairs(g.len(), 10) {
            let exact = dijkstra_to(g, s, t).expect("connected graph").cost;
            let bound = lm.lower_bound(s, t);
            prop_assert!(
                bound <= exact + 1e-9,
                "ALT bound {bound} exceeds true distance {exact} for {s}->{t}"
            );
            // The Euclidean bound the A* heuristic adds is admissible too.
            let straight = g.position(s).distance(&g.position(t));
            prop_assert!(straight <= exact + 1e-9);
        }
    }

    #[test]
    fn generated_graphs_are_connected_after_deletions(
        seed in 0u64..1_000_000,
        nx in 3usize..12,
        ny in 3usize..12,
        frac in 0.0..0.6f64,
    ) {
        let check = |net: &RoadNet| -> Result<(), TestCaseError> {
            let g = &net.graph;
            prop_assert_eq!(g.len(), net.component.kept_nodes);
            prop_assert_eq!(
                net.component.total_nodes,
                net.component.kept_nodes + net.component.dropped_nodes
            );
            // Either nothing was dropped, or the restriction reported the
            // component it kept (more than one raw component).
            if net.component.dropped_nodes > 0 {
                prop_assert!(net.component.component_count > 1);
            }
            if !g.is_empty() {
                let dist = dijkstra(g, 0);
                prop_assert!(
                    dist.iter().all(|d| d.is_finite()),
                    "kept component must be fully routable"
                );
            }
            Ok(())
        };
        check(&grid_with_deletions(&BoundingBox::square(800.0), nx, ny, frac, seed))?;
        check(&random_planar(&BoundingBox::square(800.0), nx * ny, 3, seed))?;
    }
}
