//! End-to-end tests of the live-telemetry surface over real TCP: the
//! `GET /debug/*` introspection endpoints, head-based trace sampling with
//! slow/error tail promotion, the `X-Trace-Id` correlation between
//! responses, ring records and structured log lines, and the SLO
//! burn-rate gauges on `/metrics`.

use mule_serve::http::{read_response, write_request, ClientResponse};
use mule_serve::json::{parse, JsonValue};
use mule_serve::{ServerConfig, ServerHandle};
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A keep-alive client connection to the test server.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(server: &ServerHandle) -> Client {
        let stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let writer = stream.try_clone().unwrap();
        Client {
            writer,
            reader: BufReader::new(stream),
        }
    }

    fn request(&mut self, method: &str, path: &str, body: &[u8]) -> ClientResponse {
        write_request(&mut self.writer, method, path, body).expect("write request");
        read_response(&mut self.reader).expect("read response")
    }
}

fn test_server(config: ServerConfig) -> ServerHandle {
    mule_serve::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        idle_timeout: Duration::from_millis(300),
        ..config
    })
    .expect("server start")
}

fn debug_server(config: ServerConfig) -> ServerHandle {
    test_server(ServerConfig {
        debug_endpoints: true,
        ..config
    })
}

fn small_spec_body() -> Vec<u8> {
    br#"{"targets": 8, "mules": 3, "seed": 4}"#.to_vec()
}

#[test]
fn debug_endpoints_404_without_the_flag() {
    let server = test_server(ServerConfig::default());
    let mut client = Client::connect(&server);
    for path in [
        "/debug/traces",
        "/debug/requests",
        "/debug/profile",
        "/debug/alloc",
        "/debug/events",
    ] {
        let response = client.request("GET", path, b"");
        assert_eq!(response.status, 404, "{path} must be gated");
    }
    server.shutdown();
}

#[test]
fn debug_endpoints_expose_valid_json_documents() {
    let server = debug_server(ServerConfig {
        trace_sample_rate: 1.0,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&server);
    for _ in 0..3 {
        assert_eq!(
            client
                .request("POST", "/v1/plan", &small_spec_body())
                .status,
            200
        );
    }

    // /debug/traces is a Chrome trace file: at rate 1.0 every request
    // trace lands on its own labelled track.
    let traces = client.request("GET", "/debug/traces", b"");
    assert_eq!(traces.status, 200);
    let doc = parse(&traces.body_text()).expect("traces parse");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(JsonValue::as_str))
        .collect();
    assert!(names.contains(&"process_name"));
    assert!(names.contains(&"thread_name"), "one track per trace");
    assert!(names.contains(&"request"), "the root request span");

    // /debug/requests records every request (including debug ones).
    let requests = client.request("GET", "/debug/requests?limit=10", b"");
    assert_eq!(requests.status, 200);
    let doc = parse(&requests.body_text()).expect("requests parse");
    assert_eq!(
        doc.get("schema").and_then(JsonValue::as_str),
        Some("debug-requests/v1")
    );
    let rows = doc
        .get("requests")
        .and_then(JsonValue::as_array)
        .expect("requests array");
    assert!(rows.len() >= 3);
    let plan_row = rows
        .iter()
        .find(|r| r.get("path").and_then(JsonValue::as_str) == Some("/v1/plan"))
        .expect("a /v1/plan record");
    assert_eq!(
        plan_row.get("status").and_then(JsonValue::as_usize),
        Some(200)
    );
    assert_eq!(plan_row.get("sampled"), Some(&JsonValue::Bool(true)));
    let trace_id = plan_row
        .get("trace_id")
        .and_then(JsonValue::as_str)
        .expect("trace id");
    assert_eq!(trace_id.len(), 16, "16 hex digits: {trace_id}");
    assert!(trace_id.chars().all(|c| c.is_ascii_hexdigit()));

    // /debug/profile drains the merged per-request profiles.
    let profile = client.request("GET", "/debug/profile", b"");
    assert_eq!(profile.status, 200);
    let doc = parse(&profile.body_text()).expect("profile parse");
    let entries = doc
        .get("entries")
        .and_then(JsonValue::as_array)
        .expect("entries");
    assert!(
        entries
            .iter()
            .any(|e| e.get("name").and_then(JsonValue::as_str) == Some("request")),
        "the root request span is profiled"
    );

    // /debug/alloc: the debug surface arms the counting allocator.
    let alloc = client.request("GET", "/debug/alloc", b"");
    assert_eq!(alloc.status, 200);
    let doc = parse(&alloc.body_text()).expect("alloc parse");
    assert_eq!(doc.get("armed"), Some(&JsonValue::Bool(true)));
    assert!(doc.get("alloc").unwrap().get("alloc_count").is_some());
    assert!(doc.get("rss").unwrap().get("now_kb").is_some());

    // /debug/events is always a valid document, even with no sink
    // installed (then: empty).
    let events = client.request("GET", "/debug/events", b"");
    assert_eq!(events.status, 200);
    let doc = parse(&events.body_text()).expect("events parse");
    assert!(doc.get("events").and_then(JsonValue::as_array).is_some());

    // Malformed queries and unknown endpoints are rejected, not ignored.
    assert_eq!(
        client
            .request("GET", "/debug/requests?limit=abc", b"")
            .status,
        400
    );
    assert_eq!(
        client
            .request("GET", "/debug/requests?class=weird", b"")
            .status,
        400
    );
    assert_eq!(client.request("GET", "/debug/nope", b"").status, 404);
    assert_eq!(
        client.request("POST", "/debug/traces", b"").status,
        405,
        "debug endpoints are read-only"
    );
    server.shutdown();
}

#[test]
fn head_sampling_off_keeps_records_but_drops_traces() {
    let server = debug_server(ServerConfig {
        trace_sample_rate: 0.0,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&server);
    let response = client.request("POST", "/v1/plan", &small_spec_body());
    assert_eq!(response.status, 200);
    let header_id = response.header("x-trace-id").expect("trace id header");

    // The request record is there — with the response's trace id — but
    // it was not sampled, so no trace reached the trace ring.
    let requests = client.request("GET", "/debug/requests", b"");
    let doc = parse(&requests.body_text()).unwrap();
    let rows = doc.get("requests").and_then(JsonValue::as_array).unwrap();
    let plan_row = rows
        .iter()
        .find(|r| r.get("path").and_then(JsonValue::as_str) == Some("/v1/plan"))
        .expect("a /v1/plan record");
    assert_eq!(
        plan_row.get("trace_id").and_then(JsonValue::as_str),
        Some(header_id)
    );
    assert_eq!(plan_row.get("sampled"), Some(&JsonValue::Bool(false)));

    let traces = client.request("GET", "/debug/traces", b"");
    let doc = parse(&traces.body_text()).unwrap();
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .unwrap();
    assert!(
        !events
            .iter()
            .any(|e| e.get("name").and_then(JsonValue::as_str) == Some("thread_name")),
        "no sampled traces at rate 0"
    );
    server.shutdown();
}

/// A cloneable capture sink for the process-global structured log.
#[derive(Clone, Default)]
struct Capture(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for Capture {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn slow_requests_are_tail_promoted_and_correlated_with_the_log() {
    // Threshold 0: every request is "slow", so tail promotion must keep
    // its trace even though head sampling is off.
    let server = debug_server(ServerConfig {
        trace_sample_rate: 0.0,
        slow_request_ms: Some(0.0),
        ..ServerConfig::default()
    });
    let capture = Capture::default();
    mule_obs::log::install_writer(Box::new(capture.clone()), mule_obs::log::Severity::Warn);
    let mut client = Client::connect(&server);
    let response = client.request("POST", "/v1/plan", &small_spec_body());
    assert_eq!(response.status, 200);
    let header_id = response.header("x-trace-id").expect("trace id").to_string();
    mule_obs::log::uninstall();

    // Promoted into the slow class of the request ring …
    let requests = client.request("GET", "/debug/requests?class=slow", b"");
    let doc = parse(&requests.body_text()).unwrap();
    let rows = doc.get("requests").and_then(JsonValue::as_array).unwrap();
    let row = rows
        .iter()
        .find(|r| r.get("trace_id").and_then(JsonValue::as_str) == Some(header_id.as_str()))
        .expect("slow record with the response's trace id");
    assert_eq!(row.get("slow"), Some(&JsonValue::Bool(true)));
    assert_eq!(row.get("sampled"), Some(&JsonValue::Bool(true)));

    // … into the trace ring (tail promotion at head rate 0) …
    let traces = client.request("GET", "/debug/traces", b"");
    assert!(
        traces.body_text().contains(&format!("trace {header_id}")),
        "promoted trace is on its own track"
    );

    // … and into the structured log, as one JSON line carrying the same
    // trace id.
    let logged = String::from_utf8(capture.0.lock().unwrap().clone()).unwrap();
    let line = logged
        .lines()
        .find(|line| line.contains("serve.slow_request") && line.contains(&header_id))
        .unwrap_or_else(|| panic!("no slow-request line for {header_id} in:\n{logged}"));
    let event = parse(line).expect("log line is JSON");
    assert_eq!(
        event.get("severity").and_then(JsonValue::as_str),
        Some("warn")
    );
    assert_eq!(
        event.get("trace_id").and_then(JsonValue::as_str),
        Some(header_id.as_str())
    );
    let fields = event.get("fields").expect("fields object");
    assert_eq!(
        fields.get("path").and_then(JsonValue::as_str),
        Some("/v1/plan")
    );
    assert!(fields
        .get("duration_ms")
        .and_then(JsonValue::as_f64)
        .is_some());
    server.shutdown();
}

#[test]
fn slo_gauges_appear_on_metrics_when_configured() {
    let server = test_server(ServerConfig {
        slo: Some(mule_obs::SloSpec {
            p99_ms: Some(1_000.0),
            availability_pct: Some(99.0),
        }),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&server);
    for _ in 0..3 {
        assert_eq!(
            client
                .request("POST", "/v1/plan", &small_spec_body())
                .status,
            200
        );
    }
    let metrics = client.request("GET", "/metrics", b"").body_text();
    assert!(
        metrics.contains("mule_slo_error_budget_remaining{objective=\"p99_ms\"}"),
        "{metrics}"
    );
    assert!(
        metrics.contains("mule_slo_error_budget_remaining{objective=\"availability\"}"),
        "{metrics}"
    );
    for window in ["1m", "5m", "30m"] {
        assert!(
            metrics.contains(&format!(
                "mule_slo_burn_rate{{objective=\"p99_ms\",window=\"{window}\"}}"
            )),
            "missing burn-rate window {window}:\n{metrics}"
        );
    }
    // Fast, successful traffic burns no budget.
    assert!(
        metrics.contains("mule_slo_error_budget_remaining{objective=\"availability\"} 1"),
        "{metrics}"
    );
    server.shutdown();
}

#[test]
fn untelemetered_server_reports_no_slo_and_keeps_metrics_schema() {
    let server = test_server(ServerConfig::default());
    let mut client = Client::connect(&server);
    assert_eq!(
        client
            .request("POST", "/v1/plan", &small_spec_body())
            .status,
        200
    );
    let metrics = client.request("GET", "/metrics", b"").body_text();
    assert!(
        !metrics.contains("mule_slo_"),
        "no SLO gauges without --slo"
    );

    // The JSON metrics document keeps its schema and now counts the
    // debug route (zero here).
    let json = parse(&client.request("GET", "/metrics.json", b"").body_text()).unwrap();
    assert_eq!(
        json.get("schema").and_then(JsonValue::as_str),
        Some("server-metrics/v1")
    );
    assert_eq!(
        json.get("requests")
            .unwrap()
            .get("debug")
            .and_then(JsonValue::as_usize),
        Some(0)
    );
    server.shutdown();
}
