//! Fault-injection and graceful-degradation tests over real TCP sockets:
//! a panicking single-flight leader never strands its coalesced waiters,
//! compute deadlines answer `504` and count on `/metrics`, the per-route
//! circuit breaker opens / probes / closes, and degraded mode serves the
//! last-good bytes with `X-Cache: stale`.
//!
//! Every test that arms a [`mule_fault`] plan holds `FAULT_LOCK`: the
//! armed plan is process-global, so armed tests and disarmed controls
//! must not overlap (a concurrent visit could steal a `#1`-limited
//! firing).

use mule_serve::http::{read_response, write_request, ClientResponse};
use mule_serve::{plan_response_json, ServerConfig, ServerHandle};
use mule_workload::ScenarioSpec;
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::{Mutex, Once};
use std::time::Duration;

static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Silences the default panic hook for injected-fault panics only, so
/// armed tests don't spray backtraces into the test output.
fn silence_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .is_some_and(|m| m.starts_with(mule_fault::INJECTED_PANIC_PREFIX));
            if !injected {
                previous(info);
            }
        }));
    });
}

/// Disarms the global fault plan on drop, so a failing assertion in one
/// test cannot leave the plan armed for the next.
struct Armed;

impl Armed {
    fn plan(seed: u64, spec: &str) -> Armed {
        silence_injected_panics();
        mule_fault::arm(mule_fault::FaultPlan::parse(seed, spec).expect("fault plan"));
        Armed
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        mule_fault::disarm();
    }
}

fn test_server(config: ServerConfig) -> ServerHandle {
    mule_serve::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        idle_timeout: Duration::from_millis(300),
        ..config
    })
    .expect("server start")
}

fn spec() -> ScenarioSpec {
    ScenarioSpec {
        targets: 9,
        mules: 3,
        seed: 11,
        ..ScenarioSpec::default()
    }
}

fn spec_body() -> Vec<u8> {
    mule_serve::api::spec_to_json(&spec())
        .to_json_string()
        .into_bytes()
}

/// The byte-exact response an un-faulted server must produce for
/// [`spec`], computed offline.
fn expected_bytes() -> Vec<u8> {
    plan_response_json(&spec())
        .expect("offline plan")
        .into_bytes()
}

fn post_plan(server: &ServerHandle, body: &[u8]) -> ClientResponse {
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    write_request(&mut writer, "POST", "/v1/plan", body).expect("write request");
    read_response(&mut reader).expect("read response")
}

#[test]
fn a_panicking_single_flight_leader_does_not_strand_its_waiters() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Exactly one compute panics (`#1`); whichever request leads the
    // single-flight group eats it. Everyone else must still get the
    // byte-exact plan — waiters are woken and one of them recomputes.
    let _armed = Armed::plan(7, "serve.plan=panic#1");
    let server = test_server(ServerConfig::default());

    let responses: Vec<ClientResponse> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| scope.spawn(|| post_plan(&server, &spec_body())))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });

    let failures: Vec<&ClientResponse> = responses.iter().filter(|r| r.status == 500).collect();
    let successes: Vec<&ClientResponse> = responses.iter().filter(|r| r.status == 200).collect();
    assert_eq!(failures.len(), 1, "exactly the leader fails: {responses:?}");
    assert_eq!(successes.len(), 3);
    assert!(
        failures[0].body_text().contains("injected panic"),
        "the 500 names the injected panic: {}",
        failures[0].body_text()
    );
    let expected = expected_bytes();
    for ok in &successes {
        assert_eq!(ok.body, expected, "survivors serve the exact plan bytes");
    }

    // The error was not cached: a fresh request recomputes (the fault's
    // one firing is spent) and the successful bytes are now a cache hit.
    let retry = post_plan(&server, &spec_body());
    assert_eq!(retry.status, 200);
    assert_eq!(retry.body, expected);
    assert_eq!(retry.header("x-cache"), Some("hit"));
    assert_eq!(mule_fault::firings_total(), 1);
    server.shutdown();
}

#[test]
fn a_compute_overrunning_the_deadline_answers_504_and_counts_it() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // The injected 2 s delay dwarfs the 50 ms deadline, so the worker
    // walks away with a 504 while the helper thread finishes unobserved.
    let _armed = Armed::plan(7, "serve.plan=delay:2000#1");
    let server = test_server(ServerConfig {
        deadline: Some(Duration::from_millis(50)),
        ..ServerConfig::default()
    });

    let response = post_plan(&server, &spec_body());
    assert_eq!(response.status, 504);
    assert!(
        response.body_text().contains("deadline"),
        "the 504 explains itself: {}",
        response.body_text()
    );

    let metrics = server.metrics_prometheus();
    assert!(
        metrics.contains("mule_deadline_exceeded_total{stage=\"compute\"} 1"),
        "compute deadline counted on /metrics:\n{metrics}"
    );
    assert!(metrics.contains("mule_fault_injected_total{point=\"serve.plan\",kind=\"delay\"} 1"));
    server.shutdown();
}

#[test]
fn the_breaker_opens_after_consecutive_panics_and_closes_after_a_probe() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Two panics trip the threshold-2 breaker; the third request fails
    // fast without computing. After the cooldown a half-open probe runs
    // the (now fault-exhausted) compute and closes the breaker again.
    let _armed = Armed::plan(7, "serve.plan=panic#2");
    let server = test_server(ServerConfig {
        breaker_threshold: Some(2),
        breaker_cooldown: Duration::from_millis(100),
        ..ServerConfig::default()
    });

    assert_eq!(post_plan(&server, &spec_body()).status, 500);
    assert_eq!(post_plan(&server, &spec_body()).status, 500);

    let rejected = post_plan(&server, &spec_body());
    assert_eq!(rejected.status, 503, "open breaker fails fast");
    assert_eq!(rejected.header("x-breaker"), Some("open"));
    assert!(rejected.header("retry-after").is_some());
    let metrics = server.metrics_prometheus();
    assert!(
        metrics.contains("mule_breaker_state{route=\"plan\"} 1"),
        "{metrics}"
    );
    assert!(metrics.contains("mule_breaker_fast_fail_total{route=\"plan\"} 1"));

    std::thread::sleep(Duration::from_millis(150));
    let probed = post_plan(&server, &spec_body());
    assert_eq!(probed.status, 200, "half-open probe succeeds");
    assert_eq!(probed.body, expected_bytes());

    let metrics = server.metrics_prometheus();
    assert!(
        metrics.contains("mule_breaker_state{route=\"plan\"} 0"),
        "{metrics}"
    );
    assert!(metrics.contains("mule_breaker_transitions_total{route=\"plan\",to=\"open\"} 1"));
    assert!(metrics.contains("mule_breaker_transitions_total{route=\"plan\",to=\"closed\"} 1"));
    server.shutdown();
}

#[test]
fn degraded_mode_serves_the_last_good_bytes_when_the_compute_fails() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let server = test_server(ServerConfig {
        degraded: true,
        ..ServerConfig::default()
    });

    // Prime the last-good store with a clean compute.
    let fresh = post_plan(&server, &spec_body());
    assert_eq!(fresh.status, 200);
    assert_eq!(fresh.header("x-cache"), Some("miss"));

    // Evict the primary entry AND panic the recompute: the only way to
    // answer 200 is the stale store.
    let _armed = Armed::plan(7, "serve.cache=evict#1,serve.plan=panic#1");
    let stale = post_plan(&server, &spec_body());
    assert_eq!(stale.status, 200, "degraded mode masks the failure");
    assert_eq!(stale.header("x-cache"), Some("stale"));
    assert!(stale
        .header("warning")
        .is_some_and(|w| w.contains("stale-on-error")));
    assert_eq!(
        stale.body, fresh.body,
        "stale bytes are the last good bytes"
    );

    let metrics = server.metrics_prometheus();
    assert!(metrics.contains("mule_stale_served_total 1"), "{metrics}");
    server.shutdown();
}

#[test]
fn a_disarmed_server_shows_zero_injected_faults() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let server = test_server(ServerConfig::default());
    let response = post_plan(&server, &spec_body());
    assert_eq!(response.status, 200);
    assert_eq!(response.body, expected_bytes());
    assert_eq!(mule_fault::firings_total(), 0);
    assert!(!server
        .metrics_prometheus()
        .contains("mule_fault_injected_total{"));
    server.shutdown();
}

#[test]
fn fault_counters_agree_between_metrics_json_and_prometheus() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let server = test_server(ServerConfig::default());

    // Fire one delay on the plan compute, then scrape both documents.
    let _armed = Armed::plan(7, "serve.plan=delay:1#1");
    let response = post_plan(&server, &spec_body());
    assert_eq!(response.status, 200);

    let prom = server.metrics_prometheus();
    assert!(
        prom.contains("mule_fault_injected_total{point=\"serve.plan\",kind=\"delay\"} 1"),
        "{prom}"
    );

    // The JSON document carries the same rows under `faults`, so the two
    // expositions can be cross-checked sample for sample.
    let json = server.metrics_json();
    for (point, kind, count) in mule_fault::injection_counts() {
        assert!(json.contains(&format!("\"{point}\"")), "{json}");
        assert!(json.contains(&format!("\"{kind}\": {count}")), "{json}");
    }
    assert!(json.contains("\"faults\""), "{json}");
    server.shutdown();
}
