//! Property tests of the scenario-spec wire format and its canonical
//! hashing: `ScenarioSpec → JSON → ScenarioSpec` is the identity, equal
//! specs hash equal, and unequal specs hash unequal.

use mule_serve::api::{spec_from_body, spec_to_json};
use mule_workload::ScenarioSpec;
use proptest::prelude::*;

/// Characters the planner-name strategy draws from: realistic names plus
/// everything that stresses JSON escaping and canonical-form delimiting.
const NAME_CHARS: &[char] = &[
    'a', 'b', 'z', '0', '9', '-', '_', ' ', ';', '=', ':', ',', '"', '\\', '/', '\n', '\t',
    '\u{1}', 'é', 'λ', '🦀',
];

fn planner_name() -> impl Strategy<Value = String> {
    prop::collection::vec(0..NAME_CHARS.len(), 0..=12)
        .prop_map(|indices| indices.into_iter().map(|i| NAME_CHARS[i]).collect())
}

#[allow(clippy::type_complexity)]
fn spec() -> impl Strategy<Value = ScenarioSpec> {
    (
        // Not 0..=u64::MAX: the rand shim's span arithmetic rejects the
        // full-width range. MAX-1 still exercises seeds far above 2^53.
        (0..500usize, 0..16usize, 0..=u64::MAX - 1, 0..8usize),
        (1..10u32, 0..2usize, planner_name(), 0.0..100_000.0f64),
        0..3usize,
    )
        .prop_map(
            |((targets, mules, seed, vips), (vip_weight, recharge, planner, horizon_s), metric)| {
                ScenarioSpec {
                    targets,
                    mules,
                    seed,
                    vips,
                    vip_weight,
                    recharge: recharge == 1,
                    planner,
                    horizon_s,
                    metric: match metric {
                        0 => mule_workload::MetricSpec::Euclidean,
                        1 => mule_workload::MetricSpec::Road(mule_road::RoadNetKind::Grid),
                        _ => mule_workload::MetricSpec::Road(mule_road::RoadNetKind::Planar),
                    },
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn spec_to_json_to_spec_is_identity(spec in spec()) {
        let compact = spec_to_json(&spec).to_json_string();
        let back = spec_from_body(compact.as_bytes())
            .map_err(|e| TestCaseError::fail(format!("parse failed: {e}")))?;
        prop_assert_eq!(&back, &spec, "compact roundtrip");

        let pretty = spec_to_json(&spec).to_pretty_string();
        let back_pretty = spec_from_body(pretty.as_bytes())
            .map_err(|e| TestCaseError::fail(format!("pretty parse failed: {e}")))?;
        prop_assert_eq!(&back_pretty, &spec, "pretty roundtrip");
    }

    #[test]
    fn equal_specs_hash_equal(spec in spec()) {
        let twin = spec.clone();
        prop_assert_eq!(spec.fingerprint(), twin.fingerprint());
        prop_assert_eq!(spec.canonical_string(), twin.canonical_string());
        // Hashing is stable across the JSON round trip too (the server
        // fingerprints the *parsed* spec).
        let reparsed = spec_from_body(spec_to_json(&spec).to_json_string().as_bytes()).unwrap();
        prop_assert_eq!(reparsed.fingerprint(), spec.fingerprint());
    }

    #[test]
    fn unequal_specs_hash_unequal(a in spec(), b in spec()) {
        prop_assume!(a != b);
        prop_assert_ne!(a.fingerprint(), b.fingerprint());
        prop_assert_ne!(a.canonical_string(), b.canonical_string());
    }

    #[test]
    fn single_field_mutations_change_the_fingerprint(base in spec(), delta in 1..1000u64) {
        let mutated = base.clone().with_seed(base.seed.wrapping_add(delta));
        prop_assert_ne!(base.fingerprint(), mutated.fingerprint());
        let mutated = base.clone().with_targets(base.targets + delta as usize);
        prop_assert_ne!(base.fingerprint(), mutated.fingerprint());
        let mutated = ScenarioSpec { recharge: !base.recharge, ..base.clone() };
        prop_assert_ne!(base.fingerprint(), mutated.fingerprint());
    }
}
