//! End-to-end tests of the daemon over real TCP sockets: routing, the
//! byte-identity contract between cold / cached / offline plans, error
//! mapping, metrics and backpressure.

use mule_serve::http::{read_response, write_request, ClientResponse};
use mule_serve::json::{parse, JsonValue};
use mule_serve::{plan_response_json, ServerConfig, ServerHandle};
use mule_workload::ScenarioSpec;
use std::io::BufReader;
use std::net::TcpStream;
use std::time::Duration;

/// A keep-alive client connection to the test server.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(server: &ServerHandle) -> Client {
        let stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let writer = stream.try_clone().unwrap();
        Client {
            writer,
            reader: BufReader::new(stream),
        }
    }

    fn request(&mut self, method: &str, path: &str, body: &[u8]) -> ClientResponse {
        write_request(&mut self.writer, method, path, body).expect("write request");
        read_response(&mut self.reader).expect("read response")
    }
}

fn test_server(config: ServerConfig) -> ServerHandle {
    mule_serve::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        // Tests shut servers down while keep-alive clients are still
        // connected; a short idle timeout keeps the join fast.
        idle_timeout: Duration::from_millis(300),
        ..config
    })
    .expect("server start")
}

fn small_spec_body() -> Vec<u8> {
    br#"{"targets": 8, "mules": 3, "seed": 4}"#.to_vec()
}

#[test]
fn healthz_answers_ok() {
    let server = test_server(ServerConfig::default());
    let mut client = Client::connect(&server);
    let response = client.request("GET", "/healthz", b"");
    assert_eq!(response.status, 200);
    let doc = parse(&response.body_text()).unwrap();
    assert_eq!(doc.get("status").and_then(JsonValue::as_str), Some("ok"));
    server.shutdown();
}

#[test]
fn cached_plan_is_byte_identical_to_cold_plan_and_to_offline_plan() {
    let server = test_server(ServerConfig::default());
    let mut client = Client::connect(&server);

    let cold = client.request("POST", "/v1/plan", &small_spec_body());
    assert_eq!(cold.status, 200);
    assert_eq!(cold.header("x-cache"), Some("miss"));

    let cached = client.request("POST", "/v1/plan", &small_spec_body());
    assert_eq!(cached.status, 200);
    assert_eq!(cached.header("x-cache"), Some("hit"));

    // The pinned contract: cache hit bytes == cold compute bytes.
    assert_eq!(
        cold.body, cached.body,
        "cached response must be byte-identical"
    );

    // And both equal the offline computation for the same spec (what
    // `patrolctl plan` prints).
    let spec = ScenarioSpec {
        targets: 8,
        mules: 3,
        seed: 4,
        ..ScenarioSpec::default()
    };
    let offline = plan_response_json(&spec).unwrap();
    assert_eq!(cold.body, offline.as_bytes(), "served == offline");

    // Field order in the request body must not change the cache key:
    // a reordered but equal spec is a hit.
    let reordered = client.request(
        "POST",
        "/v1/plan",
        br#"{"seed": 4, "mules": 3, "targets": 8}"#,
    );
    assert_eq!(reordered.header("x-cache"), Some("hit"));
    assert_eq!(reordered.body, cold.body);
    server.shutdown();
}

#[test]
fn plan_responses_carry_the_fingerprint_header() {
    let server = test_server(ServerConfig::default());
    let mut client = Client::connect(&server);
    let response = client.request("POST", "/v1/plan", &small_spec_body());
    let spec = ScenarioSpec {
        targets: 8,
        mules: 3,
        seed: 4,
        ..ScenarioSpec::default()
    };
    assert_eq!(
        response.header("x-fingerprint"),
        Some(format!("{:016x}", spec.fingerprint()).as_str())
    );
    server.shutdown();
}

#[test]
fn error_paths_map_to_the_right_status_codes() {
    let server = test_server(ServerConfig::default());
    let mut client = Client::connect(&server);

    let not_found = client.request("GET", "/nope", b"");
    assert_eq!(not_found.status, 404);

    let wrong_method = client.request("GET", "/v1/plan", b"");
    assert_eq!(wrong_method.status, 405);

    let bad_json = client.request("POST", "/v1/plan", b"{{{");
    assert_eq!(bad_json.status, 400);
    assert!(bad_json.body_text().contains("invalid JSON"));

    let bad_type = client.request("POST", "/v1/plan", br#"{"targets": "many"}"#);
    assert_eq!(bad_type.status, 400);

    let unknown_planner = client.request("POST", "/v1/plan", br#"{"planner": "dijkstra"}"#);
    assert_eq!(unknown_planner.status, 400);
    assert!(unknown_planner.body_text().contains("unknown planner"));

    // A tiny body naming a huge scenario must be rejected before any
    // generation or planning work starts.
    let oversized = client.request("POST", "/v1/plan", br#"{"targets": 4000000000}"#);
    assert_eq!(oversized.status, 400);
    assert!(oversized.body_text().contains("service limit"));

    let unplannable = client.request("POST", "/v1/plan", br#"{"mules": 0}"#);
    assert_eq!(unplannable.status, 422);
    assert!(unplannable.body_text().contains("no data mules"));

    // Errors are not cached: the same bad request recomputes (and the
    // connection stays usable throughout).
    let again = client.request("POST", "/v1/plan", br#"{"mules": 0}"#);
    assert_eq!(again.status, 422);
    let fine = client.request("POST", "/v1/plan", &small_spec_body());
    assert_eq!(fine.status, 200);
    server.shutdown();
}

#[test]
fn simulate_runs_replicas_and_reports_statistics() {
    let server = test_server(ServerConfig {
        sim_workers: Some(1),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&server);
    let body = br#"{"spec": {"targets": 6, "horizon_s": 5000.0}, "replicas": 3}"#;
    let response = client.request("POST", "/v1/simulate", body);
    assert_eq!(response.status, 200);
    let doc = parse(&response.body_text()).unwrap();
    assert_eq!(doc.get("replicas").and_then(JsonValue::as_usize), Some(3));
    let max_interval = doc.get("max_interval_s").unwrap();
    assert!(
        max_interval
            .get("mean")
            .and_then(JsonValue::as_f64)
            .unwrap()
            > 0.0
    );

    let bad = client.request("POST", "/v1/simulate", br#"{"replicas": 0, "spec": {}}"#);
    assert_eq!(bad.status, 400);
    server.shutdown();
}

#[test]
fn backpressure_rejects_connections_beyond_queue_depth_with_retry_after() {
    let server = test_server(ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    });

    // First connection occupies the single admission slot (proved by a
    // completed round trip; it stays open via keep-alive).
    let mut first = Client::connect(&server);
    let ok = first.request("GET", "/healthz", b"");
    assert_eq!(ok.status, 200);

    // The second connection must be rejected at accept time.
    let mut second = Client::connect(&server);
    let rejected = second.request("GET", "/healthz", b"");
    assert_eq!(rejected.status, 503);
    assert_eq!(rejected.header("retry-after"), Some("1"));
    assert!(rejected.body_text().contains("capacity"));

    // Once the first connection closes, its slot frees up.
    drop(first);
    let mut third = loop {
        let mut candidate = Client::connect(&server);
        let response = candidate.request("GET", "/healthz", b"");
        if response.status == 200 {
            break candidate;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    let response = third.request("POST", "/v1/plan", &small_spec_body());
    assert_eq!(response.status, 200);

    // The rejection shows up in /metrics.json.
    let metrics = third.request("GET", "/metrics.json", b"");
    let doc = parse(&metrics.body_text()).unwrap();
    let rejected_count = doc
        .get("responses")
        .and_then(|r| r.get("rejected_503"))
        .and_then(JsonValue::as_u64)
        .unwrap();
    assert!(rejected_count >= 1, "rejections counted: {rejected_count}");
    server.shutdown();
}

#[test]
fn metrics_reflect_requests_latency_and_cache_state() {
    let server = test_server(ServerConfig::default());
    let mut client = Client::connect(&server);
    client.request("GET", "/healthz", b"");
    client.request("POST", "/v1/plan", &small_spec_body()); // miss
    client.request("POST", "/v1/plan", &small_spec_body()); // hit
    client.request("POST", "/v1/plan", br#"{"targets": 9}"#); // miss
    let metrics = client.request("GET", "/metrics.json", b"");
    assert_eq!(metrics.status, 200);
    let doc = parse(&metrics.body_text()).unwrap();

    let requests = doc.get("requests").unwrap();
    assert_eq!(requests.get("healthz").and_then(JsonValue::as_u64), Some(1));
    assert_eq!(requests.get("plan").and_then(JsonValue::as_u64), Some(3));

    let cache = doc.get("cache").unwrap();
    assert_eq!(cache.get("hits").and_then(JsonValue::as_u64), Some(1));
    assert_eq!(cache.get("misses").and_then(JsonValue::as_u64), Some(2));
    let hit_rate = cache.get("hit_rate").and_then(JsonValue::as_f64).unwrap();
    assert!((hit_rate - 1.0 / 3.0).abs() < 1e-9, "hit rate {hit_rate}");

    let latency = doc.get("latency_ms").unwrap();
    assert_eq!(latency.get("count").and_then(JsonValue::as_u64), Some(4));
    assert!(latency.get("p99").and_then(JsonValue::as_f64).unwrap() >= 0.0);
    server.shutdown();
}

/// Pulls the integer value of a Prometheus sample line (exact match on
/// `name{labels}` including braces) out of an exposition document.
fn prom_value(text: &str, series: &str) -> Option<u64> {
    text.lines()
        .find_map(|line| line.strip_prefix(series))
        .and_then(|rest| rest.trim().parse().ok())
}

#[test]
fn metrics_is_prometheus_text_and_span_counters_match_requests() {
    let server = test_server(ServerConfig::default());
    let mut client = Client::connect(&server);
    client.request("GET", "/healthz", b"");
    client.request("POST", "/v1/plan", &small_spec_body()); // miss
    client.request("POST", "/v1/plan", &small_spec_body()); // hit
    let metrics = client.request("GET", "/metrics", b"");
    assert_eq!(metrics.status, 200);
    assert_eq!(
        metrics.header("content-type"),
        Some("text/plain; version=0.0.4; charset=utf-8")
    );
    let text = metrics.body_text();

    assert!(text.contains("# TYPE mule_requests_total counter"));
    assert_eq!(
        prom_value(&text, "mule_requests_total{route=\"healthz\"}"),
        Some(1)
    );
    assert_eq!(
        prom_value(&text, "mule_requests_total{route=\"plan\"}"),
        Some(2)
    );
    assert_eq!(
        prom_value(&text, "mule_cache_events_total{event=\"hit\"}"),
        Some(1)
    );
    assert_eq!(
        prom_value(&text, "mule_cache_events_total{event=\"miss\"}"),
        Some(1)
    );

    // Histogram: +Inf bucket and _count agree, and 3 requests were timed
    // before this scrape.
    assert!(text.contains("# TYPE mule_request_duration_seconds histogram"));
    let inf = prom_value(&text, "mule_request_duration_seconds_bucket{le=\"+Inf\"}").unwrap();
    let count = prom_value(&text, "mule_request_duration_seconds_count").unwrap();
    assert_eq!(inf, count);
    assert_eq!(count, 3);

    // The invariant the CI smoke test scrapes for: exactly one `request`
    // span per handled request (the scrape itself is not yet counted).
    let spans = prom_value(&text, "mule_span_total{span=\"request\"}").unwrap();
    assert_eq!(spans, 3);
    // Plan handling produced child spans, including the planner work on
    // the cache miss.
    assert_eq!(
        prom_value(&text, "mule_span_total{span=\"request.parse\"}"),
        Some(2)
    );
    assert_eq!(
        prom_value(&text, "mule_span_total{span=\"request.plan\"}"),
        Some(1)
    );
    server.shutdown();
}

#[test]
fn every_response_carries_a_distinct_trace_id() {
    let server = test_server(ServerConfig::default());
    let mut client = Client::connect(&server);
    let a = client.request("GET", "/healthz", b"");
    let b = client.request("GET", "/healthz", b"");
    let id_a = a
        .header("x-trace-id")
        .expect("trace id on response")
        .to_string();
    let id_b = b
        .header("x-trace-id")
        .expect("trace id on response")
        .to_string();
    assert_eq!(id_a.len(), 16);
    assert!(id_a.chars().all(|c| c.is_ascii_hexdigit()));
    assert_ne!(id_a, id_b, "trace ids must be per-request");
    server.shutdown();
}

#[test]
fn connection_close_requests_are_honoured() {
    let server = test_server(ServerConfig::default());
    let stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    use std::io::Write;
    writer
        .write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    writer.flush().unwrap();
    let response = read_response(&mut reader).unwrap();
    assert_eq!(response.status, 200);
    // The server must close: the next read hits EOF.
    use std::io::Read;
    let mut buf = [0u8; 1];
    assert_eq!(
        reader.read(&mut buf).unwrap(),
        0,
        "server closed the stream"
    );
    server.shutdown();
}

#[test]
fn shutdown_joins_cleanly_with_open_connections() {
    let server = test_server(ServerConfig::default());
    let mut client = Client::connect(&server);
    let response = client.request("GET", "/healthz", b"");
    assert_eq!(response.status, 200);
    // Shut down while the keep-alive connection is still open; the idle
    // timeout bounds the join.
    let started = std::time::Instant::now();
    server.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "shutdown must not hang on idle connections"
    );
}
