//! The plan cache: a deterministic LRU over response bytes with
//! single-flight coalescing of identical in-flight requests.
//!
//! * **Byte cache.** Values are the final response documents
//!   (`Arc<Vec<u8>>`), not intermediate plan structures, so a hit returns
//!   *exactly* the bytes a cold compute would have produced — the
//!   byte-identity half of the determinism contract is structural, not
//!   aspirational.
//! * **Deterministic LRU.** Eviction follows a recency list ordered only
//!   by the observable request sequence (insertions and hits). No clocks,
//!   no sampling, no hash-order iteration — replaying the same request
//!   sequence against the same capacity always evicts the same keys.
//! * **Single-flight.** When a second request for key `k` arrives while
//!   the first is still computing, it blocks on a condvar instead of
//!   computing again, and receives the *same* `Arc` the first request
//!   stored ([`CacheOutcome::Coalesced`]). Failed computes are not
//!   cached: one waiter is woken to retry, so an error does not poison
//!   the key.
//! * **Last-good retention.** Every successful compute also records its
//!   bytes in a bounded side store that survives LRU eviction and
//!   explicit [`PlanCache::evict`]ion. [`PlanCache::stale_get`] reads it;
//!   the server's `--degraded` stale-on-error mode serves those bytes
//!   (with `X-Cache: stale`) when a fresh compute fails. Because plan
//!   bytes are a pure function of the spec, "stale" bytes are in fact
//!   byte-identical to what a successful compute would have produced.

use std::collections::HashMap;
use std::sync::Arc;
use std::sync::{Condvar, Mutex};

/// How a [`PlanCache::get_or_compute`] call was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The value was already cached.
    Hit,
    /// This call computed the value.
    Miss,
    /// Another in-flight call computed the value; this call waited and
    /// shares its bytes.
    Coalesced,
}

impl CacheOutcome {
    /// Label used in the `X-Cache` response header and reports.
    pub fn label(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Coalesced => "coalesced",
        }
    }
}

enum Slot {
    Ready(Arc<Vec<u8>>),
    InFlight,
}

struct CacheState {
    slots: HashMap<u64, Slot>,
    /// Keys of ready entries, most recently used first. Only ready
    /// entries participate in recency/eviction; in-flight slots cannot be
    /// evicted (their computer will insert them on completion).
    recency: Vec<u64>,
    /// Last good bytes per key, most recently written first — the
    /// stale-on-error store. Bounded by the same capacity as the main
    /// cache but evicted independently, so a key's last good response
    /// outlives its main-cache entry.
    stale: HashMap<u64, Arc<Vec<u8>>>,
    stale_recency: Vec<u64>,
}

/// A bounded byte cache keyed by spec fingerprint. See module docs.
pub struct PlanCache {
    capacity: usize,
    state: Mutex<CacheState>,
    ready: Condvar,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` ready entries.
    /// `capacity == 0` disables caching (every call computes; no
    /// single-flight either, since there is nowhere to publish a result).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            state: Mutex::new(CacheState {
                slots: HashMap::new(),
                recency: Vec::new(),
                stale: HashMap::new(),
                stale_recency: Vec::new(),
            }),
            ready: Condvar::new(),
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of ready (cached) entries.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .expect("cache mutex poisoned")
            .recency
            .len()
    }

    /// Returns `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the cached bytes for `key`, computing (or waiting for a
    /// concurrent compute of) them if absent. `compute` runs outside the
    /// cache lock. On `Err` nothing is cached and one coalesced waiter
    /// (if any) is woken to retry with its own `compute`.
    pub fn get_or_compute<E>(
        &self,
        key: u64,
        compute: impl FnOnce() -> Result<Vec<u8>, E>,
    ) -> Result<(Arc<Vec<u8>>, CacheOutcome), E> {
        if self.capacity == 0 {
            return compute().map(|bytes| (Arc::new(bytes), CacheOutcome::Miss));
        }

        let mut waited = false;
        let mut state = self.state.lock().expect("cache mutex poisoned");
        loop {
            match state.slots.get(&key) {
                Some(Slot::Ready(bytes)) => {
                    let bytes = Arc::clone(bytes);
                    touch(&mut state.recency, key);
                    let outcome = if waited {
                        CacheOutcome::Coalesced
                    } else {
                        CacheOutcome::Hit
                    };
                    return Ok((bytes, outcome));
                }
                Some(Slot::InFlight) => {
                    waited = true;
                    state = self.ready.wait(state).expect("cache mutex poisoned");
                }
                None => break,
            }
        }
        // We are the computer for this key.
        state.slots.insert(key, Slot::InFlight);
        drop(state);

        // An InFlight marker must never outlive its computer, or waiters
        // would block forever — clean up even if `compute` panics.
        let guard = InFlightGuard { cache: self, key };
        let result = compute();
        std::mem::forget(guard);

        let mut state = self.state.lock().expect("cache mutex poisoned");
        match result {
            Ok(bytes) => {
                let bytes = Arc::new(bytes);
                state.slots.insert(key, Slot::Ready(Arc::clone(&bytes)));
                touch(&mut state.recency, key);
                while state.recency.len() > self.capacity {
                    let evicted = state.recency.pop().expect("non-empty recency");
                    state.slots.remove(&evicted);
                }
                state.stale.insert(key, Arc::clone(&bytes));
                touch(&mut state.stale_recency, key);
                while state.stale_recency.len() > self.capacity {
                    let evicted = state.stale_recency.pop().expect("non-empty stale recency");
                    state.stale.remove(&evicted);
                }
                drop(state);
                self.ready.notify_all();
                Ok((bytes, CacheOutcome::Miss))
            }
            Err(e) => {
                state.slots.remove(&key);
                drop(state);
                self.ready.notify_all();
                Err(e)
            }
        }
    }

    /// The last good bytes recorded for `key`, if any — the stale-on-error
    /// read path. Does not touch recency (stale reads are exceptional and
    /// must not keep a failing key's entry warm forever).
    pub fn stale_get(&self, key: u64) -> Option<Arc<Vec<u8>>> {
        let state = self.state.lock().expect("cache mutex poisoned");
        state.stale.get(&key).map(Arc::clone)
    }

    /// Drops the ready entry for `key` (if any), forcing the next lookup
    /// to recompute. In-flight markers and the last-good store are left
    /// alone. Used by fault injection (`serve.cache` evict faults) and
    /// exercised by the chaos suite.
    pub fn evict(&self, key: u64) {
        let mut state = self.state.lock().expect("cache mutex poisoned");
        if matches!(state.slots.get(&key), Some(Slot::Ready(_))) {
            state.slots.remove(&key);
            state.recency.retain(|&k| k != key);
        }
    }
}

/// Removes the in-flight marker if the computing call unwinds.
struct InFlightGuard<'a> {
    cache: &'a PlanCache,
    key: u64,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        let mut state = self.cache.state.lock().expect("cache mutex poisoned");
        state.slots.remove(&self.key);
        drop(state);
        self.cache.ready.notify_all();
    }
}

/// Moves `key` to the front of the recency list (inserting it if new).
fn touch(recency: &mut Vec<u64>, key: u64) {
    if let Some(pos) = recency.iter().position(|&k| k == key) {
        recency.remove(pos);
    }
    recency.insert(0, key);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;
    use std::time::Duration;

    fn ok_bytes(s: &str) -> Result<Vec<u8>, String> {
        Ok(s.as_bytes().to_vec())
    }

    #[test]
    fn miss_then_hit_returns_identical_bytes() {
        let cache = PlanCache::new(4);
        let (a, o1) = cache.get_or_compute(1, || ok_bytes("plan")).unwrap();
        assert_eq!(o1, CacheOutcome::Miss);
        let (b, o2) = cache
            .get_or_compute(1, || -> Result<Vec<u8>, String> {
                panic!("must not recompute")
            })
            .unwrap();
        assert_eq!(o2, CacheOutcome::Hit);
        assert!(Arc::ptr_eq(&a, &b), "hit shares the stored allocation");
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn lru_eviction_is_deterministic_and_touch_refreshes() {
        let cache = PlanCache::new(2);
        cache.get_or_compute(1, || ok_bytes("a")).unwrap();
        cache.get_or_compute(2, || ok_bytes("b")).unwrap();
        // Touch 1 so 2 becomes the least recently used …
        cache.get_or_compute(1, || ok_bytes("!")).unwrap();
        // … then insert 3: 2 must be evicted, 1 retained.
        cache.get_or_compute(3, || ok_bytes("c")).unwrap();
        assert_eq!(cache.len(), 2);
        let recomputed = AtomicUsize::new(0);
        let (_, o) = cache
            .get_or_compute(1, || {
                recomputed.fetch_add(1, Ordering::SeqCst);
                ok_bytes("a2")
            })
            .unwrap();
        assert_eq!(o, CacheOutcome::Hit, "1 survived the eviction");
        assert_eq!(recomputed.load(Ordering::SeqCst), 0);
        let (_, o) = cache
            .get_or_compute(2, || {
                recomputed.fetch_add(1, Ordering::SeqCst);
                ok_bytes("b2")
            })
            .unwrap();
        assert_eq!(o, CacheOutcome::Miss, "2 was evicted");
        assert_eq!(recomputed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn zero_capacity_always_computes() {
        let cache = PlanCache::new(0);
        let count = AtomicUsize::new(0);
        for _ in 0..3 {
            let (_, o) = cache
                .get_or_compute(7, || {
                    count.fetch_add(1, Ordering::SeqCst);
                    ok_bytes("x")
                })
                .unwrap();
            assert_eq!(o, CacheOutcome::Miss);
        }
        assert_eq!(count.load(Ordering::SeqCst), 3);
        assert_eq!(cache.capacity(), 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_identical_requests_compute_once_and_coalesce() {
        let cache = PlanCache::new(4);
        let computes = AtomicUsize::new(0);
        let threads = 8;
        let barrier = Barrier::new(threads);
        let results: Vec<(Arc<Vec<u8>>, CacheOutcome)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        cache
                            .get_or_compute(42, || {
                                computes.fetch_add(1, Ordering::SeqCst);
                                // Long enough that the other threads land
                                // in the in-flight wait path.
                                std::thread::sleep(Duration::from_millis(50));
                                ok_bytes("expensive plan")
                            })
                            .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        assert_eq!(
            computes.load(Ordering::SeqCst),
            1,
            "single-flight: exactly one compute"
        );
        let misses = results
            .iter()
            .filter(|(_, o)| *o == CacheOutcome::Miss)
            .count();
        assert_eq!(misses, 1);
        for (bytes, outcome) in &results {
            assert_eq!(bytes.as_slice(), b"expensive plan");
            assert_ne!(*outcome, CacheOutcome::Hit, "nobody raced past the compute");
            assert!(
                Arc::ptr_eq(bytes, &results[0].0),
                "all callers share one allocation"
            );
        }
    }

    #[test]
    fn failed_computes_are_not_cached_and_waiters_retry() {
        let cache = PlanCache::new(4);
        let err: Result<(Arc<Vec<u8>>, CacheOutcome), String> =
            cache.get_or_compute(9, || Err("planner exploded".to_string()));
        assert_eq!(err.unwrap_err(), "planner exploded");
        // The error was not cached; the next call computes fresh.
        let (bytes, o) = cache.get_or_compute(9, || ok_bytes("fine now")).unwrap();
        assert_eq!(o, CacheOutcome::Miss);
        assert_eq!(bytes.as_slice(), b"fine now");
    }

    #[test]
    fn waiters_survive_a_failing_computer() {
        let cache = PlanCache::new(4);
        let barrier = Barrier::new(2);
        let (a, b) = std::thread::scope(|scope| {
            let first = scope.spawn(|| {
                barrier.wait();
                cache.get_or_compute(5, || {
                    std::thread::sleep(Duration::from_millis(50));
                    Err::<Vec<u8>, String>("boom".to_string())
                })
            });
            let second = scope.spawn(|| {
                barrier.wait();
                // Arrive second (while the failing compute sleeps).
                std::thread::sleep(Duration::from_millis(10));
                cache.get_or_compute(5, || ok_bytes("recovered"))
            });
            (first.join().unwrap(), second.join().unwrap())
        });
        assert!(a.is_err());
        let (bytes, _) = b.unwrap();
        assert_eq!(bytes.as_slice(), b"recovered");
    }

    #[test]
    fn a_panicking_compute_does_not_wedge_the_key() {
        let cache = PlanCache::new(4);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ =
                cache.get_or_compute(3, || -> Result<Vec<u8>, String> { panic!("compute bug") });
        }));
        assert!(panicked.is_err());
        // The in-flight marker was cleaned up; a fresh call computes.
        let (bytes, o) = cache.get_or_compute(3, || ok_bytes("ok")).unwrap();
        assert_eq!(o, CacheOutcome::Miss);
        assert_eq!(bytes.as_slice(), b"ok");
    }

    #[test]
    fn stale_store_retains_last_good_bytes_past_eviction() {
        let cache = PlanCache::new(2);
        cache.get_or_compute(1, || ok_bytes("one")).unwrap();
        cache.get_or_compute(2, || ok_bytes("two")).unwrap();
        cache.get_or_compute(3, || ok_bytes("three")).unwrap();
        // Key 1 fell off the main LRU …
        let (_, o) = cache.get_or_compute(1, || ok_bytes("one'")).unwrap();
        assert_eq!(o, CacheOutcome::Miss);
        // … but the stale store (same capacity, independent LRU) also
        // rolled: at capacity 2, only the two most recently written keys
        // keep last-good bytes.
        assert!(cache.stale_get(3).is_some());
        assert!(cache.stale_get(1).is_some(), "rewritten above");
        assert_eq!(cache.stale_get(2), None, "oldest stale entry rolled off");
    }

    #[test]
    fn explicit_evict_forces_recompute_but_keeps_stale_bytes() {
        let cache = PlanCache::new(4);
        cache.get_or_compute(7, || ok_bytes("good")).unwrap();
        cache.evict(7);
        assert_eq!(cache.len(), 0);
        let stale = cache
            .stale_get(7)
            .expect("last good bytes survive eviction");
        assert_eq!(stale.as_slice(), b"good");
        // A failing recompute leaves the stale bytes in place …
        let err: Result<(Arc<Vec<u8>>, CacheOutcome), String> =
            cache.get_or_compute(7, || Err("planner broke".into()));
        assert!(err.is_err());
        assert_eq!(cache.stale_get(7).unwrap().as_slice(), b"good");
        // … and a succeeding one refreshes them.
        cache.get_or_compute(7, || ok_bytes("fresh")).unwrap();
        assert_eq!(cache.stale_get(7).unwrap().as_slice(), b"fresh");
    }

    #[test]
    fn evicting_unknown_or_inflight_keys_is_harmless() {
        let cache = PlanCache::new(2);
        cache.evict(99); // no entry: no-op
        let barrier = Barrier::new(2);
        std::thread::scope(|scope| {
            let computer = scope.spawn(|| {
                barrier.wait();
                cache.get_or_compute(5, || {
                    std::thread::sleep(Duration::from_millis(40));
                    ok_bytes("slow")
                })
            });
            barrier.wait();
            std::thread::sleep(Duration::from_millis(10));
            // Evicting mid-flight must not remove the in-flight marker.
            cache.evict(5);
            computer.join().unwrap().unwrap();
        });
        let (_, o) = cache.get_or_compute(5, || ok_bytes("no")).unwrap();
        assert_eq!(o, CacheOutcome::Hit, "in-flight compute still landed");
    }

    #[test]
    fn zero_capacity_has_no_stale_store() {
        let cache = PlanCache::new(0);
        cache.get_or_compute(1, || ok_bytes("x")).unwrap();
        assert_eq!(cache.stale_get(1), None);
    }

    #[test]
    fn distinct_keys_do_not_interact() {
        let cache = PlanCache::new(8);
        for k in 0..8u64 {
            let (bytes, o) = cache
                .get_or_compute(k, || ok_bytes(&format!("v{k}")))
                .unwrap();
            assert_eq!(o, CacheOutcome::Miss);
            assert_eq!(bytes.as_slice(), format!("v{k}").as_bytes());
        }
        assert_eq!(cache.len(), 8);
        for k in 0..8u64 {
            let (_, o) = cache.get_or_compute(k, || ok_bytes("no")).unwrap();
            assert_eq!(o, CacheOutcome::Hit);
        }
    }
}
