//! # mule-serve
//!
//! Planning-as-a-service: the CHB/WTCTP planning pipeline behind a
//! dependency-free HTTP/1.1 daemon, with a deterministic plan cache,
//! request coalescing, explicit backpressure and a load generator.
//!
//! Every prior layer of this workspace runs as a one-shot process; this
//! crate is the serving dimension of the ROADMAP's north star. The
//! layers, bottom-up:
//!
//! * [`json`] — a small JSON value (parse + serialise; the vendored
//!   `serde` shim is a no-op, so the wire format lives here). Objects
//!   preserve insertion order, which makes serialisation deterministic.
//! * [`api`] — request/response documents. [`api::plan_response_json`]
//!   is a pure function of the [`mule_workload::ScenarioSpec`]; equal
//!   specs produce byte-identical documents.
//! * [`cache`] — a deterministic LRU over response **bytes**, keyed by
//!   the spec's canonical-form fingerprint, with single-flight
//!   coalescing: concurrent identical requests compute once and share
//!   the result — plus a last-good side store backing stale-on-error.
//! * [`http`] — minimal HTTP/1.1 framing with hard size limits.
//! * [`breaker`] — per-route circuit breakers: K consecutive compute
//!   panics/timeouts open a route (fast 503) until a half-open probe
//!   succeeds.
//! * [`server`] — the daemon: bounded admission (`503` + `Retry-After`
//!   beyond `queue_depth`), connection handlers on a long-lived
//!   [`mule_par::TaskPool`], `/healthz`, `/metrics`, `/v1/plan` and
//!   `/v1/simulate`.
//! * [`loadgen`] — the benchmarking client: N requests over M keep-alive
//!   connections, merged latency histograms, client-observed hit rate,
//!   the tracked `BENCH_server.json`.
//!
//! `patrolctl serve` and `patrolctl loadgen` drive the two ends;
//! `docs/SERVER.md` is the API reference and ops guide,
//! `docs/RELIABILITY.md` covers fault injection and graceful
//! degradation (deadlines, breakers, stale-on-error).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod api;
pub mod breaker;
pub mod cache;
pub mod http;
pub mod json;
pub mod loadgen;
pub mod server;

pub use api::{plan_response_json, ApiError};
pub use breaker::{BreakerSnapshot, BreakerState, CircuitBreaker};
pub use cache::{CacheOutcome, PlanCache};
pub use json::{JsonError, JsonValue};
pub use loadgen::{run_loadgen, LoadReport, LoadgenParams};
pub use server::{start, ServerConfig, ServerHandle};
