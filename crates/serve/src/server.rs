//! The daemon: a `TcpListener` accept loop feeding a bounded set of
//! connection handlers on a long-lived `mule-par` [`TaskPool`].
//!
//! ## Request flow
//!
//! 1. The accept thread admits a connection if fewer than
//!    `queue_depth` connections are currently admitted; otherwise it
//!    answers `503 Service Unavailable` with `Retry-After` immediately
//!    and closes — **backpressure is explicit and cheap**, not a growing
//!    queue.
//! 2. Admitted connections are handed to the worker pool. A worker owns
//!    the connection for its lifetime (keep-alive requests run
//!    back-to-back on one worker), bounded by the idle read timeout.
//! 3. `/v1/plan` bodies are parsed into a `ScenarioSpec`, fingerprinted,
//!    and served through the [`PlanCache`] — hit, coalesced or computed,
//!    the bytes are identical (see `docs/DETERMINISM.md`). The `X-Cache`
//!    response header reports which path served the request.
//!
//! ## Graceful degradation
//!
//! Three opt-in mechanisms keep the daemon answering well-formed
//! responses when computes misbehave (see `docs/RELIABILITY.md`):
//!
//! * **Deadlines** ([`ServerConfig::deadline`]): bounds both the total
//!   header+body read time of a request (closing the slow-loris hole a
//!   per-read idle timeout leaves open) and the compute time of
//!   `/v1/plan` / `/v1/simulate`; exceeding either answers `504`.
//! * **Circuit breakers** ([`ServerConfig::breaker_threshold`]): after K
//!   consecutive compute panics/timeouts a route fails fast with `503`
//!   until a half-open probe succeeds (see [`crate::breaker`]).
//! * **Stale-on-error** ([`ServerConfig::degraded`]): when a plan
//!   compute fails and the cache still holds last-good bytes for the
//!   fingerprint, they are served with `X-Cache: stale` and a `Warning`
//!   header instead of the 5xx.
//!
//! Compute panics are caught at the request level in all cases, so a
//! panicking planner produces a well-formed 500 (or a stale 200) instead
//! of a dropped connection. The `mule-fault` points in this file
//! (`serve.plan`, `serve.cache`, `serve.conn.read`, `serve.conn.write`)
//! exist to prove exactly that under `patrolctl chaos`.
//!
//! ## Shutdown
//!
//! [`ServerHandle::shutdown`] (also run on drop) flips the shutdown flag,
//! pokes the listener with a loopback connection to unblock `accept`,
//! and drops the pool — which joins every worker after the in-flight
//! connections wind down (the idle timeout bounds how long an idle
//! keep-alive peer can delay this).

use crate::api;
use crate::breaker::{BreakerSnapshot, CircuitBreaker};
use crate::cache::{CacheOutcome, PlanCache};
use crate::http::{read_request, HttpError, Request, Response};
use mule_metrics::LatencyHistogram;
use mule_obs::FlatProfile;
use mule_par::TaskPool;
use std::io::{BufReader, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Configuration of a [`start`]ed server.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Plan-cache capacity (entries); 0 disables caching.
    pub cache_capacity: usize,
    /// Maximum concurrently admitted connections; beyond it new
    /// connections get `503` + `Retry-After`.
    pub queue_depth: usize,
    /// Worker override for `/v1/simulate` replication sweeps (`None` =
    /// `mule_par::resolve_workers` default).
    pub sim_workers: Option<usize>,
    /// How long a worker waits for the next request on an idle keep-alive
    /// connection before closing it.
    pub idle_timeout: Duration,
    /// Opt-in slow-request log: requests taking at least this many
    /// milliseconds are logged to stderr with their trace id and a
    /// per-span self-time breakdown. `None` (the default) logs nothing.
    pub slow_request_ms: Option<f64>,
    /// Opt-in per-request deadline (`patrolctl serve --deadline-ms`). It
    /// bounds (a) the total time a peer may take to deliver one request's
    /// header + body once its first byte arrived — the per-read
    /// `idle_timeout` alone lets a slow-loris peer trickle one byte per
    /// timeout forever — and (b) the compute time of a plan/simulate
    /// request, which is moved onto a helper thread so the worker can
    /// answer `504 Gateway Timeout` while an overrunning compute finishes
    /// in the background. `None` (the default) disables both.
    pub deadline: Option<Duration>,
    /// Opt-in per-route circuit breaker (`patrolctl serve --breaker K`):
    /// after this many consecutive compute panics/timeouts the route
    /// fails fast with `503` until a half-open probe succeeds. `None`
    /// disables breaking.
    pub breaker_threshold: Option<usize>,
    /// How long an open breaker waits before admitting a half-open probe.
    pub breaker_cooldown: Duration,
    /// Stale-on-error mode (`patrolctl serve --degraded`): serve last
    /// good cached bytes (`X-Cache: stale` + `Warning`) when a plan
    /// compute fails, instead of the 5xx.
    pub degraded: bool,
    /// Expose the read-only `GET /debug/*` introspection endpoints
    /// (`patrolctl serve --debug-endpoints`) and record the telemetry
    /// rings backing them: recent sampled traces, recent request records
    /// and the since-last-scrape profile.
    pub debug_endpoints: bool,
    /// Head-based trace sampling rate in `[0, 1]` for the recent-traces
    /// ring (`--trace-sample`). Keep/drop is a pure function of the
    /// request's trace token (see [`mule_obs::sample_keep`]); slow and
    /// 5xx requests are tail-promoted into the ring regardless.
    pub trace_sample_rate: f64,
    /// Rolling-window SLO objectives (`--slo "p99_ms=1.0,availability=99.9"`);
    /// `None` disables burn-rate tracking and the `mule_slo_*` gauges.
    pub slo: Option<mule_obs::SloSpec>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 4,
            cache_capacity: 128,
            queue_depth: 64,
            sim_workers: None,
            idle_timeout: Duration::from_secs(5),
            slow_request_ms: None,
            deadline: None,
            breaker_threshold: None,
            breaker_cooldown: Duration::from_secs(1),
            degraded: false,
            debug_endpoints: false,
            trace_sample_rate: 0.01,
            slo: None,
        }
    }
}

/// The value of the `Retry-After` header on 503 responses, seconds.
pub const RETRY_AFTER_S: u32 = 1;

/// Request counters, latency histogram and cache statistics, exposed as
/// the `/metrics` document.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    inner: Mutex<MetricsInner>,
}

#[derive(Debug, Default)]
struct MetricsInner {
    healthz: u64,
    metrics: u64,
    plan: u64,
    simulate: u64,
    debug: u64,
    other: u64,
    ok_2xx: u64,
    client_err_4xx: u64,
    server_err_5xx: u64,
    rejected_503: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_coalesced: u64,
    /// Requests whose header+body read overran the deadline (504 before
    /// any request was parsed).
    deadline_read: u64,
    /// Computes cut off by the deadline (504 after admission).
    deadline_compute: u64,
    /// Failed computes answered from the last-good store (`X-Cache:
    /// stale`).
    stale_served: u64,
    latency: LatencyHistogram,
    /// Per-request span profiles merged under the same lock as the route
    /// counters, so `mule_span_total{span="request"}` always equals the
    /// summed per-route request counters at scrape time.
    spans: FlatProfile,
}

/// Which endpoint a request hit, for the per-route counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Route {
    Healthz,
    Metrics,
    Plan,
    Simulate,
    Debug,
    Other,
}

impl ServerMetrics {
    /// Locks the counters, recovering from poisoning: a handler that
    /// panicked mid-request leaves plain integers behind, and losing every
    /// later scrape to a cascading panic would turn one bad request into a
    /// dead `/metrics` endpoint.
    fn lock(&self) -> MutexGuard<'_, MetricsInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records one handled request together with its span profile.
    fn observe(
        &self,
        route: Route,
        status: u16,
        elapsed: Duration,
        cache: Option<CacheOutcome>,
        profile: &FlatProfile,
    ) {
        let mut inner = self.lock();
        match route {
            Route::Healthz => inner.healthz += 1,
            Route::Metrics => inner.metrics += 1,
            Route::Plan => inner.plan += 1,
            Route::Simulate => inner.simulate += 1,
            Route::Debug => inner.debug += 1,
            Route::Other => inner.other += 1,
        }
        match status {
            200..=299 => inner.ok_2xx += 1,
            400..=499 => inner.client_err_4xx += 1,
            _ => inner.server_err_5xx += 1,
        }
        match cache {
            Some(CacheOutcome::Hit) => inner.cache_hits += 1,
            Some(CacheOutcome::Miss) => inner.cache_misses += 1,
            Some(CacheOutcome::Coalesced) => inner.cache_coalesced += 1,
            None => {}
        }
        inner.latency.record_duration(elapsed);
        inner.spans.merge(profile);
    }

    /// Records one connection rejected by backpressure (no request was
    /// read, so nothing else is counted — rejections carry no trace).
    fn observe_rejected(&self) {
        self.lock().rejected_503 += 1;
    }

    /// Records one request whose header+body read overran the deadline.
    fn observe_deadline_read(&self) {
        self.lock().deadline_read += 1;
    }

    /// Records one compute cut off by the deadline.
    fn observe_deadline_compute(&self) {
        self.lock().deadline_compute += 1;
    }

    /// Records one stale-on-error serve.
    fn observe_stale_served(&self) {
        self.lock().stale_served += 1;
    }

    /// Renders the `/metrics` document. Cache hit rate counts coalesced
    /// requests as served-from-cache: they did not recompute.
    pub fn to_json(&self) -> String {
        self.to_json_with(&[], &[])
    }

    /// [`ServerMetrics::to_json`] extended with per-route breaker
    /// snapshots and the armed fault plan's firing counters (the server
    /// passes its live breakers and `mule_fault::injection_counts()`;
    /// `&[]` omits the sections' rows). Carrying the fault rows here
    /// keeps `/metrics.json` in lockstep with the Prometheus
    /// `mule_fault_injected_total{point,kind}` family.
    pub fn to_json_with(
        &self,
        breakers: &[(&str, BreakerSnapshot)],
        faults: &[(String, &'static str, u64)],
    ) -> String {
        use crate::json::JsonValue;
        let inner = self.lock();
        let total =
            inner.healthz + inner.metrics + inner.plan + inner.simulate + inner.debug + inner.other;
        let cache_total = inner.cache_hits + inner.cache_misses + inner.cache_coalesced;
        let hit_rate = if cache_total == 0 {
            0.0
        } else {
            (inner.cache_hits + inner.cache_coalesced) as f64 / cache_total as f64
        };
        // Group the sorted (point, kind, count) rows into point → kind →
        // count, mirroring the Prometheus label pair.
        let mut fault_rows: Vec<(&str, JsonValue)> = Vec::new();
        for (point, kind, count) in faults {
            match fault_rows.iter_mut().find(|(p, _)| *p == point.as_str()) {
                Some((_, JsonValue::Object(kinds))) => {
                    kinds.push((kind.to_string(), (*count).into()));
                }
                _ => fault_rows.push((
                    point.as_str(),
                    JsonValue::object(vec![(kind, (*count).into())]),
                )),
            }
        }
        let doc = JsonValue::object(vec![
            ("schema", "server-metrics/v1".into()),
            (
                "requests",
                JsonValue::object(vec![
                    ("total", total.into()),
                    ("healthz", inner.healthz.into()),
                    ("metrics", inner.metrics.into()),
                    ("plan", inner.plan.into()),
                    ("simulate", inner.simulate.into()),
                    ("debug", inner.debug.into()),
                    ("other", inner.other.into()),
                ]),
            ),
            (
                "responses",
                JsonValue::object(vec![
                    ("ok_2xx", inner.ok_2xx.into()),
                    ("client_error_4xx", inner.client_err_4xx.into()),
                    ("server_error_5xx", inner.server_err_5xx.into()),
                    ("rejected_503", inner.rejected_503.into()),
                ]),
            ),
            (
                "latency_ms",
                JsonValue::object(vec![
                    ("count", inner.latency.count().into()),
                    ("mean", (inner.latency.mean_s() * 1e3).into()),
                    ("p50", (inner.latency.p50() * 1e3).into()),
                    ("p95", (inner.latency.p95() * 1e3).into()),
                    ("p99", (inner.latency.p99() * 1e3).into()),
                    ("max", (inner.latency.max_s() * 1e3).into()),
                ]),
            ),
            (
                "cache",
                JsonValue::object(vec![
                    ("hits", inner.cache_hits.into()),
                    ("misses", inner.cache_misses.into()),
                    ("coalesced", inner.cache_coalesced.into()),
                    ("hit_rate", hit_rate.into()),
                ]),
            ),
            (
                "degraded",
                JsonValue::object(vec![
                    ("deadline_read_504", inner.deadline_read.into()),
                    ("deadline_compute_504", inner.deadline_compute.into()),
                    ("stale_served", inner.stale_served.into()),
                ]),
            ),
            (
                "breakers",
                JsonValue::object(
                    breakers
                        .iter()
                        .map(|(route, snap)| {
                            (
                                *route,
                                JsonValue::object(vec![
                                    ("state", snap.state.label().into()),
                                    (
                                        "consecutive_failures",
                                        (snap.consecutive_failures as u64).into(),
                                    ),
                                    ("opened", snap.opened.into()),
                                    ("half_opened", snap.half_opened.into()),
                                    ("closed", snap.closed.into()),
                                    ("fast_failed", snap.fast_failed.into()),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            ("faults", JsonValue::object(fault_rows)),
        ]);
        doc.to_pretty_string()
    }

    /// Renders the Prometheus text exposition (format 0.0.4) served at
    /// `/metrics`: per-route request counters, status-class counters,
    /// cache outcomes, the latency histogram (`_bucket`/`_sum`/`_count`)
    /// and per-span-name totals from the merged request profiles.
    pub fn to_prometheus(&self) -> String {
        self.to_prometheus_with(&[], &[], None)
    }

    /// [`ServerMetrics::to_prometheus`] extended with per-route breaker
    /// gauges/counters, the `mule_fault_injected_total{point,kind}` rows
    /// of the armed fault plan (both empty on a plain scrape), and —
    /// when SLO tracking is configured — the `mule_slo_*` burn-rate
    /// gauges rendered from the tracker's current report.
    pub fn to_prometheus_with(
        &self,
        breakers: &[(&str, BreakerSnapshot)],
        faults: &[(String, &'static str, u64)],
        slo: Option<&mule_obs::SloReport>,
    ) -> String {
        use mule_obs::prom::PromText;
        let inner = self.lock();
        let mut p = PromText::new();

        p.family(
            "mule_requests_total",
            "counter",
            "Requests handled, by route.",
        );
        for (route, count) in [
            ("healthz", inner.healthz),
            ("metrics", inner.metrics),
            ("plan", inner.plan),
            ("simulate", inner.simulate),
            ("debug", inner.debug),
            ("other", inner.other),
        ] {
            p.sample_u64("mule_requests_total", &[("route", route)], count);
        }

        p.family(
            "mule_responses_total",
            "counter",
            "Responses sent, by status class.",
        );
        for (class, count) in [
            ("2xx", inner.ok_2xx),
            ("4xx", inner.client_err_4xx),
            ("5xx", inner.server_err_5xx),
        ] {
            p.sample_u64("mule_responses_total", &[("class", class)], count);
        }

        p.family(
            "mule_rejected_total",
            "counter",
            "Connections rejected by backpressure (503 + Retry-After).",
        );
        p.sample_u64("mule_rejected_total", &[], inner.rejected_503);

        p.family(
            "mule_cache_events_total",
            "counter",
            "Plan-cache lookups, by outcome.",
        );
        for (event, count) in [
            ("hit", inner.cache_hits),
            ("miss", inner.cache_misses),
            ("coalesced", inner.cache_coalesced),
        ] {
            p.sample_u64("mule_cache_events_total", &[("event", event)], count);
        }

        p.family(
            "mule_deadline_exceeded_total",
            "counter",
            "Requests answered 504, by which deadline was overrun.",
        );
        for (stage, count) in [
            ("read", inner.deadline_read),
            ("compute", inner.deadline_compute),
        ] {
            p.sample_u64("mule_deadline_exceeded_total", &[("stage", stage)], count);
        }

        p.family(
            "mule_stale_served_total",
            "counter",
            "Failed computes answered from the last-good store (X-Cache: stale).",
        );
        p.sample_u64("mule_stale_served_total", &[], inner.stale_served);

        p.family(
            "mule_breaker_state",
            "gauge",
            "Circuit breaker state, by route (0 closed, 1 open, 2 half-open).",
        );
        for (route, snap) in breakers {
            p.sample_u64("mule_breaker_state", &[("route", route)], snap.state.code());
        }
        p.family(
            "mule_breaker_transitions_total",
            "counter",
            "Circuit breaker transitions, by route and target state.",
        );
        for (route, snap) in breakers {
            for (to, count) in [
                ("open", snap.opened),
                ("half_open", snap.half_opened),
                ("closed", snap.closed),
            ] {
                p.sample_u64(
                    "mule_breaker_transitions_total",
                    &[("route", route), ("to", to)],
                    count,
                );
            }
        }
        p.family(
            "mule_breaker_fast_fail_total",
            "counter",
            "Requests rejected fast (503) by an open breaker, by route.",
        );
        for (route, snap) in breakers {
            p.sample_u64(
                "mule_breaker_fast_fail_total",
                &[("route", route)],
                snap.fast_failed,
            );
        }

        p.family(
            "mule_fault_injected_total",
            "counter",
            "Faults fired by the armed mule-fault plan, by point and kind.",
        );
        for (point, kind, count) in faults {
            p.sample_u64(
                "mule_fault_injected_total",
                &[("point", point), ("kind", kind)],
                *count,
            );
        }

        if let Some(report) = slo {
            p.family(
                "mule_slo_error_budget_remaining",
                "gauge",
                "Fraction of the error budget left over the longest SLO window, by objective.",
            );
            for obj in &report.objectives {
                p.sample_f64(
                    "mule_slo_error_budget_remaining",
                    &[("objective", obj.objective)],
                    obj.budget_remaining,
                );
            }
            p.family(
                "mule_slo_burn_rate",
                "gauge",
                "Error-budget burn rate (1.0 = spending exactly the budget), by objective and window.",
            );
            for obj in &report.objectives {
                for &(window, rate) in &obj.windows {
                    p.sample_f64(
                        "mule_slo_burn_rate",
                        &[("objective", obj.objective), ("window", window)],
                        rate,
                    );
                }
            }
        }

        // Process RSS gauges are sampled from /proc at scrape time;
        // both rows are omitted on platforms without procfs.
        if let Some(kb) = mule_obs::alloc::rss_now_kb() {
            p.family(
                "mule_process_resident_bytes",
                "gauge",
                "Resident set size of the serving process, sampled at scrape.",
            );
            p.sample_u64("mule_process_resident_bytes", &[], kb * 1024);
        }
        if let Some(kb) = mule_obs::alloc::rss_peak_kb() {
            p.family(
                "mule_process_peak_resident_bytes",
                "gauge",
                "Peak resident set size of the serving process (VmHWM).",
            );
            p.sample_u64("mule_process_peak_resident_bytes", &[], kb * 1024);
        }

        // Log-linear histogram buckets carry inclusive upper bounds in
        // nanoseconds; Prometheus `le` is inclusive too, so converting
        // the bound to seconds preserves the semantics exactly.
        let mut cumulative = 0u64;
        let buckets: Vec<(f64, u64)> = inner
            .latency
            .nonzero_buckets()
            .into_iter()
            .map(|(upper_ns, count)| {
                cumulative += count;
                (upper_ns as f64 / 1e9, cumulative)
            })
            .collect();
        p.histogram(
            "mule_request_duration_seconds",
            "Request handling latency.",
            &buckets,
            inner.latency.sum_s(),
            inner.latency.count(),
        );

        p.family(
            "mule_span_total",
            "counter",
            "Spans recorded across all request traces, by span name.",
        );
        for e in &inner.spans.entries {
            p.sample_u64("mule_span_total", &[("span", &e.name)], e.count);
        }
        p.family(
            "mule_span_seconds_total",
            "counter",
            "Total wall-clock seconds spent in spans (children included), by span name.",
        );
        for e in &inner.spans.entries {
            p.sample_f64(
                "mule_span_seconds_total",
                &[("span", &e.name)],
                e.total_ns as f64 / 1e9,
            );
        }
        p.finish()
    }
}

/// One handled request's record in the `/debug/requests` ring.
#[derive(Debug, Clone)]
struct RequestRecord {
    trace_id: String,
    method: String,
    path: String,
    status: u16,
    duration_ms: f64,
    /// Cache outcome label (`hit` / `miss` / `coalesced`), when the
    /// request went through the plan cache.
    cache: Option<&'static str>,
    /// Root-span allocation tally (zero while the counting allocator is
    /// disarmed).
    allocs: u64,
    alloc_bytes: u64,
    /// Whether the trace landed in the recent-traces ring (head-sampled
    /// or tail-promoted).
    sampled: bool,
    slow: bool,
}

/// The in-process stores behind the `/debug/*` endpoints, recorded only
/// when [`ServerConfig::debug_endpoints`] is on. Ring pushes are
/// lock-light (one atomic + one slot mutex) and never block the request
/// path on a reader.
struct Telemetry {
    /// Recent sampled traces, `(trace id, trace)`.
    traces: mule_obs::Ring<(String, mule_obs::Trace)>,
    /// Recent request records.
    requests: mule_obs::Ring<RequestRecord>,
    /// Span profile merged since the last `/debug/profile` scrape (the
    /// scrape takes it, so consecutive scrapes report disjoint windows).
    profile: Mutex<FlatProfile>,
}

/// Capacity of the recent-traces ring.
const TRACE_RING_CAPACITY: usize = 64;
/// Capacity of the recent-requests ring.
const REQUEST_RING_CAPACITY: usize = 512;

struct Shared {
    cache: PlanCache,
    metrics: ServerMetrics,
    admitted: AtomicUsize,
    shutdown: AtomicBool,
    /// Monotonic request sequence feeding [`trace_id`].
    trace_seq: AtomicU64,
    /// Per-route circuit breakers (disabled unless
    /// [`ServerConfig::breaker_threshold`] is set).
    breaker_plan: CircuitBreaker,
    breaker_simulate: CircuitBreaker,
    /// Server start; SLO buckets are stamped in seconds since here.
    epoch: Instant,
    /// Burn-rate tracker, present iff [`ServerConfig::slo`] is set.
    slo: Option<mule_obs::SloTracker>,
    /// Debug-endpoint stores, present iff
    /// [`ServerConfig::debug_endpoints`] is on.
    telemetry: Option<Telemetry>,
    config: ServerConfig,
}

impl Shared {
    fn breaker_rows(&self) -> Vec<(&'static str, BreakerSnapshot)> {
        vec![
            ("plan", self.breaker_plan.snapshot()),
            ("simulate", self.breaker_simulate.snapshot()),
        ]
    }

    fn slo_report(&self) -> Option<mule_obs::SloReport> {
        self.slo
            .as_ref()
            .map(|tracker| tracker.report(self.epoch.elapsed().as_secs()))
    }

    fn render_prometheus(&self) -> String {
        self.metrics.to_prometheus_with(
            &self.breaker_rows(),
            &mule_fault::injection_counts(),
            self.slo_report().as_ref(),
        )
    }

    fn render_json(&self) -> String {
        self.metrics
            .to_json_with(&self.breaker_rows(), &mule_fault::injection_counts())
    }
}

/// The 64-bit trace token for the `seq`-th request; rendered as 16 hex
/// digits it is the `X-Trace-Id` header value. The splitmix64 finaliser
/// turns sequential numbers into well-mixed tokens while staying a pure
/// function of admission order — which is also what the head-based
/// sampler draws on, so sampling decisions replay identically for a
/// given admission order.
fn trace_token(seq: u64) -> u64 {
    let mut z = seq.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A running server. Dropping the handle shuts the server down and joins
/// every thread it started.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    /// Dropped before the accept thread is joined; its own drop joins the
    /// connection workers.
    pool: Option<TaskPool>,
    /// True while this handle holds one arm on the counting allocator
    /// (slow-request logging wants per-request allocation figures);
    /// released exactly once at shutdown.
    alloc_armed: bool,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ServerHandle {
    /// The actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The current `/metrics.json` document (for embedding servers).
    pub fn metrics_json(&self) -> String {
        self.shared.render_json()
    }

    /// The current Prometheus text exposition (the `/metrics` document).
    pub fn metrics_prometheus(&self) -> String {
        self.shared.render_prometheus()
    }

    /// Stops accepting, drains the in-flight connections and joins every
    /// thread. Called automatically on drop.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        if std::mem::take(&mut self.alloc_armed) {
            mule_obs::alloc::disarm();
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway loopback connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        // Dropping the pool joins the connection workers after they
        // finish their queued connections.
        self.pool.take();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// Binds the listener and starts the accept loop and worker pool.
pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let breaker_threshold = config.breaker_threshold.unwrap_or(0);
    // Slow-request logging and `/debug/alloc` report per-request
    // allocation figures, which only exist while the counting allocator
    // is armed. The arm is a counter, so holding one here composes with
    // scoped arms elsewhere.
    let alloc_armed = config.slow_request_ms.is_some() || config.debug_endpoints;
    if alloc_armed {
        mule_obs::alloc::arm();
    }
    let shared = Arc::new(Shared {
        cache: PlanCache::new(config.cache_capacity),
        metrics: ServerMetrics::default(),
        admitted: AtomicUsize::new(0),
        shutdown: AtomicBool::new(false),
        trace_seq: AtomicU64::new(0),
        breaker_plan: CircuitBreaker::named("plan", breaker_threshold, config.breaker_cooldown),
        breaker_simulate: CircuitBreaker::named(
            "simulate",
            breaker_threshold,
            config.breaker_cooldown,
        ),
        epoch: Instant::now(),
        slo: config.slo.clone().map(mule_obs::SloTracker::new),
        telemetry: config.debug_endpoints.then(|| Telemetry {
            traces: mule_obs::Ring::new(TRACE_RING_CAPACITY),
            requests: mule_obs::Ring::new(REQUEST_RING_CAPACITY),
            profile: Mutex::new(FlatProfile::default()),
        }),
        config: config.clone(),
    });
    let pool = TaskPool::new(config.workers);

    let accept_shared = Arc::clone(&shared);
    // Admitted connections travel from the accept thread to the pool
    // workers over a channel. When the accept thread exits it drops the
    // sender, the workers' `recv` fails, and their jobs finish — which is
    // what lets the pool's join-on-drop shutdown terminate.
    let (conn_tx, conn_rx) = std::sync::mpsc::channel::<TcpStream>();
    let accept_thread = std::thread::spawn(move || {
        accept_loop(&listener, &accept_shared, conn_tx);
    });

    // One long-lived job per worker, each pulling connections off the
    // shared queue; `queue_depth` (checked at accept time) bounds how
    // many connections wait here.
    let conn_rx = ConnReceiver {
        rx: Arc::new(Mutex::new(conn_rx)),
    };
    for _ in 0..config.workers {
        let shared = Arc::clone(&shared);
        let rx = ConnReceiver::clone_handle(&conn_rx);
        pool.spawn(move || {
            while let Some(stream) = rx.recv() {
                handle_connection(stream, &shared);
                shared.admitted.fetch_sub(1, Ordering::SeqCst);
            }
        });
    }

    Ok(ServerHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
        pool: Some(pool),
        alloc_armed,
    })
}

/// `mpsc::Receiver` is single-consumer; wrap it in a mutex so every pool
/// worker can pull connections from one queue.
struct ConnReceiver {
    rx: Arc<Mutex<std::sync::mpsc::Receiver<TcpStream>>>,
}

impl ConnReceiver {
    fn clone_handle(rx: &ConnReceiver) -> ConnReceiver {
        ConnReceiver {
            rx: Arc::clone(&rx.rx),
        }
    }

    fn recv(&self) -> Option<TcpStream> {
        // Recover from poisoning: one worker panicking while holding the
        // receiver must not strand the queued connections of the others.
        self.rx
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .recv()
            .ok()
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Shared,
    conn_tx: std::sync::mpsc::Sender<TcpStream>,
) {
    loop {
        let (mut stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Backpressure: admit up to `queue_depth` concurrent connections,
        // reject the rest immediately. The counter is incremented here —
        // in the single accept thread — so admission decisions are
        // sequential and deterministic for a given arrival order.
        let admitted = shared.admitted.load(Ordering::SeqCst);
        if admitted >= shared.config.queue_depth {
            shared.metrics.observe_rejected();
            let response = Response::error(503, "server at capacity, retry later")
                .with_header("Retry-After", RETRY_AFTER_S.to_string());
            let _ = response.write_to(&mut stream, false);
            continue;
        }
        shared.admitted.fetch_add(1, Ordering::SeqCst);
        if conn_tx.send(stream).is_err() {
            return; // workers are gone: shutting down
        }
    }
}

/// A [`TcpStream`] reader enforcing two timescales: the per-read idle
/// timeout (how long a keep-alive peer may stay silent between requests)
/// and, when a deadline is configured, a **total** budget for delivering
/// one request's header + body, armed at its first byte. The per-read
/// timeout alone leaves the classic slow-loris hole — a peer trickling
/// one byte per timeout holds a worker forever; the total budget closes
/// it.
struct TimedStream {
    stream: TcpStream,
    idle: Duration,
    read_deadline: Option<Duration>,
    /// Set at the first byte of a request, cleared between requests.
    request_started: Option<Instant>,
    /// Set when a read failed because the total budget ran out (vs. the
    /// peer merely idling), so the connection handler can answer 504.
    deadline_hit: bool,
    /// Last timeout passed to `set_read_timeout`, to skip the syscall
    /// when unchanged (the common case: no deadline configured).
    last_timeout: Option<Duration>,
}

impl TimedStream {
    fn new(stream: TcpStream, idle: Duration, read_deadline: Option<Duration>) -> Self {
        TimedStream {
            stream,
            idle,
            read_deadline,
            request_started: None,
            deadline_hit: false,
            last_timeout: None,
        }
    }

    /// Re-opens the timing window between requests: the next read waits
    /// under the idle timeout alone until a first byte arrives.
    fn begin_request_window(&mut self) {
        self.request_started = None;
        self.deadline_hit = false;
    }

    fn set_timeout(&mut self, timeout: Duration) -> std::io::Result<()> {
        let timeout = timeout.max(Duration::from_millis(1));
        if self.last_timeout != Some(timeout) {
            self.stream.set_read_timeout(Some(timeout))?;
            self.last_timeout = Some(timeout);
        }
        Ok(())
    }
}

impl Read for TimedStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let timeout = match (self.read_deadline, self.request_started) {
            (Some(total), Some(started)) => {
                let elapsed = started.elapsed();
                if elapsed >= total {
                    self.deadline_hit = true;
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "request read deadline exceeded",
                    ));
                }
                (total - elapsed).min(self.idle)
            }
            _ => self.idle,
        };
        self.set_timeout(timeout)?;
        match self.stream.read(buf) {
            Ok(n) => {
                if n > 0 && self.read_deadline.is_some() && self.request_started.is_none() {
                    self.request_started = Some(Instant::now());
                }
                Ok(n)
            }
            Err(e) => {
                // A per-read timeout surfacing exactly as the total budget
                // runs out is a deadline hit too.
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                ) {
                    if let (Some(total), Some(started)) = (self.read_deadline, self.request_started)
                    {
                        if started.elapsed() >= total {
                            self.deadline_hit = true;
                        }
                    }
                }
                Err(e)
            }
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(TimedStream::new(
        stream,
        shared.config.idle_timeout,
        shared.config.deadline,
    ));
    loop {
        reader.get_mut().begin_request_window();
        if mule_fault::io_error("serve.conn.read").is_some() {
            return; // injected transport failure: drop the connection
        }
        match read_request(&mut reader) {
            Ok(None) => return, // clean close between requests
            Ok(Some(request)) => {
                let keep_alive = request.keep_alive();
                let started = Instant::now();
                let seq = shared.trace_seq.fetch_add(1, Ordering::Relaxed);
                // Every request runs under its own captured trace with a
                // root `request` span, so the merged profile counts one
                // `request` span per handled request — the invariant the
                // CI smoke test checks against the route counters.
                let ((route, cache, response), trace) = mule_obs::capture(|| {
                    let _root = mule_obs::span("request");
                    route_request(&request, shared)
                });
                let elapsed = started.elapsed();
                let profile = FlatProfile::of(&trace);
                shared
                    .metrics
                    .observe(route, response.status, elapsed, cache, &profile);
                let id = observe_telemetry(
                    shared, seq, &request, &response, elapsed, cache, &profile, trace,
                );
                let response = response.with_header("X-Trace-Id", id);
                if mule_fault::io_error("serve.conn.write").is_some() {
                    return; // injected transport failure: drop before writing
                }
                if response.write_to(&mut writer, keep_alive).is_err() {
                    return;
                }
                if !keep_alive || shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(HttpError::Io(_)) if reader.get_ref().deadline_hit => {
                // The peer failed to deliver header+body within the
                // deadline (slow-loris or a stalled upload): answer 504
                // and close. No request was parsed, so — like
                // backpressure 503s — this is counted outside the
                // per-route counters.
                shared.metrics.observe_deadline_read();
                let _ = Response::error(504, "request read deadline exceeded")
                    .write_to(&mut writer, false);
                return;
            }
            Err(HttpError::Io(_)) | Err(HttpError::Closed) => return, // timeout / peer went away
            Err(e) => {
                let status = match e {
                    HttpError::TooLarge("request head") => 431,
                    HttpError::TooLarge(_) => 413,
                    HttpError::LengthRequired => 411,
                    _ => 400,
                };
                let _ = Response::error(status, &e.to_string()).write_to(&mut writer, false);
                return;
            }
        }
    }
}

/// Post-response telemetry for one handled request: SLO bucket, trace
/// sampling + tail promotion into the debug rings, the structured access
/// and slow-request log events. Returns the request's trace id.
///
/// The head-sampling decision is [`mule_obs::sample_keep`] on the trace
/// *token* — a pure function of admission order — so the set of sampled
/// traces replays identically for a given arrival order. Slow and 5xx
/// requests are promoted into the ring regardless of the draw.
#[allow(clippy::too_many_arguments)]
fn observe_telemetry(
    shared: &Arc<Shared>,
    seq: u64,
    request: &Request,
    response: &Response,
    elapsed: Duration,
    cache: Option<CacheOutcome>,
    profile: &FlatProfile,
    trace: mule_obs::Trace,
) -> String {
    use mule_obs::log::{self, LogEvent, Severity};
    let token = trace_token(seq);
    let id = format!("{token:016x}");
    let elapsed_ms = elapsed.as_secs_f64() * 1e3;
    let is_error = response.status >= 500;
    let slow = shared
        .config
        .slow_request_ms
        .is_some_and(|threshold_ms| elapsed_ms >= threshold_ms);
    if let Some(slo) = &shared.slo {
        slo.record(shared.epoch.elapsed().as_secs(), elapsed_ms, is_error);
    }
    if let Some(telemetry) = &shared.telemetry {
        let sampled =
            slow || is_error || mule_obs::sample_keep(token, shared.config.trace_sample_rate);
        if sampled {
            telemetry.traces.push((id.clone(), trace));
        }
        let request_span = profile.get("request");
        telemetry.requests.push(RequestRecord {
            trace_id: id.clone(),
            method: request.method.clone(),
            path: request.path.clone(),
            status: response.status,
            duration_ms: elapsed_ms,
            cache: cache.map(|outcome| outcome.label()),
            allocs: request_span.map_or(0, |e| e.allocs),
            alloc_bytes: request_span.map_or(0, |e| e.alloc_bytes),
            sampled,
            slow,
        });
        telemetry
            .profile
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .merge(profile);
    }
    if slow && log::enabled_at(Severity::Warn) {
        log::emit(
            LogEvent::new(Severity::Warn, "serve.slow_request")
                .trace(id.as_str())
                .field("method", request.method.as_str())
                .field("path", request.path.as_str())
                .field("status", u64::from(response.status))
                .field("duration_ms", elapsed_ms)
                .field("breakdown", slow_breakdown(profile)),
        );
    }
    if log::enabled_at(Severity::Debug) {
        let mut event = LogEvent::new(Severity::Debug, "serve.request")
            .trace(id.as_str())
            .field("method", request.method.as_str())
            .field("path", request.path.as_str())
            .field("status", u64::from(response.status))
            .field("duration_ms", elapsed_ms);
        if let Some(outcome) = cache {
            event = event.field("cache", outcome.label());
        }
        log::emit(event);
    }
    id
}

/// The top self-time spans of a slow request, for the slow-request log
/// event's `breakdown` field. When the counting allocator is armed (it
/// is whenever slow-request logging is on), the root `request` span's
/// allocation tally rides along as `allocs=N alloc_bytes=B`.
fn slow_breakdown(profile: &FlatProfile) -> String {
    let mut out = String::new();
    for entry in profile
        .entries
        .iter()
        .filter(|e| e.name != "request")
        .take(3)
    {
        out.push_str(&format!(
            " {}={:.1}ms",
            entry.name,
            entry.self_ns as f64 / 1e6
        ));
    }
    if let Some(request) = profile.entries.iter().find(|e| e.name == "request") {
        if request.allocs > 0 {
            out.push_str(&format!(
                " allocs={} alloc_bytes={}",
                request.allocs, request.alloc_bytes
            ));
        }
    }
    out
}

fn route_request(
    request: &Request,
    shared: &Arc<Shared>,
) -> (Route, Option<CacheOutcome>, Response) {
    // Split the query string off before matching, so `/debug/requests?limit=5`
    // routes like `/debug/requests`.
    let (path, query) = match request.path.split_once('?') {
        Some((path, query)) => (path, Some(query)),
        None => (request.path.as_str(), None),
    };
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => {
            let doc = crate::json::JsonValue::object(vec![
                ("status", "ok".into()),
                ("service", "mule-serve".into()),
            ]);
            (
                Route::Healthz,
                None,
                Response::json(200, doc.to_pretty_string()),
            )
        }
        ("GET", "/metrics") => (
            Route::Metrics,
            None,
            Response::text(
                200,
                mule_obs::prom::CONTENT_TYPE,
                shared.render_prometheus(),
            ),
        ),
        ("GET", "/metrics.json") => (
            Route::Metrics,
            None,
            Response::json(200, shared.render_json()),
        ),
        ("POST", "/v1/plan") => {
            let (cache, response) = handle_plan(&request.body, shared);
            (Route::Plan, cache, response)
        }
        ("POST", "/v1/simulate") => (
            Route::Simulate,
            None,
            handle_simulate(&request.body, shared),
        ),
        ("GET", p) if p.starts_with("/debug/") && shared.config.debug_endpoints => {
            (Route::Debug, None, handle_debug(p, query, shared))
        }
        (_, p) if p.starts_with("/debug/") && shared.config.debug_endpoints => (
            Route::Other,
            None,
            Response::error(405, "method not allowed for this path"),
        ),
        (_, "/healthz" | "/metrics" | "/metrics.json" | "/v1/plan" | "/v1/simulate") => (
            Route::Other,
            None,
            Response::error(405, "method not allowed for this path"),
        ),
        _ => (
            Route::Other,
            None,
            Response::error(404, &format!("no such endpoint: {}", request.path)),
        ),
    }
}

/// One `key=value` from a query string. No URL-decoding: the debug
/// parameters are plain identifiers and digits.
fn query_param<'a>(query: Option<&'a str>, key: &str) -> Option<&'a str> {
    query?
        .split('&')
        .find_map(|pair| match pair.split_once('=') {
            Some((k, v)) if k == key => Some(v),
            _ => None,
        })
}

/// Parses an optional `limit=N` query parameter, or answers 400.
fn parse_limit(query: Option<&str>, default: usize) -> Result<usize, Response> {
    match query_param(query, "limit") {
        None => Ok(default),
        Some(value) => value
            .parse::<usize>()
            .map_err(|_| Response::error(400, "limit must be a non-negative integer")),
    }
}

/// The read-only `GET /debug/*` introspection endpoints (behind
/// `--debug-endpoints`): recent sampled traces as one Chrome trace file,
/// the request-record ring, the since-last-scrape profile, an
/// allocator-and-RSS snapshot, and the recent structured-log events. All
/// render from the in-process rings — safe to curl on a live server.
fn handle_debug(path: &str, query: Option<&str>, shared: &Arc<Shared>) -> Response {
    use crate::json::JsonValue;
    let Some(telemetry) = &shared.telemetry else {
        return Response::error(404, "debug endpoints are disabled");
    };
    match path {
        "/debug/traces" => {
            let snapshot = telemetry.traces.snapshot();
            let labels: Vec<String> = snapshot
                .iter()
                .map(|(_, (id, _))| format!("trace {id}"))
                .collect();
            let json = mule_obs::chrome_traces_json(
                labels
                    .iter()
                    .map(String::as_str)
                    .zip(snapshot.iter().map(|(_, (_, trace))| trace)),
            );
            Response::json(200, json)
        }
        "/debug/requests" => {
            let limit = match parse_limit(query, 50) {
                Ok(limit) => limit,
                Err(response) => return response,
            };
            let snapshot = telemetry.requests.snapshot();
            let filtered: Vec<&RequestRecord> = match query_param(query, "class") {
                None => snapshot.iter().map(|(_, record)| record).collect(),
                Some("slow") => snapshot
                    .iter()
                    .map(|(_, record)| record)
                    .filter(|record| record.slow)
                    .collect(),
                Some("error") => snapshot
                    .iter()
                    .map(|(_, record)| record)
                    .filter(|record| record.status >= 500)
                    .collect(),
                Some(other) => {
                    return Response::error(
                        400,
                        &format!("unknown request class `{other}` (expected slow or error)"),
                    )
                }
            };
            let skip = filtered.len().saturating_sub(limit);
            let rows: Vec<JsonValue> = filtered[skip..]
                .iter()
                .map(|record| {
                    JsonValue::object(vec![
                        ("trace_id", record.trace_id.as_str().into()),
                        ("method", record.method.as_str().into()),
                        ("path", record.path.as_str().into()),
                        ("status", u64::from(record.status).into()),
                        ("duration_ms", record.duration_ms.into()),
                        (
                            "cache",
                            record.cache.map_or(JsonValue::Null, JsonValue::from),
                        ),
                        ("allocs", record.allocs.into()),
                        ("alloc_bytes", record.alloc_bytes.into()),
                        ("sampled", record.sampled.into()),
                        ("slow", record.slow.into()),
                    ])
                })
                .collect();
            let doc = JsonValue::object(vec![
                ("schema", "debug-requests/v1".into()),
                ("capacity", telemetry.requests.capacity().into()),
                ("recorded", telemetry.requests.pushed().into()),
                ("requests", JsonValue::Array(rows)),
            ]);
            Response::json(200, doc.to_pretty_string())
        }
        "/debug/profile" => {
            // The scrape *takes* the merged profile, so consecutive
            // scrapes report disjoint windows (Prometheus-style deltas).
            let profile = std::mem::take(
                &mut *telemetry
                    .profile
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner),
            );
            let entries: Vec<JsonValue> = profile
                .entries
                .iter()
                .map(|e| {
                    JsonValue::object(vec![
                        ("name", e.name.as_str().into()),
                        ("count", e.count.into()),
                        ("total_ns", e.total_ns.into()),
                        ("self_ns", e.self_ns.into()),
                        ("max_ns", e.max_ns.into()),
                        ("allocs", e.allocs.into()),
                        ("alloc_bytes", e.alloc_bytes.into()),
                        ("peak_live_bytes", e.peak_live.into()),
                    ])
                })
                .collect();
            let doc = JsonValue::object(vec![
                ("schema", "debug-profile/v1".into()),
                ("entries", JsonValue::Array(entries)),
                ("table", profile.to_table().into()),
            ]);
            Response::json(200, doc.to_pretty_string())
        }
        "/debug/alloc" => {
            let stats = mule_obs::alloc::stats();
            let doc = JsonValue::object(vec![
                ("schema", "debug-alloc/v1".into()),
                ("armed", mule_obs::alloc::armed().into()),
                (
                    "alloc",
                    JsonValue::object(vec![
                        ("alloc_count", stats.alloc_count.into()),
                        ("realloc_count", stats.realloc_count.into()),
                        ("dealloc_count", stats.dealloc_count.into()),
                        ("allocated_bytes", stats.allocated_bytes.into()),
                        ("freed_bytes", stats.freed_bytes.into()),
                        ("live_bytes", stats.live_bytes.into()),
                        ("peak_live_bytes", stats.peak_live_bytes.into()),
                    ]),
                ),
                (
                    "rss",
                    JsonValue::object(vec![
                        (
                            "now_kb",
                            mule_obs::alloc::rss_now_kb().map_or(JsonValue::Null, Into::into),
                        ),
                        (
                            "peak_kb",
                            mule_obs::alloc::rss_peak_kb().map_or(JsonValue::Null, Into::into),
                        ),
                    ]),
                ),
            ]);
            Response::json(200, doc.to_pretty_string())
        }
        "/debug/events" => {
            let limit = match parse_limit(query, 100) {
                Ok(limit) => limit,
                Err(response) => return response,
            };
            // The lines are already rendered JSON objects; splice them
            // into an array verbatim instead of re-parsing.
            let lines = mule_obs::log::recent(limit);
            let events = if lines.is_empty() {
                String::new()
            } else {
                format!("\n    {}\n  ", lines.join(",\n    "))
            };
            Response::json(
                200,
                format!("{{\n  \"schema\": \"debug-events/v1\",\n  \"events\": [{events}]\n}}\n"),
            )
        }
        _ => Response::error(404, &format!("no such debug endpoint: {path}")),
    }
}

fn api_error_response(e: &api::ApiError) -> Response {
    match e {
        api::ApiError::BadRequest(msg) => Response::error(400, msg),
        api::ApiError::Plan(plan_err) => Response::error(422, &plan_err.to_string()),
    }
}

/// Why a guarded compute produced no bytes.
enum ComputeFailure {
    /// The request itself is bad (4xx; never trips the breaker).
    Api(api::ApiError),
    /// The compute panicked (caught; 500 or stale).
    Panicked(String),
    /// The compute overran the configured deadline (504 or stale).
    DeadlineExceeded,
}

/// Renders a panic payload for error documents and logs.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Runs `f` under the optional deadline. With none, `f` runs inline on
/// the connection worker. With one, `f` runs on a helper thread and this
/// call waits at most `deadline`; on overrun the worker walks away with
/// `Err(())` (answering 504) while the helper finishes in the background
/// — its result still lands in the cache for the next request, and any
/// coalesced waiters are still woken.
fn with_deadline<T: Send + 'static>(
    deadline: Option<Duration>,
    f: impl FnOnce() -> T + Send + 'static,
) -> Result<T, ()> {
    match deadline {
        None => Ok(f()),
        Some(limit) => {
            let (tx, rx) = std::sync::mpsc::channel();
            std::thread::spawn(move || {
                let _ = tx.send(f());
            });
            rx.recv_timeout(limit).map_err(|_| ())
        }
    }
}

/// The fail-fast 503 an open breaker answers with.
fn breaker_response() -> Response {
    Response::error(503, "circuit breaker open, retry later")
        .with_header("Retry-After", RETRY_AFTER_S.to_string())
        .with_header("X-Breaker", "open")
}

/// The stale-on-error answer, if degraded mode is on and last-good bytes
/// exist for the fingerprint.
fn stale_response(shared: &Shared, key: u64) -> Option<Response> {
    if !shared.config.degraded {
        return None;
    }
    let bytes = shared.cache.stale_get(key)?;
    shared.metrics.observe_stale_served();
    Some(
        Response::json(200, bytes.as_slice().to_vec())
            .with_header("X-Cache", "stale")
            .with_header("Warning", "110 mule-serve \"stale-on-error\"")
            .with_header("X-Fingerprint", format!("{key:016x}")),
    )
}

fn handle_plan(body: &[u8], shared: &Arc<Shared>) -> (Option<CacheOutcome>, Response) {
    let parsed = {
        let _s = mule_obs::span("request.parse");
        api::spec_from_body(body)
    };
    let spec = match parsed {
        Ok(spec) => spec,
        Err(e) => return (None, api_error_response(&e)),
    };
    let key = {
        let _s = mule_obs::span("request.fingerprint");
        spec.fingerprint()
    };
    if !shared.breaker_plan.admit() {
        return (None, breaker_response());
    }
    if mule_fault::point("serve.cache") == Some(mule_fault::Injected::Evict) {
        shared.cache.evict(key);
    }
    let looked_up = {
        let _s = mule_obs::span("request.cache_lookup");
        // The compute is panic-guarded so a planner bug (or injected
        // `serve.plan` panic) surfaces as a typed failure: the cache
        // wakes one coalesced waiter to retry, the breaker counts it,
        // and the client gets a well-formed response. Under a deadline
        // the whole lookup (including any coalesced wait) moves onto a
        // helper thread; the clones exist so that thread owns its data.
        let cache_shared = Arc::clone(shared);
        let compute_spec = spec.clone();
        with_deadline(shared.config.deadline, move || {
            cache_shared.cache.get_or_compute(key, move || {
                catch_unwind(AssertUnwindSafe(|| plan_bytes(&compute_spec)))
                    .map_err(|p| ComputeFailure::Panicked(panic_message(p)))?
                    .map_err(ComputeFailure::Api)
            })
        })
        .unwrap_or(Err(ComputeFailure::DeadlineExceeded))
    };
    match looked_up {
        Ok((bytes, outcome)) => {
            shared.breaker_plan.on_success();
            let _s = mule_obs::span("request.serialize");
            let response = Response::json(200, bytes.as_slice().to_vec())
                .with_header("X-Cache", outcome.label())
                .with_header("X-Fingerprint", format!("{key:016x}"));
            (Some(outcome), response)
        }
        Err(ComputeFailure::Api(e)) => (None, api_error_response(&e)),
        Err(ComputeFailure::Panicked(msg)) => {
            shared.breaker_plan.on_failure();
            let response = stale_response(shared, key)
                .unwrap_or_else(|| Response::error(500, &format!("planner panicked: {msg}")));
            (None, response)
        }
        Err(ComputeFailure::DeadlineExceeded) => {
            shared.breaker_plan.on_failure();
            shared.metrics.observe_deadline_compute();
            let response = stale_response(shared, key)
                .unwrap_or_else(|| Response::error(504, "plan compute deadline exceeded"));
            (None, response)
        }
    }
}

fn plan_bytes(spec: &mule_workload::ScenarioSpec) -> Result<Vec<u8>, api::ApiError> {
    let _s = mule_obs::span("request.plan");
    let _ = mule_fault::point("serve.plan");
    api::plan_response_json(spec).map(String::into_bytes)
}

fn handle_simulate(body: &[u8], shared: &Arc<Shared>) -> Response {
    let parsed = {
        let _s = mule_obs::span("request.parse");
        api::simulate_request_from_body(body)
    };
    let request = match parsed {
        Ok(request) => request,
        Err(e) => return api_error_response(&e),
    };
    if !shared.breaker_simulate.admit() {
        return breaker_response();
    }
    let _s = mule_obs::span("request.simulate");
    let sim_workers = shared.config.sim_workers;
    let computed = with_deadline(shared.config.deadline, move || {
        catch_unwind(AssertUnwindSafe(|| {
            api::simulate_response_json(&request, sim_workers)
        }))
    });
    match computed {
        Ok(Ok(Ok(doc))) => {
            shared.breaker_simulate.on_success();
            Response::json(200, doc)
        }
        Ok(Ok(Err(e))) => api_error_response(&e),
        Ok(Err(panic_payload)) => {
            shared.breaker_simulate.on_failure();
            Response::error(
                500,
                &format!("simulation panicked: {}", panic_message(panic_payload)),
            )
        }
        Err(()) => {
            shared.breaker_simulate.on_failure();
            shared.metrics.observe_deadline_compute();
            Response::error(504, "simulate compute deadline exceeded")
        }
    }
}
