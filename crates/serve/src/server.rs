//! The daemon: a `TcpListener` accept loop feeding a bounded set of
//! connection handlers on a long-lived `mule-par` [`TaskPool`].
//!
//! ## Request flow
//!
//! 1. The accept thread admits a connection if fewer than
//!    `queue_depth` connections are currently admitted; otherwise it
//!    answers `503 Service Unavailable` with `Retry-After` immediately
//!    and closes — **backpressure is explicit and cheap**, not a growing
//!    queue.
//! 2. Admitted connections are handed to the worker pool. A worker owns
//!    the connection for its lifetime (keep-alive requests run
//!    back-to-back on one worker), bounded by the idle read timeout.
//! 3. `/v1/plan` bodies are parsed into a `ScenarioSpec`, fingerprinted,
//!    and served through the [`PlanCache`] — hit, coalesced or computed,
//!    the bytes are identical (see `docs/DETERMINISM.md`). The `X-Cache`
//!    response header reports which path served the request.
//!
//! ## Shutdown
//!
//! [`ServerHandle::shutdown`] (also run on drop) flips the shutdown flag,
//! pokes the listener with a loopback connection to unblock `accept`,
//! and drops the pool — which joins every worker after the in-flight
//! connections wind down (the idle timeout bounds how long an idle
//! keep-alive peer can delay this).

use crate::api;
use crate::cache::{CacheOutcome, PlanCache};
use crate::http::{read_request, HttpError, Request, Response};
use mule_metrics::LatencyHistogram;
use mule_obs::FlatProfile;
use mule_par::TaskPool;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Configuration of a [`start`]ed server.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Plan-cache capacity (entries); 0 disables caching.
    pub cache_capacity: usize,
    /// Maximum concurrently admitted connections; beyond it new
    /// connections get `503` + `Retry-After`.
    pub queue_depth: usize,
    /// Worker override for `/v1/simulate` replication sweeps (`None` =
    /// `mule_par::resolve_workers` default).
    pub sim_workers: Option<usize>,
    /// How long a worker waits for the next request on an idle keep-alive
    /// connection before closing it.
    pub idle_timeout: Duration,
    /// Opt-in slow-request log: requests taking at least this many
    /// milliseconds are logged to stderr with their trace id and a
    /// per-span self-time breakdown. `None` (the default) logs nothing.
    pub slow_request_ms: Option<f64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 4,
            cache_capacity: 128,
            queue_depth: 64,
            sim_workers: None,
            idle_timeout: Duration::from_secs(5),
            slow_request_ms: None,
        }
    }
}

/// The value of the `Retry-After` header on 503 responses, seconds.
pub const RETRY_AFTER_S: u32 = 1;

/// Request counters, latency histogram and cache statistics, exposed as
/// the `/metrics` document.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    inner: Mutex<MetricsInner>,
}

#[derive(Debug, Default)]
struct MetricsInner {
    healthz: u64,
    metrics: u64,
    plan: u64,
    simulate: u64,
    other: u64,
    ok_2xx: u64,
    client_err_4xx: u64,
    server_err_5xx: u64,
    rejected_503: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_coalesced: u64,
    latency: LatencyHistogram,
    /// Per-request span profiles merged under the same lock as the route
    /// counters, so `mule_span_total{span="request"}` always equals the
    /// summed per-route request counters at scrape time.
    spans: FlatProfile,
}

/// Which endpoint a request hit, for the per-route counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Route {
    Healthz,
    Metrics,
    Plan,
    Simulate,
    Other,
}

impl ServerMetrics {
    /// Locks the counters, recovering from poisoning: a handler that
    /// panicked mid-request leaves plain integers behind, and losing every
    /// later scrape to a cascading panic would turn one bad request into a
    /// dead `/metrics` endpoint.
    fn lock(&self) -> MutexGuard<'_, MetricsInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records one handled request together with its span profile.
    fn observe(
        &self,
        route: Route,
        status: u16,
        elapsed: Duration,
        cache: Option<CacheOutcome>,
        profile: &FlatProfile,
    ) {
        let mut inner = self.lock();
        match route {
            Route::Healthz => inner.healthz += 1,
            Route::Metrics => inner.metrics += 1,
            Route::Plan => inner.plan += 1,
            Route::Simulate => inner.simulate += 1,
            Route::Other => inner.other += 1,
        }
        match status {
            200..=299 => inner.ok_2xx += 1,
            400..=499 => inner.client_err_4xx += 1,
            _ => inner.server_err_5xx += 1,
        }
        match cache {
            Some(CacheOutcome::Hit) => inner.cache_hits += 1,
            Some(CacheOutcome::Miss) => inner.cache_misses += 1,
            Some(CacheOutcome::Coalesced) => inner.cache_coalesced += 1,
            None => {}
        }
        inner.latency.record_duration(elapsed);
        inner.spans.merge(profile);
    }

    /// Records one connection rejected by backpressure (no request was
    /// read, so nothing else is counted — rejections carry no trace).
    fn observe_rejected(&self) {
        self.lock().rejected_503 += 1;
    }

    /// Renders the `/metrics` document. Cache hit rate counts coalesced
    /// requests as served-from-cache: they did not recompute.
    pub fn to_json(&self) -> String {
        use crate::json::JsonValue;
        let inner = self.lock();
        let total = inner.healthz + inner.metrics + inner.plan + inner.simulate + inner.other;
        let cache_total = inner.cache_hits + inner.cache_misses + inner.cache_coalesced;
        let hit_rate = if cache_total == 0 {
            0.0
        } else {
            (inner.cache_hits + inner.cache_coalesced) as f64 / cache_total as f64
        };
        let doc = JsonValue::object(vec![
            ("schema", "server-metrics/v1".into()),
            (
                "requests",
                JsonValue::object(vec![
                    ("total", total.into()),
                    ("healthz", inner.healthz.into()),
                    ("metrics", inner.metrics.into()),
                    ("plan", inner.plan.into()),
                    ("simulate", inner.simulate.into()),
                    ("other", inner.other.into()),
                ]),
            ),
            (
                "responses",
                JsonValue::object(vec![
                    ("ok_2xx", inner.ok_2xx.into()),
                    ("client_error_4xx", inner.client_err_4xx.into()),
                    ("server_error_5xx", inner.server_err_5xx.into()),
                    ("rejected_503", inner.rejected_503.into()),
                ]),
            ),
            (
                "latency_ms",
                JsonValue::object(vec![
                    ("count", inner.latency.count().into()),
                    ("mean", (inner.latency.mean_s() * 1e3).into()),
                    ("p50", (inner.latency.p50() * 1e3).into()),
                    ("p95", (inner.latency.p95() * 1e3).into()),
                    ("p99", (inner.latency.p99() * 1e3).into()),
                    ("max", (inner.latency.max_s() * 1e3).into()),
                ]),
            ),
            (
                "cache",
                JsonValue::object(vec![
                    ("hits", inner.cache_hits.into()),
                    ("misses", inner.cache_misses.into()),
                    ("coalesced", inner.cache_coalesced.into()),
                    ("hit_rate", hit_rate.into()),
                ]),
            ),
        ]);
        doc.to_pretty_string()
    }

    /// Renders the Prometheus text exposition (format 0.0.4) served at
    /// `/metrics`: per-route request counters, status-class counters,
    /// cache outcomes, the latency histogram (`_bucket`/`_sum`/`_count`)
    /// and per-span-name totals from the merged request profiles.
    pub fn to_prometheus(&self) -> String {
        use mule_obs::prom::PromText;
        let inner = self.lock();
        let mut p = PromText::new();

        p.family(
            "mule_requests_total",
            "counter",
            "Requests handled, by route.",
        );
        for (route, count) in [
            ("healthz", inner.healthz),
            ("metrics", inner.metrics),
            ("plan", inner.plan),
            ("simulate", inner.simulate),
            ("other", inner.other),
        ] {
            p.sample_u64("mule_requests_total", &[("route", route)], count);
        }

        p.family(
            "mule_responses_total",
            "counter",
            "Responses sent, by status class.",
        );
        for (class, count) in [
            ("2xx", inner.ok_2xx),
            ("4xx", inner.client_err_4xx),
            ("5xx", inner.server_err_5xx),
        ] {
            p.sample_u64("mule_responses_total", &[("class", class)], count);
        }

        p.family(
            "mule_rejected_total",
            "counter",
            "Connections rejected by backpressure (503 + Retry-After).",
        );
        p.sample_u64("mule_rejected_total", &[], inner.rejected_503);

        p.family(
            "mule_cache_events_total",
            "counter",
            "Plan-cache lookups, by outcome.",
        );
        for (event, count) in [
            ("hit", inner.cache_hits),
            ("miss", inner.cache_misses),
            ("coalesced", inner.cache_coalesced),
        ] {
            p.sample_u64("mule_cache_events_total", &[("event", event)], count);
        }

        // Log-linear histogram buckets carry inclusive upper bounds in
        // nanoseconds; Prometheus `le` is inclusive too, so converting
        // the bound to seconds preserves the semantics exactly.
        let mut cumulative = 0u64;
        let buckets: Vec<(f64, u64)> = inner
            .latency
            .nonzero_buckets()
            .into_iter()
            .map(|(upper_ns, count)| {
                cumulative += count;
                (upper_ns as f64 / 1e9, cumulative)
            })
            .collect();
        p.histogram(
            "mule_request_duration_seconds",
            "Request handling latency.",
            &buckets,
            inner.latency.sum_s(),
            inner.latency.count(),
        );

        p.family(
            "mule_span_total",
            "counter",
            "Spans recorded across all request traces, by span name.",
        );
        for e in &inner.spans.entries {
            p.sample_u64("mule_span_total", &[("span", &e.name)], e.count);
        }
        p.family(
            "mule_span_seconds_total",
            "counter",
            "Total wall-clock seconds spent in spans (children included), by span name.",
        );
        for e in &inner.spans.entries {
            p.sample_f64(
                "mule_span_seconds_total",
                &[("span", &e.name)],
                e.total_ns as f64 / 1e9,
            );
        }
        p.finish()
    }
}

struct Shared {
    cache: PlanCache,
    metrics: ServerMetrics,
    admitted: AtomicUsize,
    shutdown: AtomicBool,
    /// Monotonic request sequence feeding [`trace_id`].
    trace_seq: AtomicU64,
    config: ServerConfig,
}

/// Renders the `X-Trace-Id` token for the `seq`-th request. The splitmix64
/// finaliser turns sequential numbers into well-mixed 16-hex tokens while
/// staying a pure function of admission order.
fn trace_id(seq: u64) -> String {
    let mut z = seq.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    format!("{:016x}", z ^ (z >> 31))
}

/// A running server. Dropping the handle shuts the server down and joins
/// every thread it started.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    /// Dropped before the accept thread is joined; its own drop joins the
    /// connection workers.
    pool: Option<TaskPool>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ServerHandle {
    /// The actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The current `/metrics.json` document (for embedding servers).
    pub fn metrics_json(&self) -> String {
        self.shared.metrics.to_json()
    }

    /// The current Prometheus text exposition (the `/metrics` document).
    pub fn metrics_prometheus(&self) -> String {
        self.shared.metrics.to_prometheus()
    }

    /// Stops accepting, drains the in-flight connections and joins every
    /// thread. Called automatically on drop.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway loopback connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        // Dropping the pool joins the connection workers after they
        // finish their queued connections.
        self.pool.take();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// Binds the listener and starts the accept loop and worker pool.
pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        cache: PlanCache::new(config.cache_capacity),
        metrics: ServerMetrics::default(),
        admitted: AtomicUsize::new(0),
        shutdown: AtomicBool::new(false),
        trace_seq: AtomicU64::new(0),
        config: config.clone(),
    });
    let pool = TaskPool::new(config.workers);

    let accept_shared = Arc::clone(&shared);
    // Admitted connections travel from the accept thread to the pool
    // workers over a channel. When the accept thread exits it drops the
    // sender, the workers' `recv` fails, and their jobs finish — which is
    // what lets the pool's join-on-drop shutdown terminate.
    let (conn_tx, conn_rx) = std::sync::mpsc::channel::<TcpStream>();
    let accept_thread = std::thread::spawn(move || {
        accept_loop(&listener, &accept_shared, conn_tx);
    });

    // One long-lived job per worker, each pulling connections off the
    // shared queue; `queue_depth` (checked at accept time) bounds how
    // many connections wait here.
    let conn_rx = ConnReceiver {
        rx: Arc::new(Mutex::new(conn_rx)),
    };
    for _ in 0..config.workers {
        let shared = Arc::clone(&shared);
        let rx = ConnReceiver::clone_handle(&conn_rx);
        pool.spawn(move || {
            while let Some(stream) = rx.recv() {
                handle_connection(stream, &shared);
                shared.admitted.fetch_sub(1, Ordering::SeqCst);
            }
        });
    }

    Ok(ServerHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
        pool: Some(pool),
    })
}

/// `mpsc::Receiver` is single-consumer; wrap it in a mutex so every pool
/// worker can pull connections from one queue.
struct ConnReceiver {
    rx: Arc<Mutex<std::sync::mpsc::Receiver<TcpStream>>>,
}

impl ConnReceiver {
    fn clone_handle(rx: &ConnReceiver) -> ConnReceiver {
        ConnReceiver {
            rx: Arc::clone(&rx.rx),
        }
    }

    fn recv(&self) -> Option<TcpStream> {
        // Recover from poisoning: one worker panicking while holding the
        // receiver must not strand the queued connections of the others.
        self.rx
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .recv()
            .ok()
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Shared,
    conn_tx: std::sync::mpsc::Sender<TcpStream>,
) {
    loop {
        let (mut stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Backpressure: admit up to `queue_depth` concurrent connections,
        // reject the rest immediately. The counter is incremented here —
        // in the single accept thread — so admission decisions are
        // sequential and deterministic for a given arrival order.
        let admitted = shared.admitted.load(Ordering::SeqCst);
        if admitted >= shared.config.queue_depth {
            shared.metrics.observe_rejected();
            let response = Response::error(503, "server at capacity, retry later")
                .with_header("Retry-After", RETRY_AFTER_S.to_string());
            let _ = response.write_to(&mut stream, false);
            continue;
        }
        shared.admitted.fetch_add(1, Ordering::SeqCst);
        if conn_tx.send(stream).is_err() {
            return; // workers are gone: shutting down
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.config.idle_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader) {
            Ok(None) => return, // clean close between requests
            Ok(Some(request)) => {
                let keep_alive = request.keep_alive();
                let started = Instant::now();
                let seq = shared.trace_seq.fetch_add(1, Ordering::Relaxed);
                // Every request runs under its own captured trace with a
                // root `request` span, so the merged profile counts one
                // `request` span per handled request — the invariant the
                // CI smoke test checks against the route counters.
                let ((route, cache, response), trace) = mule_obs::capture(|| {
                    let _root = mule_obs::span("request");
                    route_request(&request, shared)
                });
                let elapsed = started.elapsed();
                let profile = FlatProfile::of(&trace);
                shared
                    .metrics
                    .observe(route, response.status, elapsed, cache, &profile);
                let id = trace_id(seq);
                if let Some(threshold_ms) = shared.config.slow_request_ms {
                    let elapsed_ms = elapsed.as_secs_f64() * 1e3;
                    if elapsed_ms >= threshold_ms {
                        eprintln!(
                            "[mule-serve] slow request trace={id} {} {} status={} {elapsed_ms:.1}ms{}",
                            request.method,
                            request.path,
                            response.status,
                            slow_breakdown(&profile),
                        );
                    }
                }
                let response = response.with_header("X-Trace-Id", id);
                if response.write_to(&mut writer, keep_alive).is_err() {
                    return;
                }
                if !keep_alive || shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(HttpError::Io(_)) | Err(HttpError::Closed) => return, // timeout / peer went away
            Err(e) => {
                let status = match e {
                    HttpError::TooLarge("request head") => 431,
                    HttpError::TooLarge(_) => 413,
                    HttpError::LengthRequired => 411,
                    _ => 400,
                };
                let _ = Response::error(status, &e.to_string()).write_to(&mut writer, false);
                return;
            }
        }
    }
}

/// The top self-time spans of a slow request, for the stderr log line.
fn slow_breakdown(profile: &FlatProfile) -> String {
    let mut out = String::new();
    for entry in profile
        .entries
        .iter()
        .filter(|e| e.name != "request")
        .take(3)
    {
        out.push_str(&format!(
            " {}={:.1}ms",
            entry.name,
            entry.self_ns as f64 / 1e6
        ));
    }
    out
}

fn route_request(request: &Request, shared: &Shared) -> (Route, Option<CacheOutcome>, Response) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let doc = crate::json::JsonValue::object(vec![
                ("status", "ok".into()),
                ("service", "mule-serve".into()),
            ]);
            (
                Route::Healthz,
                None,
                Response::json(200, doc.to_pretty_string()),
            )
        }
        ("GET", "/metrics") => (
            Route::Metrics,
            None,
            Response::text(
                200,
                mule_obs::prom::CONTENT_TYPE,
                shared.metrics.to_prometheus(),
            ),
        ),
        ("GET", "/metrics.json") => (
            Route::Metrics,
            None,
            Response::json(200, shared.metrics.to_json()),
        ),
        ("POST", "/v1/plan") => {
            let (cache, response) = handle_plan(&request.body, shared);
            (Route::Plan, cache, response)
        }
        ("POST", "/v1/simulate") => (
            Route::Simulate,
            None,
            handle_simulate(&request.body, shared),
        ),
        (_, "/healthz" | "/metrics" | "/metrics.json" | "/v1/plan" | "/v1/simulate") => (
            Route::Other,
            None,
            Response::error(405, "method not allowed for this path"),
        ),
        _ => (
            Route::Other,
            None,
            Response::error(404, &format!("no such endpoint: {}", request.path)),
        ),
    }
}

fn api_error_response(e: &api::ApiError) -> Response {
    match e {
        api::ApiError::BadRequest(msg) => Response::error(400, msg),
        api::ApiError::Plan(plan_err) => Response::error(422, &plan_err.to_string()),
    }
}

fn handle_plan(body: &[u8], shared: &Shared) -> (Option<CacheOutcome>, Response) {
    let parsed = {
        let _s = mule_obs::span("request.parse");
        api::spec_from_body(body)
    };
    let spec = match parsed {
        Ok(spec) => spec,
        Err(e) => return (None, api_error_response(&e)),
    };
    let key = {
        let _s = mule_obs::span("request.fingerprint");
        spec.fingerprint()
    };
    let looked_up = {
        let _s = mule_obs::span("request.cache_lookup");
        shared.cache.get_or_compute(key, || plan_bytes(&spec))
    };
    match looked_up {
        Ok((bytes, outcome)) => {
            let _s = mule_obs::span("request.serialize");
            let response = Response::json(200, bytes.as_slice().to_vec())
                .with_header("X-Cache", outcome.label())
                .with_header("X-Fingerprint", format!("{key:016x}"));
            (Some(outcome), response)
        }
        Err(e) => (None, api_error_response(&e)),
    }
}

fn plan_bytes(spec: &mule_workload::ScenarioSpec) -> Result<Vec<u8>, api::ApiError> {
    let _s = mule_obs::span("request.plan");
    api::plan_response_json(spec).map(String::into_bytes)
}

fn handle_simulate(body: &[u8], shared: &Shared) -> Response {
    let parsed = {
        let _s = mule_obs::span("request.parse");
        api::simulate_request_from_body(body)
    };
    let request = match parsed {
        Ok(request) => request,
        Err(e) => return api_error_response(&e),
    };
    let _s = mule_obs::span("request.simulate");
    match api::simulate_response_json(&request, shared.config.sim_workers) {
        Ok(doc) => Response::json(200, doc),
        Err(e) => api_error_response(&e),
    }
}
