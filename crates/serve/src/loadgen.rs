//! The load generator: fire N `/v1/plan` requests over M concurrent
//! keep-alive connections and aggregate throughput, latency percentiles
//! and the client-observed cache behaviour into a [`LoadReport`] — the
//! tracked `BENCH_server.json` artefact behind `patrolctl loadgen`.
//!
//! Each connection runs on its own thread with its own
//! [`LatencyHistogram`]; the per-connection histograms are **merged**
//! at the end (static bucket layout — merging is exact), so the reported
//! percentiles cover the whole run without any cross-thread contention
//! during measurement.
//!
//! Requests rotate through a pool of `spec_pool` distinct scenario seeds,
//! so a run exercises both the cold path (first occurrence of each spec)
//! and the cache path (every repeat). The cache outcome of every request
//! is taken from the server's `X-Cache` header, making the reported hit
//! rate an end-to-end observation rather than a server-side claim.
//!
//! `503` responses (backpressure, open circuit breaker) are retried with
//! a **seeded, jittered exponential backoff** honouring the server's
//! `Retry-After` header, up to a bounded per-request retry budget. The
//! jitter is a pure function of `(retry_seed, connection, request,
//! attempt)`, so two runs with the same parameters sleep the same
//! schedule — load tests stay reproducible even when they hit the
//! degraded paths.
//!
//! Two refinements make the report SLO-grade:
//!
//! * **Warm-up discard**: the first [`LoadgenParams::warmup`] requests
//!   (split across connections like the load itself) still count toward
//!   throughput, availability and cache statistics, but their latencies
//!   are **excluded from the histogram** — percentiles measure steady
//!   state, not cache-cold plan computes and allocator ramp-up.
//! * **Duration mode**: with [`LoadgenParams::duration`] set, each
//!   connection fires until the wall-clock deadline instead of a fixed
//!   request count, which is what an SLO window wants.
//!
//! When [`LoadgenParams::slo`] carries a spec, the report grades its
//! steady-state measurements against each objective and embeds the
//! verdicts in `BENCH_server.json` (schema `bench-server/v2`).

use crate::api::spec_to_json;
use crate::http::{read_response, write_request, ClientResponse, HttpError};
use crate::json::JsonValue;
use mule_metrics::LatencyHistogram;
use mule_obs::SloSpec;
use mule_workload::ScenarioSpec;
use std::io::BufReader;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Parameters of one load-generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenParams {
    /// Server address (`host:port`).
    pub addr: String,
    /// Total requests across all connections (ignored when
    /// [`LoadgenParams::duration`] is set).
    pub requests: usize,
    /// Run until this wall-clock duration elapses instead of sending a
    /// fixed number of requests.
    pub duration: Option<Duration>,
    /// Number of leading requests whose latencies are discarded from the
    /// histogram (split across connections like the load itself).
    pub warmup: usize,
    /// Objectives to grade the steady-state measurements against.
    pub slo: Option<SloSpec>,
    /// Concurrent connections (each a thread).
    pub connections: usize,
    /// Number of distinct specs rotated through (≥ 1); the run's expected
    /// cache hit rate is roughly `1 − spec_pool / requests`.
    pub spec_pool: usize,
    /// Base spec; request *i* uses `base.seed + (i mod spec_pool)`.
    pub base: ScenarioSpec,
    /// Per-request response timeout.
    pub timeout: Duration,
    /// Maximum retries per request after a `503` (0 disables retrying).
    pub retry_budget: u32,
    /// Seed of the deterministic backoff jitter.
    pub retry_seed: u64,
}

impl Default for LoadgenParams {
    fn default() -> Self {
        LoadgenParams {
            addr: "127.0.0.1:7878".to_string(),
            requests: 1000,
            duration: None,
            warmup: 0,
            slo: None,
            connections: 4,
            spec_pool: 4,
            base: ScenarioSpec::default(),
            timeout: Duration::from_secs(30),
            retry_budget: 3,
            retry_seed: 7,
        }
    }
}

/// Aggregated results of a load-generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Requests attempted.
    pub requests: usize,
    /// Connections used.
    pub connections: usize,
    /// Distinct specs rotated through.
    pub spec_pool: usize,
    /// Requests answered 200.
    pub ok: usize,
    /// Requests that failed (transport error or non-200 status).
    pub errors: usize,
    /// Wall-clock duration of the whole run, seconds.
    pub duration_s: f64,
    /// Successful requests per second.
    pub rps: f64,
    /// Merged latency histogram over successful requests.
    pub latency: LatencyHistogram,
    /// Requests served from cache (`X-Cache: hit`).
    pub hits: usize,
    /// Requests that computed (`X-Cache: miss`).
    pub misses: usize,
    /// Requests coalesced onto a concurrent compute
    /// (`X-Cache: coalesced`).
    pub coalesced: usize,
    /// Retry attempts performed after `503` responses.
    pub retries: usize,
    /// Requests that ultimately succeeded only thanks to a retry.
    pub retried_ok: usize,
    /// Successful warm-up requests whose latencies were excluded from
    /// the histogram.
    pub warmup_discarded: usize,
    /// The SLO spec the run was graded against, if any.
    pub slo: Option<SloSpec>,
}

impl LoadReport {
    /// Client-observed cache hit rate; coalesced requests count as served
    /// from cache (they did not recompute).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.coalesced;
        if total == 0 {
            0.0
        } else {
            (self.hits + self.coalesced) as f64 / total as f64
        }
    }

    /// 99th-percentile latency in milliseconds (the `--max-p99` gate).
    pub fn p99_ms(&self) -> f64 {
        self.latency.p99() * 1e3
    }

    /// Fraction of requests that ultimately succeeded — after retries, so
    /// a run that absorbs every `503` with its retry budget reports full
    /// availability.
    pub fn availability(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.ok as f64 / self.requests as f64
    }

    /// Grades the run against the active SLO objectives. Each verdict is
    /// `(objective, target, measured, pass)`; empty without a spec. The
    /// measurements are the steady-state ones — warm-up latencies never
    /// reach the histogram the `p99_ms` objective reads.
    pub fn slo_verdicts(&self) -> Vec<(&'static str, f64, f64, bool)> {
        let Some(spec) = &self.slo else {
            return Vec::new();
        };
        let mut verdicts = Vec::new();
        if let Some(target) = spec.p99_ms {
            let measured = self.p99_ms();
            verdicts.push(("p99_ms", target, measured, measured <= target));
        }
        if let Some(target) = spec.availability_pct {
            let measured = self.availability() * 100.0;
            verdicts.push(("availability", target, measured, measured >= target));
        }
        verdicts
    }

    /// The overall SLO verdict: `Some(true)` when every active objective
    /// passed, `None` when the run had no SLO to grade against.
    pub fn slo_pass(&self) -> Option<bool> {
        self.slo.as_ref()?;
        Some(self.slo_verdicts().iter().all(|&(_, _, _, pass)| pass))
    }

    /// Renders the tracked `BENCH_server.json` document.
    pub fn to_json(&self) -> String {
        let slo = match self.slo_pass() {
            None => JsonValue::Null,
            Some(pass) => {
                let verdicts = self
                    .slo_verdicts()
                    .into_iter()
                    .map(|(objective, target, measured, ok)| {
                        JsonValue::object(vec![
                            ("objective", objective.into()),
                            ("target", target.into()),
                            ("measured", measured.into()),
                            ("pass", ok.into()),
                        ])
                    })
                    .collect();
                JsonValue::object(vec![
                    ("pass", pass.into()),
                    ("verdicts", JsonValue::Array(verdicts)),
                ])
            }
        };
        let doc = JsonValue::object(vec![
            ("schema", "bench-server/v2".into()),
            ("requests", self.requests.into()),
            ("connections", self.connections.into()),
            ("spec_pool", self.spec_pool.into()),
            ("ok", self.ok.into()),
            ("errors", self.errors.into()),
            ("retries", self.retries.into()),
            ("retried_ok", self.retried_ok.into()),
            ("warmup_discarded", self.warmup_discarded.into()),
            ("availability", self.availability().into()),
            ("duration_s", self.duration_s.into()),
            ("throughput_rps", self.rps.into()),
            (
                "latency_ms",
                JsonValue::object(vec![
                    ("mean", (self.latency.mean_s() * 1e3).into()),
                    ("p50", (self.latency.p50() * 1e3).into()),
                    ("p95", (self.latency.p95() * 1e3).into()),
                    ("p99", self.p99_ms().into()),
                    ("max", (self.latency.max_s() * 1e3).into()),
                ]),
            ),
            (
                "cache",
                JsonValue::object(vec![
                    ("hits", self.hits.into()),
                    ("misses", self.misses.into()),
                    ("coalesced", self.coalesced.into()),
                    ("hit_rate", self.hit_rate().into()),
                ]),
            ),
            ("slo", slo),
        ]);
        doc.to_pretty_string()
    }

    /// Renders the human-readable summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "loadgen: {} requests over {} connections ({} distinct specs)\n\
             ok: {}  errors: {}  retries: {} ({} rescued)  availability: {:.1} %\n\
             duration: {:.2} s  throughput: {:.0} req/s\n\
             latency: mean {:.2} ms  p50 {:.2} ms  p95 {:.2} ms  p99 {:.2} ms  max {:.2} ms\n\
             cache: {} hits, {} misses, {} coalesced  hit rate: {:.1} %\n",
            self.requests,
            self.connections,
            self.spec_pool,
            self.ok,
            self.errors,
            self.retries,
            self.retried_ok,
            self.availability() * 100.0,
            self.duration_s,
            self.rps,
            self.latency.mean_s() * 1e3,
            self.latency.p50() * 1e3,
            self.latency.p95() * 1e3,
            self.p99_ms(),
            self.latency.max_s() * 1e3,
            self.hits,
            self.misses,
            self.coalesced,
            self.hit_rate() * 100.0,
        );
        if self.warmup_discarded > 0 {
            out.push_str(&format!(
                "warm-up: {} latencies discarded from the histogram\n",
                self.warmup_discarded
            ));
        }
        if let Some(pass) = self.slo_pass() {
            for (objective, target, measured, ok) in self.slo_verdicts() {
                out.push_str(&format!(
                    "slo {objective}: measured {measured:.3}  target {target:.3}  {}\n",
                    if ok { "PASS" } else { "FAIL" }
                ));
            }
            out.push_str(&format!(
                "slo verdict: {}\n",
                if pass { "PASS" } else { "FAIL" }
            ));
        }
        out
    }
}

/// Per-connection tallies, merged after the run.
#[derive(Default)]
struct ConnectionStats {
    attempted: usize,
    ok: usize,
    errors: usize,
    hits: usize,
    misses: usize,
    coalesced: usize,
    retries: usize,
    retried_ok: usize,
    warmup_discarded: usize,
    latency: LatencyHistogram,
}

/// How much load one connection drives.
#[derive(Debug, Clone, Copy)]
enum ConnectionPlan {
    /// Exactly `count` requests with global indices from `first_index`.
    Fixed { first_index: usize, count: usize },
    /// Requests until the wall-clock deadline; the *i*-th request on
    /// connection *c* of *C* uses global index `c + i·C`, so the rotating
    /// spec pool is covered evenly however long the run lasts.
    Until { deadline: Instant },
}

/// Cap of one backoff sleep, milliseconds (a `Retry-After` larger than
/// this is clamped — a load test should not stall for minutes).
const BACKOFF_CAP_MS: u64 = 2_000;

/// The backoff before retry `attempt` (1-based) of request `request` on
/// connection `connection`, in milliseconds. Pure: the base doubles per
/// attempt from the server's `Retry-After` (milliseconds, when present)
/// or 25 ms, and the ±50 % jitter is a hash of the four arguments — the
/// same run sleeps the same schedule every time.
pub fn backoff_delay_ms(
    seed: u64,
    connection: usize,
    request: usize,
    attempt: u32,
    retry_after_ms: Option<u64>,
) -> u64 {
    let base = retry_after_ms.unwrap_or(25).max(1);
    let exp = base.saturating_mul(1u64 << (attempt.saturating_sub(1)).min(16));
    let capped = exp.min(BACKOFF_CAP_MS);
    // SplitMix64 over the identifying tuple: full-period, well mixed, and
    // dependency-free. Jitter spreads retries over [capped/2, capped].
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((connection as u64) << 32)
        .wrapping_add(request as u64)
        .wrapping_add((attempt as u64) << 48);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let half = capped / 2;
    half + z % (capped - half + 1)
}

/// The spec request `index` (0-based, global across connections) sends:
/// the base spec with a seed from the rotating pool.
fn spec_for_request(params: &LoadgenParams, index: usize) -> ScenarioSpec {
    let offset = (index % params.spec_pool.max(1)) as u64;
    params
        .base
        .clone()
        .with_seed(params.base.seed.wrapping_add(offset))
}

/// Sends one request and reads its response; a transport-level failure
/// anywhere in the exchange is one error.
fn one_request(
    params: &LoadgenParams,
    index: usize,
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
) -> Result<ClientResponse, HttpError> {
    let spec = spec_for_request(params, index);
    let body = spec_to_json(&spec).to_json_string();
    write_request(writer, "POST", "/v1/plan", body.as_bytes())?;
    read_response(reader)
}

/// Opens a fresh connection to the server.
fn connect(params: &LoadgenParams) -> std::io::Result<(TcpStream, BufReader<TcpStream>)> {
    let stream = TcpStream::connect(&params.addr)?;
    stream.set_read_timeout(Some(params.timeout))?;
    stream.set_nodelay(true)?;
    let writer = stream.try_clone()?;
    Ok((writer, BufReader::new(stream)))
}

/// Runs one connection's share of the load. Infallible by design: a
/// transport error (failed connect, mid-run disconnect, timeout) counts
/// the affected — and only the affected — requests as errors, while the
/// statistics of the requests that already succeeded are kept. `503`
/// responses are retried on a fresh connection (the server may have
/// closed the rejected one) after a deterministic jittered backoff that
/// honours `Retry-After`, up to `retry_budget` attempts per request.
///
/// The first `warmup` requests count toward every statistic *except* the
/// latency histogram. In [`ConnectionPlan::Until`] mode a transport error
/// costs one request and the connection reconnects; only a failed
/// reconnect ends its run early.
fn run_connection(
    params: &LoadgenParams,
    connection: usize,
    plan: ConnectionPlan,
    warmup: usize,
) -> ConnectionStats {
    let mut stats = ConnectionStats {
        latency: LatencyHistogram::new(),
        ..ConnectionStats::default()
    };
    let (mut writer, mut reader) = match connect(params) {
        Ok(pair) => pair,
        Err(_) => {
            stats.attempted = match plan {
                ConnectionPlan::Fixed { count, .. } => count,
                ConnectionPlan::Until { .. } => 1,
            };
            stats.errors = stats.attempted;
            return stats;
        }
    };
    let connections = params.connections.max(1);
    let mut sent = 0usize;
    loop {
        let index = match plan {
            ConnectionPlan::Fixed { first_index, count } => {
                if sent == count {
                    break;
                }
                first_index + sent
            }
            ConnectionPlan::Until { deadline } => {
                if Instant::now() >= deadline {
                    break;
                }
                connection + sent * connections
            }
        };
        stats.attempted += 1;
        let mut attempt = 0u32;
        loop {
            let started = Instant::now();
            match one_request(params, index, &mut writer, &mut reader) {
                Ok(response) if response.status == 200 => {
                    stats.ok += 1;
                    if attempt > 0 {
                        stats.retried_ok += 1;
                    }
                    if sent < warmup {
                        stats.warmup_discarded += 1;
                    } else {
                        stats.latency.record_duration(started.elapsed());
                    }
                    match response.header("x-cache") {
                        Some("hit") => stats.hits += 1,
                        Some("coalesced") => stats.coalesced += 1,
                        _ => stats.misses += 1,
                    }
                    break;
                }
                Ok(response) if response.status == 503 && attempt < params.retry_budget => {
                    attempt += 1;
                    stats.retries += 1;
                    let retry_after_ms = response
                        .header("retry-after")
                        .and_then(|v| v.trim().parse::<u64>().ok())
                        .map(|s| s.saturating_mul(1_000));
                    std::thread::sleep(Duration::from_millis(backoff_delay_ms(
                        params.retry_seed,
                        connection,
                        index,
                        attempt,
                        retry_after_ms,
                    )));
                    // The server closes rejected connections; retry on a
                    // fresh one. A failed reconnect burns the remaining
                    // budget naturally via the transport-error arm below.
                    if let Ok(pair) = connect(params) {
                        (writer, reader) = pair;
                    }
                }
                Ok(_) => {
                    stats.errors += 1;
                    break;
                }
                Err(_) => match plan {
                    ConnectionPlan::Fixed { count, .. } => {
                        // The connection is gone; everything not yet
                        // attempted fails with it, but the completed
                        // requests stand.
                        stats.errors += count - sent;
                        stats.attempted = count;
                        return stats;
                    }
                    ConnectionPlan::Until { .. } => {
                        // One request lost; keep driving load until the
                        // deadline if the server will have us back.
                        stats.errors += 1;
                        match connect(params) {
                            Ok(pair) => {
                                (writer, reader) = pair;
                                break;
                            }
                            Err(_) => return stats,
                        }
                    }
                },
            }
        }
        sent += 1;
    }
    stats
}

/// Runs the load generation and aggregates the per-connection results.
///
/// Connection errors mid-run are tolerated: the affected connection's
/// unfinished requests count as errors while its completed requests'
/// statistics are kept. A dead server yields a report with `ok == 0`
/// rather than a panic.
pub fn run_loadgen(params: &LoadgenParams) -> LoadReport {
    let connections = params.connections.max(1);
    // Split the warm-up across connections, front-loading the remainder
    // (mirroring the request split, so "first K requests" holds globally).
    let warmup_per = params.warmup / connections;
    let warmup_extra = params.warmup % connections;

    let started = Instant::now();
    let results: Vec<ConnectionStats> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        match params.duration {
            Some(duration) => {
                let deadline = started + duration;
                for c in 0..connections {
                    let warmup = warmup_per + usize::from(c < warmup_extra);
                    let plan = ConnectionPlan::Until { deadline };
                    handles.push(scope.spawn(move || run_connection(params, c, plan, warmup)));
                }
            }
            None => {
                // Split requests across connections, front-loading the
                // remainder.
                let per = params.requests / connections;
                let extra = params.requests % connections;
                let mut first_index = 0;
                for c in 0..connections {
                    let count = per + usize::from(c < extra);
                    let warmup = warmup_per + usize::from(c < warmup_extra);
                    let plan = ConnectionPlan::Fixed { first_index, count };
                    first_index += count;
                    handles.push(scope.spawn(move || run_connection(params, c, plan, warmup)));
                }
            }
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen connection thread panicked"))
            .collect()
    });
    let duration_s = started.elapsed().as_secs_f64();

    let mut report = LoadReport {
        requests: 0,
        connections,
        spec_pool: params.spec_pool.max(1),
        ok: 0,
        errors: 0,
        duration_s,
        rps: 0.0,
        latency: LatencyHistogram::new(),
        hits: 0,
        misses: 0,
        coalesced: 0,
        retries: 0,
        retried_ok: 0,
        warmup_discarded: 0,
        slo: params.slo.clone(),
    };
    for stats in results {
        report.requests += stats.attempted;
        report.ok += stats.ok;
        report.errors += stats.errors;
        report.hits += stats.hits;
        report.misses += stats.misses;
        report.coalesced += stats.coalesced;
        report.retries += stats.retries;
        report.retried_ok += stats.retried_ok;
        report.warmup_discarded += stats.warmup_discarded;
        report.latency.merge(&stats.latency);
    }
    report.rps = if duration_s > 0.0 {
        report.ok as f64 / duration_s
    } else {
        0.0
    };
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_rotation_cycles_through_the_pool() {
        let params = LoadgenParams {
            spec_pool: 3,
            base: ScenarioSpec::default().with_seed(100),
            ..LoadgenParams::default()
        };
        let seeds: Vec<u64> = (0..7).map(|i| spec_for_request(&params, i).seed).collect();
        assert_eq!(seeds, vec![100, 101, 102, 100, 101, 102, 100]);
        // Only the seed varies; everything else matches the base.
        let spec = spec_for_request(&params, 5);
        assert_eq!(spec.with_seed(100), params.base);
    }

    #[test]
    fn seed_rotation_wraps_instead_of_overflowing() {
        let params = LoadgenParams {
            spec_pool: 4,
            base: ScenarioSpec::default().with_seed(u64::MAX),
            ..LoadgenParams::default()
        };
        assert_eq!(spec_for_request(&params, 1).seed, 0);
    }

    #[test]
    fn a_mid_run_disconnect_keeps_completed_request_stats() {
        // A throwaway server that answers exactly three requests on one
        // connection, then drops it.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            for _ in 0..3 {
                crate::http::read_request(&mut reader).unwrap().unwrap();
                crate::http::Response::json(200, "{}")
                    .with_header("X-Cache", "miss")
                    .write_to(&mut writer, true)
                    .unwrap();
            }
            // Dropping the streams closes the connection mid-run.
        });

        let params = LoadgenParams {
            addr: addr.to_string(),
            requests: 10,
            connections: 1,
            timeout: Duration::from_secs(5),
            ..LoadgenParams::default()
        };
        let report = run_loadgen(&params);
        server.join().unwrap();

        // The three completed requests survive in every statistic; only
        // the unfinished seven count as errors.
        assert_eq!(report.ok, 3);
        assert_eq!(report.errors, 7);
        assert_eq!(report.misses, 3);
        assert_eq!(report.latency.count(), 3);
        assert!(report.rps > 0.0);
    }

    #[test]
    fn a_dead_server_yields_errors_not_panics() {
        // Port 1 on localhost is essentially never listening.
        let params = LoadgenParams {
            addr: "127.0.0.1:1".to_string(),
            requests: 10,
            connections: 2,
            timeout: Duration::from_millis(200),
            ..LoadgenParams::default()
        };
        let report = run_loadgen(&params);
        assert_eq!(report.ok, 0);
        assert_eq!(report.errors, 10);
        assert_eq!(report.rps, 0.0);
        assert_eq!(report.hit_rate(), 0.0);
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_honours_retry_after() {
        // Pure function: same arguments, same delay.
        let a = backoff_delay_ms(7, 0, 3, 1, None);
        let b = backoff_delay_ms(7, 0, 3, 1, None);
        assert_eq!(a, b);
        // Different attempts jitter differently.
        assert_ne!(
            backoff_delay_ms(7, 0, 3, 1, None),
            backoff_delay_ms(7, 0, 3, 2, None)
        );
        // Attempt 1 without Retry-After: within [base/2, base] of 25 ms.
        assert!((12..=25).contains(&a), "{a}");
        // Retry-After raises the base (1 s here) and doubling + cap hold.
        let ra = backoff_delay_ms(7, 1, 0, 1, Some(1_000));
        assert!((500..=1_000).contains(&ra), "{ra}");
        for attempt in 1..=40 {
            let d = backoff_delay_ms(9, 2, 5, attempt, Some(10_000));
            assert!(d <= BACKOFF_CAP_MS, "attempt {attempt}: {d}");
            assert!(d >= BACKOFF_CAP_MS / 2, "attempt {attempt}: {d}");
        }
    }

    #[test]
    fn a_503_is_retried_on_a_fresh_connection_and_rescued() {
        // First connection: answer 503 and close. Second: answer 200.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            crate::http::read_request(&mut reader).unwrap().unwrap();
            crate::http::Response::error(503, "busy")
                .write_to(&mut writer, false)
                .unwrap();
            drop((writer, reader));

            let (stream, _) = listener.accept().unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            crate::http::read_request(&mut reader).unwrap().unwrap();
            crate::http::Response::json(200, "{}")
                .with_header("X-Cache", "miss")
                .write_to(&mut writer, true)
                .unwrap();
        });

        let params = LoadgenParams {
            addr: addr.to_string(),
            requests: 1,
            connections: 1,
            timeout: Duration::from_secs(5),
            retry_budget: 2,
            ..LoadgenParams::default()
        };
        let report = run_loadgen(&params);
        server.join().unwrap();

        assert_eq!(report.ok, 1);
        assert_eq!(report.errors, 0);
        assert_eq!(report.retries, 1);
        assert_eq!(report.retried_ok, 1);
        assert!((report.availability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn an_exhausted_retry_budget_counts_one_error() {
        // The server always answers 503; the client has budget for one
        // retry, so it attempts twice, then gives up.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            for _ in 0..2 {
                let (stream, _) = listener.accept().unwrap();
                let mut writer = stream.try_clone().unwrap();
                let mut reader = BufReader::new(stream);
                crate::http::read_request(&mut reader).unwrap().unwrap();
                crate::http::Response::error(503, "busy")
                    .write_to(&mut writer, false)
                    .unwrap();
            }
        });

        let params = LoadgenParams {
            addr: addr.to_string(),
            requests: 1,
            connections: 1,
            timeout: Duration::from_secs(5),
            retry_budget: 1,
            ..LoadgenParams::default()
        };
        let report = run_loadgen(&params);
        server.join().unwrap();

        assert_eq!(report.ok, 0);
        assert_eq!(report.errors, 1);
        assert_eq!(report.retries, 1);
        assert_eq!(report.retried_ok, 0);
        assert_eq!(report.availability(), 0.0);
    }

    /// A report with plausible numbers, for the rendering tests.
    fn sample_report() -> LoadReport {
        LoadReport {
            requests: 100,
            connections: 4,
            spec_pool: 4,
            ok: 99,
            errors: 1,
            duration_s: 2.0,
            rps: 49.5,
            latency: {
                let mut h = LatencyHistogram::new();
                h.record(0.002);
                h.record(0.004);
                h
            },
            hits: 90,
            misses: 4,
            coalesced: 5,
            retries: 3,
            retried_ok: 2,
            warmup_discarded: 8,
            slo: None,
        }
    }

    #[test]
    fn report_json_is_parseable_and_complete() {
        let report = sample_report();
        let json = report.to_json();
        let doc = crate::json::parse(&json).unwrap();
        assert_eq!(
            doc.get("schema").and_then(JsonValue::as_str),
            Some("bench-server/v2")
        );
        assert_eq!(doc.get("ok").and_then(JsonValue::as_usize), Some(99));
        let latency = doc.get("latency_ms").unwrap();
        for key in ["mean", "p50", "p95", "p99", "max"] {
            assert!(
                latency.get(key).and_then(JsonValue::as_f64).is_some(),
                "{key}"
            );
        }
        assert_eq!(doc.get("retries").and_then(JsonValue::as_usize), Some(3));
        assert_eq!(doc.get("retried_ok").and_then(JsonValue::as_usize), Some(2));
        assert_eq!(
            doc.get("warmup_discarded").and_then(JsonValue::as_usize),
            Some(8)
        );
        assert!(
            (doc.get("availability").and_then(JsonValue::as_f64).unwrap() - 0.99).abs() < 1e-12
        );
        let cache = doc.get("cache").unwrap();
        assert_eq!(cache.get("hits").and_then(JsonValue::as_usize), Some(90));
        assert!(
            (cache.get("hit_rate").and_then(JsonValue::as_f64).unwrap() - 0.959_595_959_595_96)
                .abs()
                < 1e-9
        );
        // Without a spec, the slo block is an explicit null.
        assert_eq!(doc.get("slo"), Some(&JsonValue::Null));
        let text = report.render();
        assert!(text.contains("p99"));
        assert!(text.contains("hit rate"));
        assert!(!text.contains("slo verdict"));
    }

    #[test]
    fn slo_verdicts_grade_measurements_against_targets() {
        let mut report = sample_report();
        assert!(report.slo_verdicts().is_empty());
        assert_eq!(report.slo_pass(), None);

        // The recorded latencies are 2 ms and 4 ms, so p99 sits well
        // above a 1 ms target; availability is 99 %, exactly on target.
        report.slo = Some(SloSpec {
            p99_ms: Some(1.0),
            availability_pct: Some(99.0),
        });
        let verdicts = report.slo_verdicts();
        assert_eq!(verdicts.len(), 2);
        let (objective, target, measured, pass) = verdicts[0];
        assert_eq!(objective, "p99_ms");
        assert_eq!(target, 1.0);
        assert!(measured > 1.0, "{measured}");
        assert!(!pass);
        let (objective, target, measured, pass) = verdicts[1];
        assert_eq!(objective, "availability");
        assert_eq!(target, 99.0);
        assert!((measured - 99.0).abs() < 1e-9, "{measured}");
        assert!(pass);
        assert_eq!(report.slo_pass(), Some(false));

        let json = report.to_json();
        let doc = crate::json::parse(&json).unwrap();
        let slo = doc.get("slo").unwrap();
        assert_eq!(slo.get("pass"), Some(&JsonValue::Bool(false)));
        let text = report.render();
        assert!(text.contains("slo p99_ms"));
        assert!(text.contains("FAIL"));
        assert!(text.contains("slo verdict: FAIL"));

        // Relax the latency target and the run passes overall.
        report.slo = Some(SloSpec {
            p99_ms: Some(1_000.0),
            availability_pct: Some(99.0),
        });
        assert_eq!(report.slo_pass(), Some(true));
        assert!(report.render().contains("slo verdict: PASS"));
    }

    /// A throwaway server answering every request on every connection
    /// with `200` + `X-Cache: miss` for as long as clients stay. The
    /// serving threads are detached; they exit when their clients
    /// disconnect and the leaked listener dies with the test process.
    fn obliging_server() -> std::net::SocketAddr {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                std::thread::spawn(move || {
                    let mut writer = stream.try_clone().unwrap();
                    let mut reader = BufReader::new(stream);
                    while let Ok(Some(_)) = crate::http::read_request(&mut reader) {
                        if crate::http::Response::json(200, "{}")
                            .with_header("X-Cache", "miss")
                            .write_to(&mut writer, true)
                            .is_err()
                        {
                            break;
                        }
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn warmup_latencies_are_discarded_but_counted_everywhere_else() {
        let addr = obliging_server();
        let params = LoadgenParams {
            addr: addr.to_string(),
            requests: 10,
            connections: 2,
            warmup: 4,
            timeout: Duration::from_secs(5),
            ..LoadgenParams::default()
        };
        let report = run_loadgen(&params);
        assert_eq!(report.requests, 10);
        assert_eq!(report.ok, 10);
        assert_eq!(report.errors, 0);
        assert_eq!(report.misses, 10, "warm-up still counts cache outcomes");
        assert_eq!(report.warmup_discarded, 4);
        assert_eq!(
            report.latency.count(),
            6,
            "histogram holds steady-state latencies only"
        );
    }

    #[test]
    fn duration_mode_runs_until_the_deadline() {
        let addr = obliging_server();
        let params = LoadgenParams {
            addr: addr.to_string(),
            requests: 1, // ignored in duration mode
            duration: Some(Duration::from_millis(150)),
            warmup: 2,
            connections: 2,
            timeout: Duration::from_secs(5),
            ..LoadgenParams::default()
        };
        let report = run_loadgen(&params);
        assert!(report.ok > 2, "deadline mode sent real load: {report:?}");
        assert_eq!(report.requests, report.ok + report.errors);
        assert_eq!(report.errors, 0);
        assert_eq!(report.warmup_discarded, 2);
        assert_eq!(
            report.latency.count(),
            (report.ok - report.warmup_discarded) as u64
        );
        assert!(report.duration_s >= 0.15);
    }
}
