//! A per-route circuit breaker: after `threshold` *consecutive* compute
//! failures (panics or deadline timeouts) the route opens and fails fast
//! with `503` — protecting the worker pool from burning time on a
//! systematically failing compute — until a cooldown elapses and a single
//! half-open probe is admitted. A successful probe closes the breaker; a
//! failing one re-opens it.
//!
//! Client errors (4xx) never trip the breaker: a storm of bad requests is
//! the caller's problem, not a reason to stop serving good ones.
//!
//! The breaker is time-based by necessity (the cooldown is wall clock),
//! so it is the one deliberately non-deterministic piece of the
//! degradation machinery; `patrolctl chaos` runs with a cooldown longer
//! than the run so open breakers stay open and firing sequences stay
//! reproducible.

use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// The three classic breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow normally; consecutive failures are counted.
    Closed,
    /// Requests fail fast with 503 until the cooldown elapses.
    Open,
    /// One probe request is in flight; its outcome decides the next state.
    HalfOpen,
}

impl BreakerState {
    /// Stable label used in metrics.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// Numeric gauge value (`0` closed, `1` open, `2` half-open).
    pub fn code(self) -> u64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    consecutive_failures: usize,
    /// When the breaker last entered `Open` / `HalfOpen`.
    since: Instant,
    opened: u64,
    half_opened: u64,
    closed: u64,
    fast_failed: u64,
}

/// Counter snapshot for `/metrics` (see [`CircuitBreaker::snapshot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerSnapshot {
    /// Current state.
    pub state: BreakerState,
    /// Consecutive failures observed in the current closed period.
    pub consecutive_failures: usize,
    /// Transitions into `Open`.
    pub opened: u64,
    /// Transitions into `HalfOpen`.
    pub half_opened: u64,
    /// Transitions into `Closed` (recoveries; the initial state is not
    /// counted).
    pub closed: u64,
    /// Requests rejected fast while open.
    pub fast_failed: u64,
}

/// See module docs. `threshold == 0` disables the breaker entirely:
/// [`CircuitBreaker::admit`] always admits and no state is tracked.
#[derive(Debug)]
pub struct CircuitBreaker {
    /// Route label for `breaker.transition` log events; empty for
    /// anonymous (test) breakers, which then log nothing.
    name: &'static str,
    threshold: usize,
    cooldown: Duration,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// A breaker opening after `threshold` consecutive failures, with
    /// half-open probes every `cooldown` while open.
    pub fn new(threshold: usize, cooldown: Duration) -> Self {
        Self::named("", threshold, cooldown)
    }

    /// [`CircuitBreaker::new`] with a route name: every state transition
    /// emits a `breaker.transition` structured-log event carrying it
    /// (see [`mule_obs::log`]).
    pub fn named(name: &'static str, threshold: usize, cooldown: Duration) -> Self {
        CircuitBreaker {
            name,
            threshold,
            cooldown,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                since: Instant::now(),
                opened: 0,
                half_opened: 0,
                closed: 0,
                fast_failed: 0,
            }),
        }
    }

    /// Emits the transition event — called *after* the state lock is
    /// released, so a slow log sink never extends the breaker's critical
    /// section.
    fn log_transition(&self, from: BreakerState, to: BreakerState) {
        use mule_obs::log::{emit, enabled_at, LogEvent, Severity};
        if self.name.is_empty() || !enabled_at(Severity::Info) {
            return;
        }
        emit(
            LogEvent::new(Severity::Info, "breaker.transition")
                .field("route", self.name)
                .field("from", from.label())
                .field("to", to.label()),
        );
    }

    /// Whether the breaker participates at all.
    pub fn is_enabled(&self) -> bool {
        self.threshold > 0
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admission check, called before computing. `false` means fail fast
    /// with 503. While open, the first call after the cooldown becomes
    /// the half-open probe; while half-open, a stuck probe stops blocking
    /// others after another cooldown (a second probe is admitted).
    pub fn admit(&self) -> bool {
        if !self.is_enabled() {
            return true;
        }
        let mut inner = self.lock();
        let (admitted, transition) = match inner.state {
            BreakerState::Closed => (true, None),
            from @ (BreakerState::Open | BreakerState::HalfOpen) => {
                if inner.since.elapsed() >= self.cooldown {
                    inner.state = BreakerState::HalfOpen;
                    inner.since = Instant::now();
                    inner.half_opened += 1;
                    (true, Some((from, BreakerState::HalfOpen)))
                } else {
                    inner.fast_failed += 1;
                    (false, None)
                }
            }
        };
        drop(inner);
        if let Some((from, to)) = transition {
            self.log_transition(from, to);
        }
        admitted
    }

    /// Reports a successful compute: resets the failure streak and closes
    /// a half-open breaker.
    pub fn on_success(&self) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.lock();
        inner.consecutive_failures = 0;
        let transition = if inner.state != BreakerState::Closed {
            let from = inner.state;
            inner.state = BreakerState::Closed;
            inner.closed += 1;
            Some((from, BreakerState::Closed))
        } else {
            None
        };
        drop(inner);
        if let Some((from, to)) = transition {
            self.log_transition(from, to);
        }
    }

    /// Reports a failed compute (panic or deadline). Extends the failure
    /// streak; at `threshold` consecutive failures — or on any failure of
    /// a half-open probe — the breaker opens.
    pub fn on_failure(&self) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.lock();
        inner.consecutive_failures += 1;
        let should_open = inner.state == BreakerState::HalfOpen
            || (inner.state == BreakerState::Closed
                && inner.consecutive_failures >= self.threshold);
        let transition = if should_open {
            let from = inner.state;
            inner.state = BreakerState::Open;
            inner.since = Instant::now();
            inner.opened += 1;
            Some((from, BreakerState::Open))
        } else {
            None
        };
        drop(inner);
        if let Some((from, to)) = transition {
            self.log_transition(from, to);
        }
    }

    /// Current state and transition counters, for `/metrics`.
    pub fn snapshot(&self) -> BreakerSnapshot {
        let inner = self.lock();
        BreakerSnapshot {
            state: inner.state,
            consecutive_failures: inner.consecutive_failures,
            opened: inner.opened,
            half_opened: inner.half_opened,
            closed: inner.closed,
            fast_failed: inner.fast_failed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: usize, cooldown_ms: u64) -> CircuitBreaker {
        CircuitBreaker::new(threshold, Duration::from_millis(cooldown_ms))
    }

    #[test]
    fn disabled_breaker_always_admits() {
        let b = breaker(0, 10);
        assert!(!b.is_enabled());
        for _ in 0..10 {
            b.on_failure();
            assert!(b.admit());
        }
        assert_eq!(b.snapshot().state, BreakerState::Closed);
        assert_eq!(b.snapshot().opened, 0);
    }

    #[test]
    fn opens_after_threshold_consecutive_failures_only() {
        let b = breaker(3, 60_000);
        b.on_failure();
        b.on_failure();
        b.on_success(); // streak broken
        b.on_failure();
        b.on_failure();
        assert!(b.admit(), "still closed at 2/3");
        b.on_failure();
        assert_eq!(b.snapshot().state, BreakerState::Open);
        assert!(!b.admit(), "open fails fast");
        assert_eq!(b.snapshot().fast_failed, 1);
        assert_eq!(b.snapshot().opened, 1);
    }

    #[test]
    fn half_open_probe_closes_on_success() {
        let b = breaker(1, 20);
        b.on_failure();
        assert!(!b.admit());
        std::thread::sleep(Duration::from_millis(30));
        assert!(b.admit(), "cooldown elapsed: probe admitted");
        assert_eq!(b.snapshot().state, BreakerState::HalfOpen);
        b.on_success();
        let snap = b.snapshot();
        assert_eq!(snap.state, BreakerState::Closed);
        assert_eq!(snap.half_opened, 1);
        assert_eq!(snap.closed, 1);
        assert!(b.admit());
    }

    #[test]
    fn half_open_probe_reopens_on_failure() {
        let b = breaker(1, 20);
        b.on_failure();
        std::thread::sleep(Duration::from_millis(30));
        assert!(b.admit());
        b.on_failure();
        assert_eq!(b.snapshot().state, BreakerState::Open);
        assert_eq!(b.snapshot().opened, 2);
        assert!(!b.admit(), "fresh cooldown after the failed probe");
    }

    #[test]
    fn half_open_rejects_concurrent_requests_until_another_cooldown() {
        let b = breaker(1, 30);
        b.on_failure();
        std::thread::sleep(Duration::from_millis(40));
        assert!(b.admit(), "first probe");
        assert!(!b.admit(), "second request while probing fails fast");
        // A probe that never reports back must not wedge the route.
        std::thread::sleep(Duration::from_millis(40));
        assert!(b.admit(), "stuck probe: another probe admitted");
        assert_eq!(b.snapshot().half_opened, 2);
    }

    #[test]
    fn state_labels_and_codes_are_stable() {
        assert_eq!(BreakerState::Closed.label(), "closed");
        assert_eq!(BreakerState::Open.label(), "open");
        assert_eq!(BreakerState::HalfOpen.label(), "half_open");
        assert_eq!(BreakerState::Closed.code(), 0);
        assert_eq!(BreakerState::Open.code(), 1);
        assert_eq!(BreakerState::HalfOpen.code(), 2);
    }
}
