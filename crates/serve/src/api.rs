//! The planning API: request parsing and byte-deterministic response
//! documents.
//!
//! Everything the daemon serves is computed here as a plain function of
//! the request — the HTTP layer only moves bytes. The key property is
//! that [`plan_response_json`] is a **pure, deterministic function of the
//! spec**: equal specs produce equal bytes, which is what the plan cache
//! stores and what makes a cache hit indistinguishable from a cold
//! compute (see `docs/DETERMINISM.md`). `patrolctl plan` prints exactly
//! this document, so the offline CLI and the service can be diffed
//! byte-for-byte.

use crate::json::{parse, JsonValue};
use mule_sim::SimulationConfig;
use mule_workload::{MetricSpec, ScenarioSpec, SweepSpec};
use patrol_core::baselines::{ChbPlanner, RandomPlanner, SweepPlanner};
use patrol_core::{BTctp, BreakEdgePolicy, PlanError, Planner, RwTctp, WTctp};
use std::fmt;

/// Schema tag of `/v1/plan` responses.
pub const PLAN_SCHEMA: &str = "plan-response/v1";
/// Schema tag of `/v1/simulate` responses.
pub const SIMULATE_SCHEMA: &str = "simulate-response/v1";
/// Default replica count of `/v1/simulate` (the paper averages over 20,
/// but a service default must bound per-request work).
pub const DEFAULT_SIMULATE_REPLICAS: usize = 8;
/// Largest replica count `/v1/simulate` accepts per request.
pub const MAX_SIMULATE_REPLICAS: usize = 64;
/// Largest target count a request may ask to plan. The request body that
/// names a target count is a few dozen bytes, but generation and
/// planning cost O(n)–O(n²) in it — without a cap, one tiny request
/// could pin arbitrary memory and CPU, defeating the HTTP layer's size
/// limits. 50 000 is above the largest tracked bench instance (5 000)
/// with an order of magnitude to grow.
pub const MAX_SPEC_TARGETS: usize = 50_000;
/// Largest mule count a request may ask to plan (same rationale as
/// [`MAX_SPEC_TARGETS`]).
pub const MAX_SPEC_MULES: usize = 1_000;
/// Largest simulation horizon `/v1/simulate` accepts, seconds (the
/// event loop does work proportional to it).
pub const MAX_SPEC_HORIZON_S: f64 = 10_000_000.0;

/// Why a request could not be served.
#[derive(Debug, Clone, PartialEq)]
pub enum ApiError {
    /// The request document is malformed (bad JSON, wrong types, unknown
    /// planner, out-of-range values).
    BadRequest(String),
    /// The spec parsed but the planner rejected the scenario.
    Plan(PlanError),
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ApiError::Plan(e) => write!(f, "planning failed: {e}"),
        }
    }
}

impl std::error::Error for ApiError {}

impl From<PlanError> for ApiError {
    fn from(e: PlanError) -> Self {
        ApiError::Plan(e)
    }
}

/// The planner names the API accepts, with the same aliases as the
/// `patrolctl --planner` flag.
pub fn build_planner(name: &str) -> Option<Box<dyn Planner>> {
    Some(match name.to_ascii_lowercase().as_str() {
        "b-tctp" | "btctp" | "tctp" => Box::new(BTctp::new()),
        "w-tctp" | "wtctp" | "w-tctp-shortest" | "shortest" => {
            Box::new(WTctp::new(BreakEdgePolicy::ShortestLength))
        }
        "w-tctp-balancing" | "balancing" => Box::new(WTctp::new(BreakEdgePolicy::BalancingLength)),
        "rw-tctp" | "rwtctp" => Box::new(RwTctp::default()),
        "chb" => Box::new(ChbPlanner::new()),
        "sweep" => Box::new(SweepPlanner::new()),
        "random" => Box::new(RandomPlanner::new()),
        _ => return None,
    })
}

/// Renders a spec as its JSON document (field order fixed, so equal specs
/// render to equal bytes). Like the canonical string, the default
/// (Euclidean) metric renders nothing — responses for pre-road specs are
/// byte-identical to the pre-road era; road specs grow a trailing
/// `"metric"` field.
pub fn spec_to_json(spec: &ScenarioSpec) -> JsonValue {
    let mut fields = vec![
        ("targets", JsonValue::from(spec.targets)),
        ("mules", spec.mules.into()),
        ("seed", spec.seed.into()),
        ("vips", spec.vips.into()),
        ("vip_weight", spec.vip_weight.into()),
        ("recharge", spec.recharge.into()),
        ("planner", spec.planner.as_str().into()),
        ("horizon_s", spec.horizon_s.into()),
    ];
    if spec.metric != MetricSpec::Euclidean {
        fields.push(("metric", spec.metric.wire_name().into()));
    }
    JsonValue::object(fields)
}

fn field_u64(v: &JsonValue, key: &str, default: u64) -> Result<u64, ApiError> {
    match v.get(key) {
        None => Ok(default),
        Some(field) => field
            .as_u64()
            .ok_or_else(|| ApiError::BadRequest(format!("`{key}` must be a non-negative integer"))),
    }
}

fn field_usize(v: &JsonValue, key: &str, default: usize) -> Result<usize, ApiError> {
    field_u64(v, key, default as u64).map(|n| usize::try_from(n).unwrap_or(usize::MAX))
}

/// Parses a spec document. Missing fields take the [`ScenarioSpec`]
/// defaults (so `{"targets": 12}` is a valid request); present fields
/// must have the right type. Unknown fields are ignored.
pub fn spec_from_json(v: &JsonValue) -> Result<ScenarioSpec, ApiError> {
    if !matches!(v, JsonValue::Object(_)) {
        return Err(ApiError::BadRequest("spec must be a JSON object".into()));
    }
    let defaults = ScenarioSpec::default();
    let planner = match v.get("planner") {
        None => defaults.planner.clone(),
        Some(field) => field
            .as_str()
            .ok_or_else(|| ApiError::BadRequest("`planner` must be a string".into()))?
            .to_string(),
    };
    let horizon_s = match v.get("horizon_s") {
        None => defaults.horizon_s,
        Some(field) => field
            .as_f64()
            .ok_or_else(|| ApiError::BadRequest("`horizon_s` must be a number".into()))?,
    };
    let recharge = match v.get("recharge") {
        None => defaults.recharge,
        Some(field) => field
            .as_bool()
            .ok_or_else(|| ApiError::BadRequest("`recharge` must be a boolean".into()))?,
    };
    let metric = match v.get("metric") {
        None => defaults.metric,
        Some(field) => {
            let name = field
                .as_str()
                .ok_or_else(|| ApiError::BadRequest("`metric` must be a string".into()))?;
            MetricSpec::parse(name).ok_or_else(|| {
                ApiError::BadRequest(format!(
                    "unknown metric `{name}` (expected euclidean | road | road-grid | road-planar)"
                ))
            })?
        }
    };
    Ok(ScenarioSpec {
        targets: field_usize(v, "targets", defaults.targets)?,
        mules: field_usize(v, "mules", defaults.mules)?,
        seed: field_u64(v, "seed", defaults.seed)?,
        vips: field_usize(v, "vips", defaults.vips)?,
        vip_weight: u32::try_from(field_u64(v, "vip_weight", u64::from(defaults.vip_weight))?)
            .map_err(|_| ApiError::BadRequest("`vip_weight` does not fit in 32 bits".into()))?,
        recharge,
        planner,
        horizon_s,
        metric,
    })
}

/// Parses a spec from raw request-body bytes.
pub fn spec_from_body(body: &[u8]) -> Result<ScenarioSpec, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::BadRequest("request body is not UTF-8".into()))?;
    let doc = parse(text).map_err(|e| ApiError::BadRequest(format!("invalid JSON: {e}")))?;
    spec_from_json(&doc)
}

/// Rejects specs whose sizes would let one small request pin unbounded
/// memory or CPU. Applied by both compute entry points, so the caps hold
/// for the daemon and for `patrolctl plan` alike.
fn validate_spec(spec: &ScenarioSpec) -> Result<(), ApiError> {
    if spec.targets > MAX_SPEC_TARGETS {
        return Err(ApiError::BadRequest(format!(
            "`targets` exceeds the service limit of {MAX_SPEC_TARGETS}"
        )));
    }
    if spec.mules > MAX_SPEC_MULES {
        return Err(ApiError::BadRequest(format!(
            "`mules` exceeds the service limit of {MAX_SPEC_MULES}"
        )));
    }
    if !spec.horizon_s.is_finite() || spec.horizon_s < 0.0 || spec.horizon_s > MAX_SPEC_HORIZON_S {
        return Err(ApiError::BadRequest(format!(
            "`horizon_s` must be a finite number in [0, {MAX_SPEC_HORIZON_S:?}]"
        )));
    }
    Ok(())
}

/// The simulation configuration a spec implies: full energy accounting
/// only when a recharge station exists, pure timing otherwise (the same
/// rule `patrolctl simulate` applies).
fn sim_config_for(spec: &ScenarioSpec) -> SimulationConfig {
    if spec.recharge {
        SimulationConfig::default()
    } else {
        SimulationConfig::timing_only()
    }
}

/// Computes the `/v1/plan` response document for a spec: the planner's
/// tour (per-mule closed walks) plus summary metrics, rendered as pretty
/// JSON with a trailing newline.
///
/// **Determinism contract:** equal specs produce byte-identical strings —
/// this is the value the plan cache stores, and `patrolctl plan` prints
/// the same bytes offline.
pub fn plan_response_json(spec: &ScenarioSpec) -> Result<String, ApiError> {
    validate_spec(spec)?;
    let planner = build_planner(&spec.planner)
        .ok_or_else(|| ApiError::BadRequest(format!("unknown planner `{}`", spec.planner)))?;
    let scenario = spec.scenario_config().generate();
    let plan = planner.plan(&scenario)?;

    let itineraries: Vec<JsonValue> = plan
        .itineraries
        .iter()
        .map(|it| {
            let cycle: Vec<JsonValue> = it
                .cycle
                .iter()
                .map(|w| {
                    JsonValue::object(vec![
                        ("node", w.node.0.into()),
                        ("x", w.position.x.into()),
                        ("y", w.position.y.into()),
                    ])
                })
                .collect();
            let mut fields = vec![
                ("mule", JsonValue::from(it.mule_index)),
                (
                    "start",
                    JsonValue::Array(vec![it.start_position.x.into(), it.start_position.y.into()]),
                ),
                ("entry_offset_m", it.entry_offset_m.into()),
                ("cycle_length_m", it.cycle_length().into()),
                ("cycle", JsonValue::Array(cycle)),
            ];
            // Road plans also expose the driven geometry (the expanded
            // polyline, `[[x, y], …]`); Euclidean responses stay
            // byte-identical by omitting the field.
            if !it.leg_paths.is_empty() {
                let path: Vec<JsonValue> = it
                    .expanded_points()
                    .iter()
                    .map(|p| JsonValue::Array(vec![p.x.into(), p.y.into()]))
                    .collect();
                fields.push(("path", JsonValue::Array(path)));
            }
            JsonValue::object(fields)
        })
        .collect();

    let doc = JsonValue::object(vec![
        ("schema", PLAN_SCHEMA.into()),
        ("fingerprint", format!("{:016x}", spec.fingerprint()).into()),
        ("spec", spec_to_json(spec)),
        ("planner", plan.planner_name.as_str().into()),
        ("mules", plan.mule_count().into()),
        ("targets", spec.targets.into()),
        ("max_cycle_length_m", plan.max_cycle_length().into()),
        ("covered_nodes", plan.covered_nodes().len().into()),
        ("itineraries", JsonValue::Array(itineraries)),
    ]);
    Ok(doc.to_pretty_string())
}

/// A parsed `/v1/simulate` request: the spec plus execution knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateRequest {
    /// The scenario + planner to simulate.
    pub spec: ScenarioSpec,
    /// Replications (capped at [`MAX_SIMULATE_REPLICAS`]).
    pub replicas: usize,
}

/// Parses a `/v1/simulate` request body: either `{"spec": {...},
/// "replicas": N}` or a bare spec object (replicas defaulted).
pub fn simulate_request_from_body(body: &[u8]) -> Result<SimulateRequest, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::BadRequest("request body is not UTF-8".into()))?;
    let doc = parse(text).map_err(|e| ApiError::BadRequest(format!("invalid JSON: {e}")))?;
    let (spec_doc, replicas) = match doc.get("spec") {
        Some(spec_doc) => {
            let replicas = field_usize(&doc, "replicas", DEFAULT_SIMULATE_REPLICAS)?;
            (spec_doc.clone(), replicas)
        }
        None => (doc, DEFAULT_SIMULATE_REPLICAS),
    };
    if replicas == 0 || replicas > MAX_SIMULATE_REPLICAS {
        return Err(ApiError::BadRequest(format!(
            "`replicas` must be between 1 and {MAX_SIMULATE_REPLICAS}"
        )));
    }
    Ok(SimulateRequest {
        spec: spec_from_json(&spec_doc)?,
        replicas,
    })
}

fn stats_json(stats: &mule_metrics::SummaryStatistics) -> JsonValue {
    JsonValue::object(vec![
        ("mean", stats.mean.into()),
        ("std_dev", stats.std_dev.into()),
        ("ci95", stats.ci95_half_width().into()),
        ("min", stats.min.into()),
        ("max", stats.max.into()),
    ])
}

/// Runs a replicated simulation of the request's spec on the `mule-par`
/// pool and renders the aggregated `SweepReport`-style summary. Like
/// planning, this is a deterministic function of the request (the worker
/// count is not an input — see `docs/DETERMINISM.md`).
pub fn simulate_response_json(
    request: &SimulateRequest,
    workers: Option<usize>,
) -> Result<String, ApiError> {
    let spec = &request.spec;
    validate_spec(spec)?;
    if build_planner(&spec.planner).is_none() {
        return Err(ApiError::BadRequest(format!(
            "unknown planner `{}`",
            spec.planner
        )));
    }
    let sweep = SweepSpec::new(spec.scenario_config())
        .with_replicas(request.replicas)
        .with_horizon(spec.horizon_s);
    let planner_name = spec.planner.clone();
    let factory = move || build_planner(&planner_name).expect("planner validated above");
    let cells = mule_sim::run_sweep(&factory, &sweep, &sim_config_for(spec), workers);
    let report = mule_metrics::SweepReport::from_cells(&cells);
    let cell = report
        .cells
        .first()
        .ok_or_else(|| ApiError::BadRequest("empty sweep grid".into()))?;
    if cell.replicas == 0 {
        // Every replica failed to plan: surface the planner's error.
        let first_failure = cells
            .first()
            .and_then(|c| c.failures.first().cloned())
            .unwrap_or(PlanError::NoTargets);
        return Err(ApiError::Plan(first_failure));
    }

    let doc = JsonValue::object(vec![
        ("schema", SIMULATE_SCHEMA.into()),
        ("fingerprint", format!("{:016x}", spec.fingerprint()).into()),
        ("spec", spec_to_json(spec)),
        ("replicas", cell.replicas.into()),
        ("failures", cell.failures.into()),
        ("replans", cell.replans.into()),
        ("max_interval_s", stats_json(&cell.max_interval_s)),
        ("avg_dcdt_s", stats_json(&cell.avg_dcdt_s)),
        ("distance_m", stats_json(&cell.distance_m)),
    ]);
    Ok(doc.to_pretty_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_json_roundtrips_through_text() {
        let spec = ScenarioSpec::default()
            .with_seed(9)
            .with_targets(14)
            .with_planner("chb");
        let text = spec_to_json(&spec).to_json_string();
        let back = spec_from_body(text.as_bytes()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn missing_fields_take_defaults_and_unknown_fields_are_ignored() {
        let spec = spec_from_body(br#"{"targets": 12, "future_knob": [1,2]}"#).unwrap();
        assert_eq!(spec.targets, 12);
        assert_eq!(spec.mules, ScenarioSpec::default().mules);
        assert_eq!(spec.planner, "b-tctp");
        let empty = spec_from_body(b"{}").unwrap();
        assert_eq!(empty, ScenarioSpec::default());
    }

    #[test]
    fn type_errors_are_reported_per_field() {
        for (body, needle) in [
            (&br#"{"targets": "ten"}"#[..], "`targets`"),
            (br#"{"seed": -1}"#, "`seed`"),
            (br#"{"planner": 7}"#, "`planner`"),
            (br#"{"recharge": "yes"}"#, "`recharge`"),
            (br#"{"horizon_s": []}"#, "`horizon_s`"),
            (br#"[1,2]"#, "object"),
            (b"not json", "invalid JSON"),
            (&[0xff, 0xfe], "UTF-8"),
        ] {
            let err = spec_from_body(body).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "body {body:?}: {err} should mention {needle}"
            );
        }
    }

    #[test]
    fn planner_names_and_aliases_build_planners() {
        for name in [
            "b-tctp",
            "BTCTP",
            "tctp",
            "w-tctp",
            "shortest",
            "balancing",
            "rw-tctp",
            "chb",
            "sweep",
            "random",
        ] {
            assert!(build_planner(name).is_some(), "{name}");
        }
        assert!(build_planner("dijkstra").is_none());
    }

    #[test]
    fn plan_response_is_deterministic_and_parses() {
        let spec = ScenarioSpec::default().with_targets(8).with_mules(3);
        let a = plan_response_json(&spec).unwrap();
        let b = plan_response_json(&spec).unwrap();
        assert_eq!(a, b, "equal specs must produce identical bytes");
        let doc = parse(&a).unwrap();
        assert_eq!(
            doc.get("schema").and_then(JsonValue::as_str),
            Some(PLAN_SCHEMA)
        );
        assert_eq!(
            doc.get("planner").and_then(JsonValue::as_str),
            Some("B-TCTP")
        );
        assert_eq!(doc.get("mules").and_then(JsonValue::as_usize), Some(3));
        let its = doc
            .get("itineraries")
            .and_then(JsonValue::as_array)
            .unwrap();
        assert_eq!(its.len(), 3);
        assert!(its[0].get("cycle").and_then(JsonValue::as_array).is_some());
        assert!(
            doc.get("max_cycle_length_m")
                .and_then(JsonValue::as_f64)
                .unwrap()
                > 0.0
        );
        assert_eq!(
            doc.get("fingerprint").and_then(JsonValue::as_str),
            Some(format!("{:016x}", spec.fingerprint()).as_str())
        );
    }

    #[test]
    fn oversized_specs_are_rejected_before_any_work() {
        let huge_targets = ScenarioSpec {
            targets: MAX_SPEC_TARGETS + 1,
            ..ScenarioSpec::default()
        };
        let err = plan_response_json(&huge_targets).unwrap_err();
        assert!(err.to_string().contains("`targets`"), "{err}");

        let huge_mules = ScenarioSpec {
            mules: MAX_SPEC_MULES + 1,
            ..ScenarioSpec::default()
        };
        assert!(plan_response_json(&huge_mules).is_err());

        for horizon in [f64::NAN, f64::INFINITY, -1.0, MAX_SPEC_HORIZON_S * 2.0] {
            let bad = ScenarioSpec {
                horizon_s: horizon,
                ..ScenarioSpec::default()
            };
            let request = SimulateRequest {
                spec: bad.clone(),
                replicas: 1,
            };
            assert!(
                matches!(
                    simulate_response_json(&request, Some(1)).unwrap_err(),
                    ApiError::BadRequest(_)
                ),
                "horizon {horizon}"
            );
            // Planning ignores the horizon semantically but still rejects
            // a nonsensical spec, keeping the two entry points aligned.
            assert!(plan_response_json(&bad).is_err());
        }

        // The caps are limits, not off-by-one traps.
        let at_cap = ScenarioSpec {
            targets: 60,
            mules: 5,
            horizon_s: MAX_SPEC_HORIZON_S,
            ..ScenarioSpec::default()
        };
        assert!(plan_response_json(&at_cap).is_ok());
    }

    #[test]
    fn metric_field_parses_and_round_trips() {
        let road = spec_from_body(br#"{"targets": 8, "metric": "road"}"#).unwrap();
        assert_eq!(
            road.metric,
            MetricSpec::Road(mule_road::RoadNetKind::Grid),
            "`road` aliases the grid network"
        );
        let planar = spec_from_body(br#"{"metric": "road-planar"}"#).unwrap();
        assert_eq!(
            planar.metric,
            MetricSpec::Road(mule_road::RoadNetKind::Planar)
        );
        // Round trip through the rendered JSON.
        let text = spec_to_json(&planar).to_pretty_string();
        assert!(text.contains("\"metric\": \"road-planar\""), "{text}");
        assert_eq!(spec_from_body(text.as_bytes()).unwrap(), planar);
        // The default metric is absent from the document — pre-road
        // responses stay byte-identical.
        let default_doc = spec_to_json(&ScenarioSpec::default()).to_json_string();
        assert!(!default_doc.contains("metric"));
        // Bad values are typed errors.
        for body in [&br#"{"metric": "warp"}"#[..], br#"{"metric": 3}"#] {
            let err = spec_from_body(body).unwrap_err();
            assert!(err.to_string().contains("metric"), "{err}");
        }
    }

    #[test]
    fn road_plan_response_carries_geometry_and_its_own_fingerprint() {
        let spec = ScenarioSpec {
            targets: 8,
            mules: 2,
            metric: MetricSpec::Road(mule_road::RoadNetKind::Grid),
            ..ScenarioSpec::default()
        };
        let a = plan_response_json(&spec).unwrap();
        assert_eq!(a, plan_response_json(&spec).unwrap(), "deterministic");
        let doc = parse(&a).unwrap();
        assert_eq!(
            doc.get("spec")
                .unwrap()
                .get("metric")
                .and_then(JsonValue::as_str),
            Some("road-grid")
        );
        let its = doc
            .get("itineraries")
            .and_then(JsonValue::as_array)
            .unwrap();
        let path = its[0].get("path").and_then(JsonValue::as_array).unwrap();
        let cycle = its[0].get("cycle").and_then(JsonValue::as_array).unwrap();
        assert!(
            path.len() > cycle.len(),
            "road geometry has more vertices than stops"
        );
        // Same knobs, euclidean metric: different fingerprint, no path.
        let euclid = ScenarioSpec {
            metric: MetricSpec::Euclidean,
            ..spec.clone()
        };
        let e = plan_response_json(&euclid).unwrap();
        let edoc = parse(&e).unwrap();
        assert_ne!(
            doc.get("fingerprint").and_then(JsonValue::as_str),
            edoc.get("fingerprint").and_then(JsonValue::as_str),
            "metric feeds the cache key"
        );
        let eits = edoc
            .get("itineraries")
            .and_then(JsonValue::as_array)
            .unwrap();
        assert!(eits[0].get("path").is_none());
    }

    #[test]
    fn plan_errors_surface_typed() {
        let unknown = ScenarioSpec::default().with_planner("nonsense");
        assert!(matches!(
            plan_response_json(&unknown).unwrap_err(),
            ApiError::BadRequest(_)
        ));
        let no_mules = ScenarioSpec::default().with_mules(0);
        assert_eq!(
            plan_response_json(&no_mules).unwrap_err(),
            ApiError::Plan(PlanError::NoMules)
        );
    }

    #[test]
    fn simulate_request_accepts_wrapped_and_bare_specs() {
        let wrapped =
            simulate_request_from_body(br#"{"spec": {"targets": 6}, "replicas": 3}"#).unwrap();
        assert_eq!(wrapped.spec.targets, 6);
        assert_eq!(wrapped.replicas, 3);
        let bare = simulate_request_from_body(br#"{"targets": 6}"#).unwrap();
        assert_eq!(bare.replicas, DEFAULT_SIMULATE_REPLICAS);
        for bad in [
            &br#"{"spec": {}, "replicas": 0}"#[..],
            br#"{"spec": {}, "replicas": 1000}"#,
        ] {
            assert!(simulate_request_from_body(bad).is_err());
        }
    }

    #[test]
    fn simulate_response_reports_aggregates() {
        let request = SimulateRequest {
            spec: ScenarioSpec {
                targets: 6,
                horizon_s: 5_000.0,
                ..ScenarioSpec::default()
            },
            replicas: 3,
        };
        let a = simulate_response_json(&request, Some(1)).unwrap();
        let b = simulate_response_json(&request, Some(2)).unwrap();
        assert_eq!(a, b, "worker count is not an input");
        let doc = parse(&a).unwrap();
        assert_eq!(doc.get("replicas").and_then(JsonValue::as_usize), Some(3));
        assert!(
            doc.get("max_interval_s")
                .unwrap()
                .get("mean")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0
        );
        assert!(doc.get("avg_dcdt_s").unwrap().get("ci95").is_some());
    }

    #[test]
    fn simulate_planning_failures_surface_typed() {
        let request = SimulateRequest {
            spec: ScenarioSpec::default().with_mules(0),
            replicas: 2,
        };
        assert_eq!(
            simulate_response_json(&request, Some(1)).unwrap_err(),
            ApiError::Plan(PlanError::NoMules)
        );
    }
}
