//! A small, dependency-free JSON value: parse and serialise.
//!
//! The in-tree `serde` shim is a no-op (its derives expand to nothing —
//! see `crates/shims/README.md`), so the service layer needs its own wire
//! format. This module implements exactly what the API requires and
//! nothing more:
//!
//! * [`JsonValue`] — the usual six-way value enum. Objects preserve
//!   **insertion order** (a `Vec` of pairs, not a map), so serialisation
//!   is deterministic: the same value always renders to the same bytes,
//!   which is what lets the plan cache promise byte-identical responses.
//! * [`JsonNumber`] — numbers keep their integer-ness: a `u64` seed
//!   survives a round trip exactly (it would lose precision above 2⁵³ as
//!   an `f64`). Floats serialise with Rust's shortest-round-trip `{:?}`
//!   formatting, so `f64 → text → f64` is the identity; non-finite floats
//!   serialise as `null` (JSON has no NaN).
//! * [`parse`] — a recursive-descent parser with a depth limit, full
//!   string-escape handling (including `\uXXXX` surrogate pairs) and byte
//!   positions in every error.

use std::fmt;

/// Maximum nesting depth the parser accepts; deeper documents error out
/// instead of overflowing the stack.
const MAX_DEPTH: usize = 64;

/// A JSON number: integers keep their exact value, floats are `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JsonNumber {
    /// A non-negative integer (anything that parses as `u64`).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A number with a fraction or exponent.
    F64(f64),
}

impl JsonNumber {
    /// The number as `f64` (lossy above 2⁵³).
    pub fn as_f64(self) -> f64 {
        match self {
            JsonNumber::U64(n) => n as f64,
            JsonNumber::I64(n) => n as f64,
            JsonNumber::F64(f) => f,
        }
    }

    /// The number as `u64` if it is a non-negative integer (integral
    /// floats like `5.0` qualify — JSON clients routinely send them).
    pub fn as_u64(self) -> Option<u64> {
        match self {
            JsonNumber::U64(n) => Some(n),
            JsonNumber::I64(n) => u64::try_from(n).ok(),
            JsonNumber::F64(f)
                if f.fract() == 0.0 && (0.0..=9.007_199_254_740_992e15).contains(&f) =>
            {
                Some(f as u64)
            }
            JsonNumber::F64(_) => None,
        }
    }
}

/// A parsed (or to-be-serialised) JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Number(JsonNumber),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; pairs keep insertion order so rendering is
    /// deterministic. Lookup takes the **last** pair with a given key
    /// (matching the common parser behaviour for duplicate keys).
    Object(Vec<(String, JsonValue)>),
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<u64> for JsonValue {
    fn from(n: u64) -> Self {
        JsonValue::Number(JsonNumber::U64(n))
    }
}

impl From<usize> for JsonValue {
    fn from(n: usize) -> Self {
        JsonValue::Number(JsonNumber::U64(n as u64))
    }
}

impl From<u32> for JsonValue {
    fn from(n: u32) -> Self {
        JsonValue::Number(JsonNumber::U64(u64::from(n)))
    }
}

impl From<i64> for JsonValue {
    fn from(n: i64) -> Self {
        if n >= 0 {
            JsonValue::Number(JsonNumber::U64(n as u64))
        } else {
            JsonValue::Number(JsonNumber::I64(n))
        }
    }
}

impl From<f64> for JsonValue {
    fn from(f: f64) -> Self {
        JsonValue::Number(JsonNumber::F64(f))
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::String(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::String(s)
    }
}

impl JsonValue {
    /// Convenience constructor for an object from `(key, value)` pairs.
    pub fn object(pairs: Vec<(&str, JsonValue)>) -> Self {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object (`None` for missing keys and
    /// non-objects). Duplicate keys resolve to the last occurrence.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is a non-negative integer that fits.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises compactly (no whitespace). Deterministic: equal values
    /// produce equal bytes.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialises with 2-space indentation and a trailing newline — the
    /// format of the tracked artefacts and API responses (stable and
    /// diff-friendly).
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Number(n) => write_number(out, *n),
            JsonValue::String(s) => write_string(out, s),
            JsonValue::Array(items) => {
                write_seq(out, indent, level, '[', ']', items.len(), |out, i, lvl| {
                    items[i].write(out, indent, lvl);
                });
            }
            JsonValue::Object(pairs) => {
                write_seq(out, indent, level, '{', '}', pairs.len(), |out, i, lvl| {
                    write_string(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, lvl);
                });
            }
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json_string())
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (level + 1)));
        }
        write_item(out, i, level + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * level));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: JsonNumber) {
    match n {
        JsonNumber::U64(v) => out.push_str(&v.to_string()),
        JsonNumber::I64(v) => out.push_str(&v.to_string()),
        JsonNumber::F64(f) if f.is_finite() => {
            // `{:?}` is Rust's shortest representation that parses back to
            // the same f64 — deterministic and lossless.
            out.push_str(&format!("{f:?}"));
        }
        JsonNumber::F64(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub position: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.position)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        input,
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            position: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("document nests too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.parse_literal("null", JsonValue::Null),
            Some(b't') => self.parse_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.input[self.pos..].starts_with(literal) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{literal}`")))
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut run_start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    out.push_str(&self.input[run_start..self.pos]);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(&self.input[run_start..self.pos]);
                    self.pos += 1;
                    out.push(self.parse_escape()?);
                    run_start = self.pos;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.error("unescaped control character in string"));
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn parse_escape(&mut self) -> Result<char, JsonError> {
        let c = self
            .peek()
            .ok_or_else(|| self.error("unterminated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let first = self.parse_hex4()?;
                let code = if (0xD800..0xDC00).contains(&first) {
                    // High surrogate: a low surrogate must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let second = self.parse_hex4()?;
                        if !(0xDC00..0xE000).contains(&second) {
                            return Err(self.error("invalid low surrogate"));
                        }
                        0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                    } else {
                        return Err(self.error("lone high surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&first) {
                    return Err(self.error("lone low surrogate"));
                } else {
                    first
                };
                char::from_u32(code).ok_or_else(|| self.error("invalid unicode escape"))?
            }
            _ => return Err(self.error("unknown escape character")),
        })
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = &self.input[self.pos..end];
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid hex in \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        // Scan the maximal number-shaped token; `inf`/`NaN` can never form
        // because the charset excludes letters other than e/E.
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let token = &self.input[start..self.pos];
        if !is_float {
            if let Ok(n) = token.parse::<u64>() {
                return Ok(JsonValue::Number(JsonNumber::U64(n)));
            }
            if let Ok(n) = token.parse::<i64>() {
                return Ok(JsonValue::Number(JsonNumber::I64(n)));
            }
        }
        match token.parse::<f64>() {
            Ok(f) if f.is_finite() => Ok(JsonValue::Number(JsonNumber::F64(f))),
            _ => {
                self.pos = start;
                Err(self.error("invalid number"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &JsonValue) -> JsonValue {
        parse(&v.to_json_string()).expect("roundtrip parse")
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            JsonValue::Null,
            JsonValue::from(true),
            JsonValue::from(false),
            JsonValue::from(0u64),
            JsonValue::from(u64::MAX),
            JsonValue::from(-42i64),
            JsonValue::from(1.5),
            JsonValue::from(1e300),
            JsonValue::from(-2.5e-8),
            JsonValue::from("hello"),
            JsonValue::from(""),
        ] {
            assert_eq!(roundtrip(&v), v, "value {v:?}");
        }
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        // 2^53 + 1 is not representable as f64; the integer path must
        // carry it.
        let v = JsonValue::from(9_007_199_254_740_993u64);
        assert_eq!(v.to_json_string(), "9007199254740993");
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn float_shortest_form_is_lossless() {
        for f in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 40_000.0, -0.0] {
            let v = JsonValue::from(f);
            let back = roundtrip(&v);
            let JsonValue::Number(JsonNumber::F64(g)) = back else {
                panic!("expected float back, got {back:?}");
            };
            assert_eq!(g.to_bits(), f.to_bits(), "bit-exact for {f}");
        }
    }

    #[test]
    fn non_finite_floats_serialise_as_null() {
        assert_eq!(JsonValue::from(f64::NAN).to_json_string(), "null");
        assert_eq!(JsonValue::from(f64::INFINITY).to_json_string(), "null");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let tricky = "quote\" back\\slash \n\r\t ctrl\u{1} unicode→é 🦀";
        let v = JsonValue::from(tricky);
        let text = v.to_json_string();
        assert!(text.contains("\\\""));
        assert!(text.contains("\\\\"));
        assert!(text.contains("\\u0001"));
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn unicode_escapes_parse_including_surrogate_pairs() {
        assert_eq!(parse(r#""éA""#).unwrap(), JsonValue::from("éA"));
        // 🦀 U+1F980 as a surrogate pair.
        assert_eq!(parse(r#""🦀""#).unwrap(), JsonValue::from("🦀"));
        assert!(parse(r#""\ud83e""#).is_err(), "lone high surrogate");
        assert!(parse(r#""\udd80""#).is_err(), "lone low surrogate");
        assert!(parse(r#""\u12""#).is_err(), "truncated escape");
    }

    #[test]
    fn nested_structures_roundtrip_and_preserve_order() {
        let v = JsonValue::object(vec![
            ("zeta", JsonValue::from(1u64)),
            (
                "alpha",
                JsonValue::Array(vec![
                    JsonValue::Null,
                    JsonValue::object(vec![("x", JsonValue::from(2.5))]),
                ]),
            ),
            ("empty_obj", JsonValue::Object(vec![])),
            ("empty_arr", JsonValue::Array(vec![])),
        ]);
        assert_eq!(roundtrip(&v), v);
        // Insertion order survives serialisation (zeta before alpha).
        let text = v.to_json_string();
        assert!(text.find("zeta").unwrap() < text.find("alpha").unwrap());
    }

    #[test]
    fn duplicate_keys_resolve_to_the_last_value() {
        let v = parse(r#"{"a": 1, "a": 2}"#).unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_u64), Some(2));
    }

    #[test]
    fn accessors_extract_and_reject() {
        let v = parse(r#"{"n": 5, "f": 5.0, "neg": -3, "s": "x", "b": true, "arr": [1]}"#).unwrap();
        assert_eq!(v.get("n").and_then(JsonValue::as_u64), Some(5));
        assert_eq!(
            v.get("f").and_then(JsonValue::as_u64),
            Some(5),
            "integral float"
        );
        assert_eq!(v.get("neg").and_then(JsonValue::as_u64), None);
        assert_eq!(v.get("neg").and_then(JsonValue::as_f64), Some(-3.0));
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(
            v.get("arr")
                .and_then(JsonValue::as_array)
                .map(<[JsonValue]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(JsonValue::Null.get("x"), None);
    }

    #[test]
    fn whitespace_is_tolerated_and_garbage_rejected() {
        assert!(parse("  { \"a\" :\n[ 1 , 2 ]\t}  ").is_ok());
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "nul",
            "1.2.3",
            "01x",
            "[1] trailing",
            "\"unterminated",
            "{'single': 1}",
            "--1",
            "1e",
            "+1",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn depth_limit_rejects_pathological_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"), "{err}");
        // Error display carries the position.
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn pretty_printing_is_parseable_and_ends_with_newline() {
        let v = JsonValue::object(vec![
            (
                "a",
                JsonValue::Array(vec![JsonValue::from(1u64), JsonValue::from(2u64)]),
            ),
            ("b", JsonValue::object(vec![("c", JsonValue::Null)])),
        ]);
        let pretty = v.to_pretty_string();
        assert!(pretty.ends_with('\n'));
        assert!(pretty.contains("\n  \"a\": ["));
        assert_eq!(parse(&pretty).unwrap(), v);
    }
}
