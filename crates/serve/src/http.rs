//! Minimal HTTP/1.1 framing over `std::io` streams.
//!
//! Implements exactly the subset the planning service and its load
//! generator need: request/response lines, headers, `Content-Length`
//! bodies and keep-alive. No chunked transfer encoding (a request with
//! `Transfer-Encoding` is rejected with 411), no TLS, no HTTP/2 — this is
//! a service for trusted infrastructure, not the open internet, and the
//! framing layer is deliberately small enough to audit in one sitting.
//!
//! Hard limits ([`MAX_HEAD_BYTES`], [`MAX_BODY_BYTES`]) bound the memory
//! any single connection can pin, so a malformed or hostile peer cannot
//! balloon the server.

use std::io::{BufRead, Write};

/// Largest accepted request/status line + headers block, bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest accepted request body, bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (path; query strings are not split off).
    pub path: String,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the peer asked to keep the connection open (HTTP/1.1
    /// default) or to close it.
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why reading a request failed.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before sending a (complete)
    /// request. A clean EOF before the first byte is *not* an error —
    /// [`read_request`] returns `Ok(None)` for that.
    Closed,
    /// Request line or headers are malformed (maps to 400).
    BadRequest(String),
    /// Head or body exceeds the hard limits (maps to 431/413).
    TooLarge(&'static str),
    /// The request needs a length we do not implement (maps to 411).
    LengthRequired,
    /// The underlying transport failed (including read timeouts).
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed mid-request"),
            HttpError::BadRequest(msg) => write!(f, "malformed request: {msg}"),
            HttpError::TooLarge(what) => write!(f, "{what} too large"),
            HttpError::LengthRequired => write!(f, "length required"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads one line terminated by `\n` (tolerating a trailing `\r`),
/// bounding the total bytes consumed. Returns `None` on EOF before any
/// byte.
fn read_line(reader: &mut impl BufRead, budget: &mut usize) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Closed);
            }
            Ok(_) => {
                if *budget == 0 {
                    return Err(HttpError::TooLarge("request head"));
                }
                *budget -= 1;
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    let text = String::from_utf8(line)
                        .map_err(|_| HttpError::BadRequest("non-UTF-8 header line".into()))?;
                    return Ok(Some(text));
                }
                line.push(byte[0]);
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// Reads one request from the stream. `Ok(None)` means the peer closed
/// the connection cleanly between requests (normal keep-alive shutdown).
pub fn read_request(reader: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
    let mut budget = MAX_HEAD_BYTES;
    let request_line = match read_line(reader, &mut budget)? {
        None => return Ok(None),
        Some(line) => line,
    };
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m.to_string(), p.to_string(), v),
        _ => return Err(HttpError::BadRequest("bad request line".into())),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest("unsupported HTTP version".into()));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, &mut budget)?.ok_or(HttpError::Closed)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest("header without colon".into()))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut request = Request {
        method,
        path,
        headers,
        body: Vec::new(),
    };

    if request.header("transfer-encoding").is_some() {
        return Err(HttpError::LengthRequired);
    }
    if let Some(len_text) = request.header("content-length") {
        let len: usize = len_text
            .parse()
            .map_err(|_| HttpError::BadRequest("bad content-length".into()))?;
        if len > MAX_BODY_BYTES {
            return Err(HttpError::TooLarge("request body"));
        }
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                HttpError::Closed
            } else {
                HttpError::Io(e)
            }
        })?;
        request.body = body;
    }
    Ok(Some(request))
}

/// An HTTP response under construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers (`Content-Length`, `Content-Type` and `Connection`
    /// are emitted automatically).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A response with an explicit `Content-Type` (suppresses the default
    /// `application/json`). Used by the Prometheus `/metrics` endpoint.
    pub fn text(status: u16, content_type: &str, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            headers: vec![("Content-Type".to_string(), content_type.to_string())],
            body: body.into(),
        }
    }

    /// A JSON error document `{"error": …}` with the given status.
    pub fn error(status: u16, message: &str) -> Self {
        let doc = crate::json::JsonValue::object(vec![
            ("error", crate::json::JsonValue::from(message)),
            ("status", crate::json::JsonValue::from(u64::from(status))),
        ]);
        Response::json(status, doc.to_pretty_string())
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Serialises the response to the wire, flushing at the end.
    /// `keep_alive` controls the emitted `Connection` header.
    pub fn write_to(&self, writer: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\n",
            self.status,
            status_reason(self.status)
        );
        let has_content_type = self
            .headers
            .iter()
            .any(|(name, _)| name.eq_ignore_ascii_case("content-type"));
        if !has_content_type {
            head.push_str("Content-Type: application/json\r\n");
        }
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        head.push_str(if keep_alive {
            "Connection: keep-alive\r\n"
        } else {
            "Connection: close\r\n"
        });
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        writer.write_all(head.as_bytes())?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

/// Reason phrase for the status codes this service emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// A response read back by a client: status, headers (lower-cased names)
/// and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header with the given lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Reads one response from the stream (the client half of the protocol,
/// used by `loadgen` and the tests).
pub fn read_response(reader: &mut impl BufRead) -> Result<ClientResponse, HttpError> {
    let mut budget = MAX_HEAD_BYTES;
    let status_line = read_line(reader, &mut budget)?.ok_or(HttpError::Closed)?;
    let mut parts = status_line.split_whitespace();
    let (version, status) = (parts.next(), parts.next());
    if !version.is_some_and(|v| v.starts_with("HTTP/1.")) {
        return Err(HttpError::BadRequest("bad status line".into()));
    }
    let status: u16 = status
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::BadRequest("bad status code".into()))?;

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, &mut budget)?.ok_or(HttpError::Closed)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let response = ClientResponse {
        status,
        headers,
        body: Vec::new(),
    };
    let len: usize = response
        .header("content-length")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    if len > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge("response body"));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).map_err(HttpError::Io)?;
    Ok(ClientResponse { body, ..response })
}

/// Writes a request (the client half), flushing at the end.
pub fn write_request(
    writer: &mut impl Write,
    method: &str,
    path: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: mule-serve\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    writer.write_all(head.as_bytes())?;
    writer.write_all(body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse_bytes(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn a_full_post_request_parses() {
        let raw = b"POST /v1/plan HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";
        let req = parse_bytes(raw).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/plan");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"body");
        assert!(req.keep_alive(), "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn bare_lf_lines_and_connection_close_are_honoured() {
        let raw = b"GET /healthz HTTP/1.1\nConnection: CLOSE\n\n";
        let req = parse_bytes(raw).unwrap().unwrap();
        assert_eq!(req.path, "/healthz");
        assert!(!req.keep_alive());
    }

    #[test]
    fn clean_eof_is_none_and_truncation_is_closed() {
        assert!(parse_bytes(b"").unwrap().is_none());
        assert!(matches!(
            parse_bytes(b"GET / HTTP/1.1\r\nHost"),
            Err(HttpError::Closed)
        ));
        assert!(matches!(
            parse_bytes(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::Closed)
        ));
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(matches!(
            parse_bytes(b"GARBAGE\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse_bytes(b"GET / SPDY/3\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse_bytes(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse_bytes(b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse_bytes(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::LengthRequired)
        ));
    }

    #[test]
    fn oversized_heads_and_bodies_are_bounded() {
        let mut huge = Vec::from(&b"GET / HTTP/1.1\r\n"[..]);
        huge.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 10));
        assert!(matches!(
            parse_bytes(&huge),
            Err(HttpError::TooLarge("request head"))
        ));
        let big_body = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse_bytes(big_body.as_bytes()),
            Err(HttpError::TooLarge("request body"))
        ));
    }

    #[test]
    fn responses_roundtrip_through_the_client_reader() {
        let response = Response::json(200, "{\"ok\":true}")
            .with_header("X-Cache", "hit")
            .with_header("Retry-After", "1");
        let mut wire = Vec::new();
        response.write_to(&mut wire, true).unwrap();
        let text = String::from_utf8(wire.clone()).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));

        let back = read_response(&mut BufReader::new(wire.as_slice())).unwrap();
        assert_eq!(back.status, 200);
        assert_eq!(back.header("x-cache"), Some("hit"));
        assert_eq!(back.header("retry-after"), Some("1"));
        assert_eq!(back.body_text(), "{\"ok\":true}");
    }

    #[test]
    fn error_responses_carry_a_json_document() {
        let response = Response::error(422, "no mules");
        assert_eq!(response.status, 422);
        let text = String::from_utf8(response.body.clone()).unwrap();
        let doc = crate::json::parse(&text).unwrap();
        assert_eq!(
            doc.get("error").and_then(crate::json::JsonValue::as_str),
            Some("no mules")
        );
        assert_eq!(
            doc.get("status").and_then(crate::json::JsonValue::as_u64),
            Some(422)
        );
    }

    #[test]
    fn request_writer_produces_parseable_requests() {
        let mut wire = Vec::new();
        write_request(&mut wire, "POST", "/v1/plan", b"{\"targets\":5}").unwrap();
        let req = parse_bytes(&wire).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/plan");
        assert_eq!(req.body, b"{\"targets\":5}");
    }

    #[test]
    fn status_reasons_cover_the_emitted_codes() {
        for code in [200, 400, 404, 405, 411, 413, 422, 431, 500, 503, 504] {
            assert_ne!(status_reason(code), "Unknown", "{code}");
        }
        assert_eq!(status_reason(599), "Unknown");
    }
}
