//! Aggregated statistics of a [`SweepSpec`] experiment grid.
//!
//! `mule-sim`'s `run_sweep` returns raw per-replica outcomes grouped by
//! cell; this module condenses each cell into mean / standard deviation /
//! 95 % confidence intervals ([`SummaryStatistics`]) of the headline
//! metrics and renders the result as the `patrolctl sweep` table and CSV.
//!
//! [`SweepSpec`]: mule_workload::SweepSpec

use crate::dcdt::DcdtSeries;
use crate::intervals::IntervalReport;
use crate::summary::SummaryStatistics;
use crate::table::TextTable;
use mule_sim::SweepCellOutcome;
use mule_workload::SweepCell;

/// DCDT warm-up: ignore each target's first two visits, matching the other
/// reports in this workspace.
const DCDT_WARMUP_VISITS: usize = 2;

/// One cell of a sweep, aggregated over its replicas.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCellSummary {
    /// The grid cell.
    pub cell: SweepCell,
    /// Successful replicas aggregated here.
    pub replicas: usize,
    /// Replicas that produced no outcome: planning errors plus any
    /// quarantined (panicked) replicas.
    pub failures: usize,
    /// Total replans across the cell's replicas.
    pub replans: usize,
    /// Per-replica maximum visiting interval, seconds.
    pub max_interval_s: SummaryStatistics,
    /// Per-replica average DCDT (post warm-up), seconds.
    pub avg_dcdt_s: SummaryStatistics,
    /// Per-replica total fleet distance, metres.
    pub distance_m: SummaryStatistics,
}

/// The aggregated results of a whole sweep, one row per cell in grid
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Per-cell summaries, in [`mule_workload::SweepSpec::cells`] order.
    pub cells: Vec<SweepCellSummary>,
}

impl SweepReport {
    /// Aggregates the raw sweep outcomes. Cells keep their grid order, so
    /// equal inputs produce byte-identical tables — regardless of how many
    /// workers produced the outcomes.
    pub fn from_cells(cells: &[SweepCellOutcome]) -> Self {
        let summaries = cells
            .iter()
            .map(|c| {
                let samples = |f: &dyn Fn(&mule_sim::SimulationOutcome) -> f64| -> Vec<f64> {
                    c.outcomes.iter().map(f).collect()
                };
                SweepCellSummary {
                    cell: c.cell.clone(),
                    replicas: c.outcomes.len(),
                    failures: c.failures.len() + c.quarantined.len(),
                    replans: c.replans,
                    max_interval_s: SummaryStatistics::from_samples(&samples(&|o| {
                        IntervalReport::from_outcome(o).max_interval()
                    })),
                    avg_dcdt_s: SummaryStatistics::from_samples(&samples(&|o| {
                        DcdtSeries::from_outcome(o).average_dcdt(DCDT_WARMUP_VISITS)
                    })),
                    distance_m: SummaryStatistics::from_samples(&samples(&|o| {
                        o.total_distance_m()
                    })),
                }
            })
            .collect();
        SweepReport { cells: summaries }
    }

    /// Renders the human-readable results table (`mean ±ci95` columns).
    pub fn to_table(&self) -> TextTable {
        let mut table = TextTable::new(vec![
            "seed",
            "mules",
            "speed (m/s)",
            "disruption",
            "n",
            "fail",
            "replans",
            "max interval (s)",
            "avg DCDT (s)",
            "distance (km)",
        ]);
        for s in &self.cells {
            table.add_row(vec![
                s.cell.seed.to_string(),
                s.cell.mules.to_string(),
                format!("{:.1}", s.cell.speed_m_per_s),
                s.cell.disruption_label(),
                s.replicas.to_string(),
                s.failures.to_string(),
                s.replans.to_string(),
                s.max_interval_s.mean_with_ci(0),
                s.avg_dcdt_s.mean_with_ci(1),
                format!("{:.1}", s.distance_m.mean / 1000.0),
            ]);
        }
        table
    }

    /// Renders the machine-readable CSV: raw mean / stddev / ci95 columns
    /// per metric, one row per cell.
    pub fn to_csv(&self) -> String {
        let mut table = TextTable::new(vec![
            "seed",
            "mules",
            "speed_m_per_s",
            "disruption",
            "replicas",
            "failures",
            "replans",
            "max_interval_mean_s",
            "max_interval_sd_s",
            "max_interval_ci95_s",
            "avg_dcdt_mean_s",
            "avg_dcdt_sd_s",
            "avg_dcdt_ci95_s",
            "distance_mean_m",
            "distance_sd_m",
            "distance_ci95_m",
        ]);
        for s in &self.cells {
            table.add_row(vec![
                s.cell.seed.to_string(),
                s.cell.mules.to_string(),
                format!("{}", s.cell.speed_m_per_s),
                // Comma-separated label parts would split the CSV column.
                s.cell.disruption_label().replace(',', ";"),
                s.replicas.to_string(),
                s.failures.to_string(),
                s.replans.to_string(),
                format!("{}", s.max_interval_s.mean),
                format!("{}", s.max_interval_s.std_dev),
                format!("{}", s.max_interval_s.ci95_half_width()),
                format!("{}", s.avg_dcdt_s.mean),
                format!("{}", s.avg_dcdt_s.std_dev),
                format!("{}", s.avg_dcdt_s.ci95_half_width()),
                format!("{}", s.distance_m.mean),
                format!("{}", s.distance_m.std_dev),
                format!("{}", s.distance_m.ci95_half_width()),
            ]);
        }
        table.to_csv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mule_sim::{run_sweep, SimulationConfig};
    use mule_workload::{ScenarioConfig, SweepSpec};
    use patrol_core::{BTctp, Planner};

    fn factory() -> Box<dyn Planner> {
        Box::new(BTctp::new())
    }

    fn outcomes() -> Vec<SweepCellOutcome> {
        let spec = SweepSpec::new(ScenarioConfig::paper_default().with_targets(6))
            .with_seeds(vec![1, 2])
            .with_mule_counts(vec![2, 3])
            .with_replicas(3)
            .with_horizon(5_000.0);
        run_sweep(&factory, &spec, &SimulationConfig::timing_only(), None)
    }

    #[test]
    fn report_has_one_row_per_cell_with_replica_statistics() {
        let report = SweepReport::from_cells(&outcomes());
        assert_eq!(report.cells.len(), 4);
        for s in &report.cells {
            assert_eq!(s.replicas, 3);
            assert_eq!(s.failures, 0);
            assert_eq!(s.max_interval_s.count, 3);
            assert!(s.max_interval_s.mean > 0.0);
            assert!(s.avg_dcdt_s.mean > 0.0);
            assert!(s.distance_m.mean > 0.0);
        }
        let table = report.to_table();
        assert_eq!(table.len(), 4);
        assert!(table.render().contains('±'));
    }

    #[test]
    fn csv_is_raw_and_parseable() {
        let report = SweepReport::from_cells(&outcomes());
        let csv = report.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 5, "header + 4 cells");
        assert!(lines[0].starts_with("seed,mules,speed_m_per_s"));
        for line in &lines[1..] {
            let fields: Vec<&str> = line.split(',').collect();
            assert_eq!(fields.len(), 16);
            // Numeric columns parse as f64.
            for f in &fields[7..] {
                f.parse::<f64>().unwrap();
            }
        }
    }

    #[test]
    fn csv_stays_rectangular_with_multi_part_disruption_labels() {
        let spec = SweepSpec::new(ScenarioConfig::paper_default().with_targets(6))
            .with_disruptions(vec![Some(mule_workload::DisruptionConfig::default_mixed(
                1, 5_000.0,
            ))])
            .with_replicas(2)
            .with_horizon(5_000.0);
        let cells = run_sweep(&factory, &spec, &SimulationConfig::timing_only(), None);
        let csv = SweepReport::from_cells(&cells).to_csv();
        for line in csv.lines() {
            assert_eq!(
                line.split(',').count(),
                16,
                "multi-part labels must not add columns: {line}"
            );
        }
        assert!(csv.contains("fail=1;recover"), "{csv}");
    }

    #[test]
    fn aggregation_is_deterministic() {
        let a = SweepReport::from_cells(&outcomes());
        let b = SweepReport::from_cells(&outcomes());
        assert_eq!(a, b);
        assert_eq!(a.to_csv(), b.to_csv());
    }
}
