//! Energy-efficiency reporting.
//!
//! RW-TCTP's purpose is to keep the fleet alive by recharging before the
//! battery empties; this report captures whether that worked (fleet
//! survival), how much of the energy went to productive patrolling versus
//! recharge detours, and how much data each joule bought.

use mule_energy::EnergyCause;
use mule_sim::SimulationOutcome;
use serde::{Deserialize, Serialize};

/// Fleet-level energy efficiency of one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyEfficiencyReport {
    /// Total energy consumed by the fleet, joules.
    pub total_energy_j: f64,
    /// Energy spent moving along the ordinary patrol path.
    pub patrol_movement_j: f64,
    /// Energy spent on recharge detours.
    pub recharge_movement_j: f64,
    /// Energy spent collecting data.
    pub collection_j: f64,
    /// Total bytes delivered to the sink.
    pub delivered_bytes: f64,
    /// Total number of recharges performed by the fleet.
    pub recharges: usize,
    /// Number of mules that ran out of energy.
    pub depleted_mules: usize,
    /// Number of mules in the fleet.
    pub fleet_size: usize,
}

impl EnergyEfficiencyReport {
    /// Builds the report from a simulation outcome.
    pub fn from_outcome(outcome: &SimulationOutcome) -> Self {
        let mut patrol = 0.0;
        let mut recharge = 0.0;
        let mut collection = 0.0;
        let mut recharges = 0;
        let mut depleted = 0;
        for m in &outcome.mules {
            patrol += m.ledger.get(EnergyCause::PatrolMovement);
            recharge += m.ledger.get(EnergyCause::RechargeMovement);
            collection += m.ledger.get(EnergyCause::Collection);
            recharges += m.recharges;
            if !m.status.survived() {
                depleted += 1;
            }
        }
        EnergyEfficiencyReport {
            total_energy_j: patrol + recharge + collection,
            patrol_movement_j: patrol,
            recharge_movement_j: recharge,
            collection_j: collection,
            delivered_bytes: outcome.total_delivered_bytes(),
            recharges,
            depleted_mules: depleted,
            fleet_size: outcome.mules.len(),
        }
    }

    /// Bytes delivered per joule consumed. Zero when no energy was used.
    pub fn bytes_per_joule(&self) -> f64 {
        if self.total_energy_j <= 0.0 {
            0.0
        } else {
            self.delivered_bytes / self.total_energy_j
        }
    }

    /// Fraction of energy spent on productive work (patrol movement plus
    /// collection). One when no energy was used.
    pub fn useful_fraction(&self) -> f64 {
        if self.total_energy_j <= 0.0 {
            1.0
        } else {
            (self.patrol_movement_j + self.collection_j) / self.total_energy_j
        }
    }

    /// Returns `true` when every mule survived.
    pub fn fleet_survived(&self) -> bool {
        self.depleted_mules == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mule_energy::ConsumptionLedger;
    use mule_sim::{MuleReport, MuleStatus};

    fn outcome(mules: Vec<MuleReport>) -> SimulationOutcome {
        SimulationOutcome {
            planner_name: "test".into(),
            horizon_s: 100.0,
            visits: vec![],
            mules,
        }
    }

    fn mule(patrol: f64, recharge: f64, collect: f64, delivered: f64, dead: bool) -> MuleReport {
        let mut ledger = ConsumptionLedger::new();
        ledger.record(EnergyCause::PatrolMovement, patrol);
        ledger.record(EnergyCause::RechargeMovement, recharge);
        ledger.record(EnergyCause::Collection, collect);
        MuleReport {
            mule_index: 0,
            status: if dead {
                MuleStatus::Depleted { at_s: 1.0 }
            } else {
                MuleStatus::Active
            },
            distance_m: 0.0,
            visits: 0,
            recharges: 1,
            remaining_energy_j: 10.0,
            ledger,
            delivered_bytes: delivered,
        }
    }

    #[test]
    fn report_sums_fleet_ledgers() {
        let o = outcome(vec![
            mule(100.0, 20.0, 1.0, 500.0, false),
            mule(50.0, 0.0, 0.5, 200.0, true),
        ]);
        let r = EnergyEfficiencyReport::from_outcome(&o);
        assert!((r.total_energy_j - 171.5).abs() < 1e-12);
        assert!((r.patrol_movement_j - 150.0).abs() < 1e-12);
        assert!((r.recharge_movement_j - 20.0).abs() < 1e-12);
        assert!((r.collection_j - 1.5).abs() < 1e-12);
        assert_eq!(r.delivered_bytes, 700.0);
        assert_eq!(r.recharges, 2);
        assert_eq!(r.depleted_mules, 1);
        assert_eq!(r.fleet_size, 2);
        assert!(!r.fleet_survived());
    }

    #[test]
    fn derived_ratios() {
        let o = outcome(vec![mule(80.0, 20.0, 0.0, 1000.0, false)]);
        let r = EnergyEfficiencyReport::from_outcome(&o);
        assert!((r.bytes_per_joule() - 10.0).abs() < 1e-12);
        assert!((r.useful_fraction() - 0.8).abs() < 1e-12);
        assert!(r.fleet_survived());
    }

    #[test]
    fn zero_energy_is_total() {
        let r = EnergyEfficiencyReport::from_outcome(&outcome(vec![]));
        assert_eq!(r.bytes_per_joule(), 0.0);
        assert_eq!(r.useful_fraction(), 1.0);
        assert!(r.fleet_survived());
        assert_eq!(r.fleet_size, 0);
    }
}
