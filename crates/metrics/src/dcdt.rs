//! Data Collection Delay Time (DCDT).
//!
//! The DCDT of a visit is the age of the data collected at that visit —
//! i.e. how long the target had been waiting since its previous collection.
//! Figure 7 plots DCDT against the visit index ("visited time") for every
//! compared mechanism; Figure 9 reports the average DCDT of VIP targets.

use crate::summary::SummaryStatistics;
use mule_net::NodeId;
use mule_sim::SimulationOutcome;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// DCDT samples organised per visit index and per node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DcdtSeries {
    /// For every node, the DCDT of its 1st, 2nd, 3rd, … visit.
    pub per_node: BTreeMap<NodeId, Vec<f64>>,
}

impl DcdtSeries {
    /// Builds the series from a simulation outcome.
    pub fn from_outcome(outcome: &SimulationOutcome) -> Self {
        DcdtSeries {
            per_node: outcome.data_ages_per_node(),
        }
    }

    /// Restricts the series to the given nodes (used by Fig. 9/10 which
    /// report VIP targets only). Unknown nodes are ignored.
    pub fn restricted_to(&self, nodes: &[NodeId]) -> DcdtSeries {
        DcdtSeries {
            per_node: self
                .per_node
                .iter()
                .filter(|(n, _)| nodes.contains(n))
                .map(|(n, v)| (*n, v.clone()))
                .collect(),
        }
    }

    /// The Fig. 7 series: for visit index `k`, the DCDT averaged over every
    /// node that received at least `k + 1` visits. The series length is the
    /// largest visit count of any node.
    pub fn average_by_visit_index(&self) -> Vec<f64> {
        let max_len = self.per_node.values().map(Vec::len).max().unwrap_or(0);
        (0..max_len)
            .map(|k| {
                let samples: Vec<f64> = self
                    .per_node
                    .values()
                    .filter_map(|v| v.get(k).copied())
                    .collect();
                if samples.is_empty() {
                    0.0
                } else {
                    samples.iter().sum::<f64>() / samples.len() as f64
                }
            })
            .collect()
    }

    /// Average DCDT over every visit of every node, skipping the first
    /// `warmup_visits` visits per node (the first collection's age depends
    /// on the arbitrary simulation start, not on the mechanism).
    pub fn average_dcdt(&self, warmup_visits: usize) -> f64 {
        let samples: Vec<f64> = self
            .per_node
            .values()
            .flat_map(|v| v.iter().skip(warmup_visits).copied())
            .collect();
        if samples.is_empty() {
            0.0
        } else {
            samples.iter().sum::<f64>() / samples.len() as f64
        }
    }

    /// The largest DCDT observed after the warm-up visits.
    pub fn max_dcdt(&self, warmup_visits: usize) -> f64 {
        self.per_node
            .values()
            .flat_map(|v| v.iter().skip(warmup_visits).copied())
            .fold(0.0, f64::max)
    }

    /// Summary statistics over all post-warm-up DCDT samples.
    pub fn summary(&self, warmup_visits: usize) -> SummaryStatistics {
        let samples: Vec<f64> = self
            .per_node
            .values()
            .flat_map(|v| v.iter().skip(warmup_visits).copied())
            .collect();
        SummaryStatistics::from_samples(&samples)
    }

    /// Per-node average DCDT after warm-up.
    pub fn per_node_average(&self, warmup_visits: usize) -> BTreeMap<NodeId, f64> {
        self.per_node
            .iter()
            .filter_map(|(n, v)| {
                let post: Vec<f64> = v.iter().skip(warmup_visits).copied().collect();
                if post.is_empty() {
                    None
                } else {
                    Some((*n, post.iter().sum::<f64>() / post.len() as f64))
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mule_sim::VisitRecord;

    fn outcome(ages: Vec<(usize, Vec<f64>)>) -> SimulationOutcome {
        // Build visits where node `n` receives visits with the given ages
        // at times 1, 2, 3, …
        let mut visits = Vec::new();
        for (node, series) in ages {
            for (k, age) in series.into_iter().enumerate() {
                visits.push(VisitRecord {
                    time_s: (k + 1) as f64,
                    mule_index: 0,
                    node: NodeId(node),
                    data_age_s: age,
                    bytes: 0.0,
                });
            }
        }
        SimulationOutcome {
            planner_name: "test".into(),
            horizon_s: 100.0,
            visits,
            mules: vec![],
        }
    }

    #[test]
    fn per_node_series_follow_visit_order() {
        let o = outcome(vec![(1, vec![5.0, 10.0, 15.0]), (2, vec![7.0, 7.0])]);
        let s = DcdtSeries::from_outcome(&o);
        assert_eq!(s.per_node[&NodeId(1)], vec![5.0, 10.0, 15.0]);
        assert_eq!(s.per_node[&NodeId(2)], vec![7.0, 7.0]);
    }

    #[test]
    fn average_by_visit_index_handles_ragged_lengths() {
        let o = outcome(vec![(1, vec![10.0, 20.0, 30.0]), (2, vec![20.0])]);
        let s = DcdtSeries::from_outcome(&o);
        let series = s.average_by_visit_index();
        assert_eq!(series.len(), 3);
        assert!((series[0] - 15.0).abs() < 1e-12);
        assert!((series[1] - 20.0).abs() < 1e-12);
        assert!((series[2] - 30.0).abs() < 1e-12);
    }

    #[test]
    fn average_and_max_dcdt_respect_warmup() {
        let o = outcome(vec![(1, vec![100.0, 10.0, 20.0])]);
        let s = DcdtSeries::from_outcome(&o);
        assert!((s.average_dcdt(1) - 15.0).abs() < 1e-12);
        assert_eq!(s.max_dcdt(1), 20.0);
        // Without warm-up the initial 100 s sample dominates.
        assert_eq!(s.max_dcdt(0), 100.0);
        assert_eq!(s.summary(1).count, 2);
    }

    #[test]
    fn restriction_keeps_only_the_requested_nodes() {
        let o = outcome(vec![(1, vec![5.0]), (2, vec![9.0]), (3, vec![11.0])]);
        let s = DcdtSeries::from_outcome(&o).restricted_to(&[NodeId(2), NodeId(3)]);
        assert_eq!(s.per_node.len(), 2);
        assert!(!s.per_node.contains_key(&NodeId(1)));
    }

    #[test]
    fn per_node_average_skips_unmeasured_nodes() {
        let o = outcome(vec![(1, vec![4.0, 8.0]), (2, vec![3.0])]);
        let s = DcdtSeries::from_outcome(&o);
        let avg = s.per_node_average(1);
        assert_eq!(avg.len(), 1);
        assert!((avg[&NodeId(1)] - 8.0).abs() < 1e-12);
    }

    #[test]
    fn empty_outcome_is_total() {
        let o = outcome(vec![]);
        let s = DcdtSeries::from_outcome(&o);
        assert!(s.average_by_visit_index().is_empty());
        assert_eq!(s.average_dcdt(0), 0.0);
        assert_eq!(s.max_dcdt(0), 0.0);
    }
}
