//! # mule-metrics
//!
//! Evaluation metrics matching the paper's §V:
//!
//! * [`IntervalReport`] — visiting intervals per target, their maximum and
//!   their standard deviation (the SD of Figures 8 and 10).
//! * [`DcdtSeries`] — Data Collection Delay Time per visit index (the
//!   series of Figure 7) and its averages (Figure 9).
//! * [`EnergyEfficiencyReport`] — joules per delivered byte, useful-energy
//!   fraction and fleet survival, for the energy discussion of §IV/§V.
//! * [`FairnessReport`] — Jain's fairness index over target coverage and
//!   per-mule workload balance.
//! * [`SummaryStatistics`] — min / max / mean / standard deviation of any
//!   sample, shared by all the reports.
//! * [`table`] — plain-text table rendering for the figure-regeneration
//!   binaries.
//! * [`PhaseDelayReport`] — data-collection delay partitioned at the phase
//!   boundaries a dynamic run's disruptions induce (the `patrolctl
//!   dynamics` summary).
//! * [`SweepReport`] — per-cell mean / stddev / 95 % CI aggregation of a
//!   parallel [`mule_workload::SweepSpec`] run (the `patrolctl sweep`
//!   table and CSV).
//! * [`LatencyHistogram`] — mergeable log-bucketed latency histogram with
//!   `p50`/`p95`/`p99`, backing the `mule-serve` `/metrics` endpoint and
//!   the `patrolctl loadgen` report.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod dcdt;
pub mod energy_eff;
pub mod fairness;
pub mod intervals;
pub mod latency;
pub mod phases;
pub mod summary;
pub mod sweep_report;
pub mod table;

pub use dcdt::DcdtSeries;
pub use energy_eff::EnergyEfficiencyReport;
pub use fairness::{jain_index, FairnessReport};
pub use intervals::IntervalReport;
pub use latency::LatencyHistogram;
pub use phases::{PhaseDelay, PhaseDelayReport};
pub use summary::SummaryStatistics;
pub use sweep_report::{SweepCellSummary, SweepReport};
pub use table::TextTable;
