//! Basic sample statistics shared by every report.

use serde::{Deserialize, Serialize};

/// Min / max / mean / standard deviation of a sample.
///
/// The standard deviation uses the `n − 1` (sample) denominator, matching
/// the paper's SD formula in §V.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SummaryStatistics {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than two samples).
    pub std_dev: f64,
}

impl SummaryStatistics {
    /// Computes the statistics of `samples`.
    pub fn from_samples(samples: &[f64]) -> Self {
        let count = samples.len();
        if count == 0 {
            return SummaryStatistics {
                count: 0,
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                std_dev: 0.0,
            };
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &s in samples {
            min = min.min(s);
            max = max.max(s);
            sum += s;
        }
        let mean = sum / count as f64;
        let std_dev = if count >= 2 {
            let var: f64 = samples
                .iter()
                .map(|&s| (s - mean) * (s - mean))
                .sum::<f64>()
                / (count as f64 - 1.0);
            var.sqrt()
        } else {
            0.0
        };
        SummaryStatistics {
            count,
            min,
            max,
            mean,
            std_dev,
        }
    }

    /// The empty statistics value.
    pub fn empty() -> Self {
        Self::from_samples(&[])
    }

    /// Half-width of the normal-approximation 95 % confidence interval of
    /// the mean: `1.96 · s / √n`. Zero for fewer than two samples (no
    /// spread estimate exists).
    ///
    /// The sweeps this backs average ≥ 8 replications per cell, where the
    /// normal approximation is the conventional reporting choice; the
    /// paper's own "average of 20 simulations" tables do the same.
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        1.96 * self.std_dev / (self.count as f64).sqrt()
    }

    /// The mean formatted as `mean ±ci95` for result tables.
    pub fn mean_with_ci(&self, precision: usize) -> String {
        format!(
            "{:.prec$} ±{:.prec$}",
            self.mean,
            self.ci95_half_width(),
            prec = precision
        )
    }
}

/// Sample standard deviation of `samples` (the paper's SD formula, `n − 1`
/// denominator). Zero for fewer than two samples.
pub fn sample_std_dev(samples: &[f64]) -> f64 {
    SummaryStatistics::from_samples(samples).std_dev
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_gives_zeroes() {
        let s = SummaryStatistics::empty();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn single_sample_has_zero_spread() {
        let s = SummaryStatistics::from_samples(&[42.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn known_sample_statistics() {
        // 2, 4, 4, 4, 5, 5, 7, 9: mean 5, sample variance 32/7.
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = SummaryStatistics::from_samples(&data);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((sample_std_dev(&data) - s.std_dev).abs() < 1e-15);
    }

    #[test]
    fn identical_samples_have_zero_std_dev() {
        let s = SummaryStatistics::from_samples(&[3.0; 10]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.mean, 3.0);
    }

    #[test]
    fn ci95_follows_the_normal_approximation() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = SummaryStatistics::from_samples(&data);
        let expected = 1.96 * s.std_dev / (8.0f64).sqrt();
        assert!((s.ci95_half_width() - expected).abs() < 1e-12);
        assert_eq!(SummaryStatistics::empty().ci95_half_width(), 0.0);
        assert_eq!(
            SummaryStatistics::from_samples(&[1.0]).ci95_half_width(),
            0.0
        );
        let rendered = s.mean_with_ci(1);
        assert!(rendered.starts_with("5.0 ±"), "rendered: {rendered}");
    }

    #[test]
    fn negative_samples_are_handled() {
        let s = SummaryStatistics::from_samples(&[-5.0, 5.0]);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.min, -5.0);
        assert_eq!(s.max, 5.0);
        assert!((s.std_dev - (50.0f64).sqrt()).abs() < 1e-12);
    }
}
