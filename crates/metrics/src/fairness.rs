//! Fairness and workload-balance metrics.
//!
//! Two complementary views the paper discusses informally:
//!
//! * **Coverage fairness** — are all targets served equally often? We report
//!   Jain's fairness index over the per-target mean visiting intervals
//!   (1.0 = perfectly fair, → 1/n as one target monopolises the service).
//! * **Fleet balance** — do the mules share the work? We report Jain's index
//!   over per-mule travelled distance and the max/min distance ratio, which
//!   exposes the Sweep baseline's unequal groups.

use crate::intervals::IntervalReport;
use mule_sim::SimulationOutcome;
use serde::{Deserialize, Serialize};

/// Jain's fairness index of a sample: `(Σx)² / (n · Σx²)`, in `(0, 1]`.
///
/// Returns 1.0 for empty or all-zero samples (nothing to be unfair about).
pub fn jain_index(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 1.0;
    }
    let sum: f64 = samples.iter().sum();
    let sum_sq: f64 = samples.iter().map(|x| x * x).sum();
    if sum_sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (samples.len() as f64 * sum_sq)
}

/// Fairness report for one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FairnessReport {
    /// Jain's index over per-target mean visiting intervals.
    pub coverage_fairness: f64,
    /// Jain's index over per-mule travelled distance.
    pub fleet_balance: f64,
    /// Largest per-mule distance divided by the smallest (1.0 = perfectly
    /// balanced; ∞ avoided by flooring the denominator at 1 m).
    pub distance_ratio: f64,
    /// Number of targets that received at least two visits (and therefore
    /// contribute a measured interval).
    pub measured_targets: usize,
}

impl FairnessReport {
    /// Builds the report from a simulation outcome.
    pub fn from_outcome(outcome: &SimulationOutcome) -> Self {
        let intervals = IntervalReport::from_outcome_with_warmup(outcome, 0);
        let means: Vec<f64> = intervals
            .per_node_intervals
            .values()
            .filter(|v| !v.is_empty())
            .map(|v| v.iter().sum::<f64>() / v.len() as f64)
            .collect();

        let distances: Vec<f64> = outcome
            .mules
            .iter()
            .filter(|m| m.distance_m > 0.0)
            .map(|m| m.distance_m)
            .collect();
        let distance_ratio = if distances.is_empty() {
            1.0
        } else {
            let max = distances.iter().cloned().fold(f64::MIN, f64::max);
            let min = distances.iter().cloned().fold(f64::MAX, f64::min);
            max / min.max(1.0)
        };

        FairnessReport {
            coverage_fairness: jain_index(&means),
            fleet_balance: jain_index(&distances),
            distance_ratio,
            measured_targets: means.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mule_net::NodeId;
    use mule_sim::VisitRecord;

    #[test]
    fn jain_index_extremes() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One user hogging everything: index → 1/n.
        let skewed = jain_index(&[10.0, 0.0, 0.0, 0.0]);
        assert!((skewed - 0.25).abs() < 1e-12);
        // Moderate imbalance sits in between.
        let mid = jain_index(&[1.0, 2.0, 3.0]);
        assert!(mid > 0.25 && mid < 1.0);
    }

    fn outcome_with(visits: Vec<(f64, usize)>, distances: Vec<f64>) -> SimulationOutcome {
        use mule_energy::ConsumptionLedger;
        use mule_sim::{MuleReport, MuleStatus};
        SimulationOutcome {
            planner_name: "test".into(),
            horizon_s: 1_000.0,
            visits: visits
                .into_iter()
                .map(|(t, node)| VisitRecord {
                    time_s: t,
                    mule_index: 0,
                    node: NodeId(node),
                    data_age_s: 0.0,
                    bytes: 0.0,
                })
                .collect(),
            mules: distances
                .into_iter()
                .enumerate()
                .map(|(i, d)| MuleReport {
                    mule_index: i,
                    status: MuleStatus::Active,
                    distance_m: d,
                    visits: 0,
                    recharges: 0,
                    remaining_energy_j: 0.0,
                    ledger: ConsumptionLedger::new(),
                    delivered_bytes: 0.0,
                })
                .collect(),
        }
    }

    #[test]
    fn perfectly_regular_outcome_is_fully_fair() {
        // Two targets, both visited every 100 s; two mules with equal work.
        let o = outcome_with(
            vec![
                (0.0, 1),
                (100.0, 1),
                (200.0, 1),
                (0.0, 2),
                (100.0, 2),
                (200.0, 2),
            ],
            vec![500.0, 500.0],
        );
        let r = FairnessReport::from_outcome(&o);
        assert!((r.coverage_fairness - 1.0).abs() < 1e-12);
        assert!((r.fleet_balance - 1.0).abs() < 1e-12);
        assert!((r.distance_ratio - 1.0).abs() < 1e-12);
        assert_eq!(r.measured_targets, 2);
    }

    #[test]
    fn unbalanced_fleet_is_detected() {
        let o = outcome_with(
            vec![(0.0, 1), (10.0, 1), (0.0, 2), (500.0, 2)],
            vec![1000.0, 100.0],
        );
        let r = FairnessReport::from_outcome(&o);
        assert!(r.coverage_fairness < 1.0);
        assert!(r.fleet_balance < 1.0);
        assert!((r.distance_ratio - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_outcome_is_neutral() {
        let o = outcome_with(vec![], vec![]);
        let r = FairnessReport::from_outcome(&o);
        assert_eq!(r.coverage_fairness, 1.0);
        assert_eq!(r.fleet_balance, 1.0);
        assert_eq!(r.measured_targets, 0);
    }
}
