//! Log-bucketed latency histograms for the serving path.
//!
//! `mule-serve`'s `/metrics` endpoint and the `patrolctl loadgen` client
//! both need cheap, mergeable latency percentiles. A sorted-sample
//! percentile is exact but O(n) memory per request stream; a
//! [`LatencyHistogram`] is O(1) per observation and O(buckets) to merge,
//! at a bounded relative error.
//!
//! ## Bucket layout
//!
//! Observations are bucketed on integer **nanoseconds** with a
//! log-linear layout (the HdrHistogram idea, radically simplified): every
//! power-of-two octave is split into [`SUB_BUCKETS`] equal-width linear
//! sub-buckets. Below `SUB_BUCKETS` nanoseconds each bucket holds exactly
//! one nanosecond value, so the layout is exact there. The scheme is
//! *static* — no configuration, no rescaling — which is what makes two
//! histograms recorded on different threads (or different machines)
//! mergeable by plain element-wise addition.
//!
//! The width of a bucket in octave `e` is `2^(e-3)` ns while its smallest
//! member is at least `8 · 2^(e-3)` ns, so a reported quantile (the
//! **upper bound** of the bucket holding the requested rank) overestimates
//! the true sample quantile by at most 12.5 %.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Number of linear sub-buckets per power-of-two octave (must be a power
/// of two; 8 gives ≤ 12.5 % relative quantile error).
pub const SUB_BUCKETS: u64 = 8;

/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();

/// Total bucket count: one exact bucket per nanosecond below
/// [`SUB_BUCKETS`], then [`SUB_BUCKETS`] per octave up to `u64::MAX` ns.
pub const NUM_BUCKETS: usize = ((64 - SUB_BITS) as usize + 1) * SUB_BUCKETS as usize;

/// Bucket index of a nanosecond observation. Total and monotone over the
/// whole `u64` range: every value lands in exactly one bucket, and larger
/// values never land in earlier buckets.
pub fn bucket_index(nanos: u64) -> usize {
    if nanos < SUB_BUCKETS {
        return nanos as usize;
    }
    let e = 63 - nanos.leading_zeros(); // position of the leading bit, ≥ SUB_BITS
    let shift = e - SUB_BITS;
    let sub = (nanos >> shift) & (SUB_BUCKETS - 1);
    ((e - SUB_BITS + 1) as usize) * SUB_BUCKETS as usize + sub as usize
}

/// Inclusive `[lower, upper]` nanosecond range of bucket `index`.
///
/// Every `n` with `bucket_index(n) == index` lies in this range, and the
/// bounds themselves map back to `index`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    let sub_buckets = SUB_BUCKETS as usize;
    if index < sub_buckets {
        return (index as u64, index as u64);
    }
    let e = (index / sub_buckets) as u32 + SUB_BITS - 1;
    let sub = (index % sub_buckets) as u64;
    let width = 1u64 << (e - SUB_BITS);
    let lower = (SUB_BUCKETS + sub) << (e - SUB_BITS);
    (lower, lower + (width - 1))
}

/// A mergeable log-bucketed latency histogram with exact count / mean /
/// min / max and bounded-error quantiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Per-bucket observation counts (see [`bucket_index`]).
    counts: Vec<u64>,
    /// Total observations.
    count: u64,
    /// Sum of all observations, nanoseconds. Integer so that merging two
    /// histograms is exactly the same as interleaved recording — no
    /// floating-point accumulation-order effects.
    sum_ns: u128,
    /// Smallest observation, nanoseconds.
    min_ns: u64,
    /// Largest observation, nanoseconds.
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Records one observation given in seconds. Negative and non-finite
    /// values clamp to zero (they can only come from clock misuse and must
    /// not poison the buckets).
    pub fn record(&mut self, seconds: f64) {
        let nanos = if seconds.is_finite() && seconds > 0.0 {
            let ns = (seconds * 1e9).round();
            if ns >= u64::MAX as f64 {
                u64::MAX
            } else {
                ns as u64
            }
        } else {
            0
        };
        self.record_nanos(nanos);
    }

    /// Records one observation given as a [`Duration`].
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_secs_f64());
    }

    /// Records one observation given in integer nanoseconds.
    pub fn record_nanos(&mut self, nanos: u64) {
        self.counts[bucket_index(nanos)] += 1;
        self.count += 1;
        self.sum_ns += u128::from(nanos);
        self.min_ns = self.min_ns.min(nanos);
        self.max_ns = self.max_ns.max(nanos);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean of all observations, seconds (0 when empty).
    pub fn mean_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / 1e9 / self.count as f64
        }
    }

    /// Exact smallest observation, seconds (0 when empty).
    pub fn min_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min_ns as f64 / 1e9
        }
    }

    /// Exact largest observation, seconds (0 when empty).
    pub fn max_s(&self) -> f64 {
        self.max_ns as f64 / 1e9
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`) in seconds: the upper
    /// bound of the bucket containing the observation of rank
    /// `ceil(q · count)`. Overestimates the true sample quantile by at
    /// most 12.5 % (and never past the recorded maximum). Zero when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, upper) = bucket_bounds(i);
                return upper.min(self.max_ns) as f64 / 1e9;
            }
        }
        self.max_s()
    }

    /// Median latency, seconds.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile latency, seconds.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile latency, seconds.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile latency, seconds. At serving rates of thousands
    /// of requests per run the p99 hides tail stalls that p999 exposes.
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }

    /// Sum of all observations, in seconds.
    pub fn sum_s(&self) -> f64 {
        self.sum_ns as f64 / 1e9
    }

    /// The non-empty buckets as `(upper_bound_ns, count)` pairs in
    /// ascending bucket order. The upper bound is inclusive (see
    /// [`bucket_bounds`]), matching the inclusive `le` semantics of
    /// Prometheus histogram buckets; `/metrics` renders these
    /// cumulatively as the `_bucket` series.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_bounds(i).1, c))
            .collect()
    }

    /// Merges another histogram into this one. Because the bucket layout
    /// is static, merging is element-wise addition and the result is
    /// identical to having recorded both observation streams into a
    /// single histogram, in any order.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_below_sub_buckets_are_exact() {
        for n in 0..SUB_BUCKETS {
            assert_eq!(bucket_index(n), n as usize);
            assert_eq!(bucket_bounds(n as usize), (n, n));
        }
    }

    #[test]
    fn exact_bucket_boundaries_first_octaves() {
        // First bucketed octave [8, 16): width 1, still exact.
        assert_eq!(bucket_index(8), 8);
        assert_eq!(bucket_index(15), 15);
        // Second octave [16, 32): width 2.
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(17), 16, "16 and 17 share a bucket");
        assert_eq!(bucket_index(18), 17);
        assert_eq!(bucket_index(31), 23);
        // Third octave [32, 64): width 4.
        assert_eq!(bucket_index(32), 24);
        assert_eq!(bucket_index(35), 24);
        assert_eq!(bucket_index(36), 25);
        assert_eq!(bucket_bounds(24), (32, 35));
    }

    #[test]
    fn bounds_and_index_are_mutually_consistent() {
        // For a spread of buckets: every value in [lower, upper] maps back
        // to the bucket, and the neighbours map outside it.
        for index in [0usize, 7, 8, 15, 16, 23, 24, 100, 200, 300, 400] {
            let (lower, upper) = bucket_bounds(index);
            assert_eq!(bucket_index(lower), index, "lower bound of {index}");
            assert_eq!(bucket_index(upper), index, "upper bound of {index}");
            if lower > 0 {
                assert_eq!(bucket_index(lower - 1), index - 1);
            }
            if upper < u64::MAX {
                assert_eq!(bucket_index(upper + 1), index + 1);
            }
        }
    }

    #[test]
    fn index_is_total_and_monotone_at_extremes() {
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert!(bucket_index(u64::MAX / 2) < bucket_index(u64::MAX));
        let (_, upper) = bucket_bounds(NUM_BUCKETS - 1);
        assert_eq!(upper, u64::MAX);
    }

    #[test]
    fn count_mean_min_max_are_exact() {
        let mut h = LatencyHistogram::new();
        assert!(h.is_empty());
        for ms in [1.0, 2.0, 3.0, 10.0] {
            h.record(ms / 1000.0);
        }
        assert_eq!(h.count(), 4);
        assert!((h.mean_s() - 0.004).abs() < 1e-9);
        assert!((h.min_s() - 0.001).abs() < 1e-12);
        assert!((h.max_s() - 0.010).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_within_the_error_bound() {
        let mut h = LatencyHistogram::new();
        // 1..=1000 µs, uniformly.
        for us in 1..=1000u64 {
            h.record_nanos(us * 1000);
        }
        for (q, exact_us) in [(0.5, 500.0), (0.95, 950.0), (0.99, 990.0)] {
            let got_us = h.quantile(q) * 1e6;
            assert!(
                got_us >= exact_us && got_us <= exact_us * 1.125 + 1.0,
                "q={q}: got {got_us} µs, exact {exact_us} µs"
            );
        }
        assert_eq!(h.p50(), h.quantile(0.5));
        assert!(h.p50() <= h.p95() && h.p95() <= h.p99());
        assert!(h.p99() <= h.max_s());
    }

    #[test]
    fn quantile_edge_cases() {
        let empty = LatencyHistogram::new();
        assert_eq!(empty.quantile(0.5), 0.0);
        assert_eq!(empty.mean_s(), 0.0);
        assert_eq!(empty.min_s(), 0.0);
        assert_eq!(empty.max_s(), 0.0);

        let mut one = LatencyHistogram::new();
        one.record(0.001);
        // Every quantile of a single observation is that observation's
        // bucket, capped at the recorded max — i.e. exactly 1 ms here.
        assert_eq!(one.quantile(0.0), 0.001);
        assert_eq!(one.quantile(1.0), 0.001);

        let mut h = LatencyHistogram::new();
        h.record(-5.0); // clamps to zero instead of corrupting state
        h.record(f64::NAN);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max_s(), 0.0);
    }

    #[test]
    fn merge_equals_recording_into_one_histogram() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut combined = LatencyHistogram::new();
        for i in 0..500u64 {
            let ns = (i + 1) * 7919; // spread across several octaves
            if i % 2 == 0 {
                a.record_nanos(ns);
            } else {
                b.record_nanos(ns);
            }
            combined.record_nanos(ns);
        }
        a.merge(&b);
        assert_eq!(a, combined);
        assert_eq!(a.count(), 500);
        assert_eq!(a.p99(), combined.p99());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = LatencyHistogram::new();
        h.record(0.002);
        let before = h.clone();
        h.merge(&LatencyHistogram::new());
        assert_eq!(h, before);

        let mut empty = LatencyHistogram::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn duration_recording_matches_seconds() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record_duration(Duration::from_micros(1500));
        b.record(0.0015);
        assert_eq!(a, b);
    }

    #[test]
    fn p999_sits_between_p99_and_max() {
        let mut h = LatencyHistogram::new();
        for us in 1..=2000u64 {
            h.record_nanos(us * 1000);
        }
        assert!(h.p99() <= h.p999());
        assert!(h.p999() <= h.max_s());
        let exact_us = 1998.0; // rank ceil(0.999 · 2000)
        let got_us = h.p999() * 1e6;
        assert!(
            got_us >= exact_us && got_us <= exact_us * 1.125 + 1.0,
            "p999 {got_us} µs vs exact {exact_us} µs"
        );
    }

    #[test]
    fn nonzero_buckets_carry_inclusive_upper_bounds() {
        let mut h = LatencyHistogram::new();
        h.record_nanos(3);
        h.record_nanos(3);
        h.record_nanos(40);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0], (3, 2)); // exact bucket below SUB_BUCKETS
        let (upper, count) = buckets[1];
        assert_eq!(count, 1);
        assert_eq!(bucket_index(upper), bucket_index(40));
        assert!(upper >= 40, "upper bound is inclusive");
        // Ascending order, and totals match the recorded count.
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(buckets.iter().map(|&(_, c)| c).sum::<u64>(), h.count());
        assert!((h.sum_s() - 46e-9).abs() < 1e-15);
    }

    mod merge_associativity {
        use super::*;
        use proptest::prelude::*;

        /// Builds a histogram from a vector of nanosecond observations.
        fn hist(obs: &[u64]) -> LatencyHistogram {
            let mut h = LatencyHistogram::new();
            for &ns in obs {
                h.record_nanos(ns);
            }
            h
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            // (a ⊎ b) ⊎ c ≡ a ⊎ (b ⊎ c), bucket-for-bucket: the static
            // layout and integer sums make merging exactly associative.
            #[test]
            fn merge_is_associative_bucket_for_bucket(
                a in prop::collection::vec(0u64..u64::MAX, 0..40),
                b in prop::collection::vec(0u64..u64::MAX, 0..40),
                c in prop::collection::vec(0u64..u64::MAX, 0..40),
            ) {
                let (ha, hb, hc) = (hist(&a), hist(&b), hist(&c));

                let mut left = ha.clone();
                left.merge(&hb);
                left.merge(&hc);

                let mut right_inner = hb.clone();
                right_inner.merge(&hc);
                let mut right = ha.clone();
                right.merge(&right_inner);

                prop_assert_eq!(&left, &right);
                prop_assert_eq!(left.nonzero_buckets(), right.nonzero_buckets());
            }
        }
    }
}
