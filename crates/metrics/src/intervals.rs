//! Visiting-interval analysis.
//!
//! The visiting interval of a target is the time between two consecutive
//! visits to it (by any mule). The paper's headline objective is to minimise
//! the *maximum* visiting interval and keep the per-target standard
//! deviation (SD, §V) of those intervals near zero.

use crate::summary::{sample_std_dev, SummaryStatistics};
use mule_net::NodeId;
use mule_sim::SimulationOutcome;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-target and aggregate visiting-interval statistics for one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalReport {
    /// Visiting intervals per node, in chronological order.
    pub per_node_intervals: BTreeMap<NodeId, Vec<f64>>,
    /// Number of warm-up visits skipped per node before measuring.
    pub warmup_visits_skipped: usize,
}

impl IntervalReport {
    /// Builds the report from a simulation outcome, skipping the first
    /// `warmup_visits` visits of every node (the paper's steady-state view:
    /// mules are still converging onto their start points during the first
    /// lap).
    pub fn from_outcome_with_warmup(outcome: &SimulationOutcome, warmup_visits: usize) -> Self {
        let mut per_node_intervals = BTreeMap::new();
        for (node, times) in outcome.visit_times_per_node() {
            if times.len() <= warmup_visits + 1 {
                per_node_intervals.insert(node, Vec::new());
                continue;
            }
            let steady = &times[warmup_visits..];
            let intervals: Vec<f64> = steady.windows(2).map(|w| w[1] - w[0]).collect();
            per_node_intervals.insert(node, intervals);
        }
        IntervalReport {
            per_node_intervals,
            warmup_visits_skipped: warmup_visits,
        }
    }

    /// Builds the report with a default warm-up of two visits per node.
    pub fn from_outcome(outcome: &SimulationOutcome) -> Self {
        Self::from_outcome_with_warmup(outcome, 2)
    }

    /// All intervals across all nodes.
    pub fn all_intervals(&self) -> Vec<f64> {
        self.per_node_intervals
            .values()
            .flat_map(|v| v.iter().copied())
            .collect()
    }

    /// The maximum visiting interval across every node — the objective the
    /// paper minimises. Zero when no interval was observed.
    pub fn max_interval(&self) -> f64 {
        self.all_intervals().iter().cloned().fold(0.0, f64::max)
    }

    /// The mean visiting interval across every node.
    pub fn mean_interval(&self) -> f64 {
        SummaryStatistics::from_samples(&self.all_intervals()).mean
    }

    /// The paper's SD metric for one node: the sample standard deviation of
    /// its visiting intervals. `None` when the node has no measured
    /// intervals.
    pub fn node_sd(&self, node: NodeId) -> Option<f64> {
        self.per_node_intervals
            .get(&node)
            .filter(|v| !v.is_empty())
            .map(|v| sample_std_dev(v))
    }

    /// The SD of every node that has measured intervals.
    pub fn per_node_sd(&self) -> BTreeMap<NodeId, f64> {
        self.per_node_intervals
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(node, v)| (*node, sample_std_dev(v)))
            .collect()
    }

    /// Average of the per-node SDs — the quantity plotted in Figures 8 and
    /// 10. Zero when nothing was measured.
    pub fn average_sd(&self) -> f64 {
        let sds: Vec<f64> = self.per_node_sd().values().copied().collect();
        if sds.is_empty() {
            0.0
        } else {
            sds.iter().sum::<f64>() / sds.len() as f64
        }
    }

    /// The largest per-node SD.
    pub fn max_sd(&self) -> f64 {
        self.per_node_sd().values().cloned().fold(0.0, f64::max)
    }

    /// Summary statistics over the interval population.
    pub fn summary(&self) -> SummaryStatistics {
        SummaryStatistics::from_samples(&self.all_intervals())
    }

    /// Nodes that were visited too rarely to measure a single interval.
    pub fn unmeasured_nodes(&self) -> Vec<NodeId> {
        self.per_node_intervals
            .iter()
            .filter(|(_, v)| v.is_empty())
            .map(|(n, _)| *n)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mule_sim::VisitRecord;

    fn outcome_with_visits(visits: Vec<(f64, usize)>) -> SimulationOutcome {
        SimulationOutcome {
            planner_name: "test".into(),
            horizon_s: 1_000.0,
            visits: visits
                .into_iter()
                .map(|(t, node)| VisitRecord {
                    time_s: t,
                    mule_index: 0,
                    node: NodeId(node),
                    data_age_s: 0.0,
                    bytes: 0.0,
                })
                .collect(),
            mules: vec![],
        }
    }

    #[test]
    fn intervals_are_consecutive_differences() {
        let o = outcome_with_visits(vec![(10.0, 1), (30.0, 1), (60.0, 1), (100.0, 1)]);
        let r = IntervalReport::from_outcome_with_warmup(&o, 0);
        assert_eq!(r.per_node_intervals[&NodeId(1)], vec![20.0, 30.0, 40.0]);
        assert_eq!(r.max_interval(), 40.0);
        assert!((r.mean_interval() - 30.0).abs() < 1e-12);
        assert!(r.unmeasured_nodes().is_empty());
    }

    #[test]
    fn warmup_visits_are_skipped() {
        let o = outcome_with_visits(vec![(10.0, 1), (30.0, 1), (60.0, 1), (100.0, 1)]);
        let r = IntervalReport::from_outcome_with_warmup(&o, 2);
        assert_eq!(r.per_node_intervals[&NodeId(1)], vec![40.0]);
        assert_eq!(r.warmup_visits_skipped, 2);
    }

    #[test]
    fn constant_intervals_have_zero_sd() {
        let o = outcome_with_visits(vec![(0.0, 1), (50.0, 1), (100.0, 1), (150.0, 1)]);
        let r = IntervalReport::from_outcome_with_warmup(&o, 0);
        assert_eq!(r.node_sd(NodeId(1)), Some(0.0));
        assert_eq!(r.average_sd(), 0.0);
        assert_eq!(r.max_sd(), 0.0);
    }

    #[test]
    fn uneven_intervals_have_positive_sd() {
        let o = outcome_with_visits(vec![(0.0, 1), (10.0, 1), (100.0, 1), (110.0, 1)]);
        let r = IntervalReport::from_outcome_with_warmup(&o, 0);
        assert!(r.node_sd(NodeId(1)).unwrap() > 0.0);
        assert!(r.average_sd() > 0.0);
    }

    #[test]
    fn rarely_visited_nodes_are_reported_unmeasured() {
        let o = outcome_with_visits(vec![(10.0, 1), (20.0, 1), (30.0, 2)]);
        let r = IntervalReport::from_outcome_with_warmup(&o, 0);
        assert_eq!(r.per_node_intervals[&NodeId(1)], vec![10.0]);
        assert!(r.per_node_intervals[&NodeId(2)].is_empty());
        assert_eq!(r.unmeasured_nodes(), vec![NodeId(2)]);
        assert!(r.node_sd(NodeId(2)).is_none());
    }

    #[test]
    fn aggregate_sd_averages_over_nodes() {
        let o = outcome_with_visits(vec![
            // Node 1: constant 10 s intervals → SD 0.
            (0.0, 1),
            (10.0, 1),
            (20.0, 1),
            // Node 2: intervals 10 and 30 → SD = sqrt(200) ≈ 14.14.
            (0.0, 2),
            (10.0, 2),
            (40.0, 2),
        ]);
        let r = IntervalReport::from_outcome_with_warmup(&o, 0);
        let expected_node2 = 200.0f64.sqrt();
        assert!((r.average_sd() - expected_node2 / 2.0).abs() < 1e-9);
        assert!((r.max_sd() - expected_node2).abs() < 1e-9);
        assert_eq!(r.summary().count, 4);
    }

    #[test]
    fn empty_outcome_produces_an_empty_report() {
        let o = outcome_with_visits(vec![]);
        let r = IntervalReport::from_outcome(&o);
        assert_eq!(r.max_interval(), 0.0);
        assert_eq!(r.average_sd(), 0.0);
        assert!(r.all_intervals().is_empty());
    }
}
