//! Per-phase data-collection delay.
//!
//! A dynamic run is partitioned into *phases* by its disruption times
//! (target failures/recoveries/arrivals, mule breakdowns, speed-window
//! edges). This report computes the data-collection delay — the
//! [`mule_sim::VisitRecord::data_age_s`] of every visit — separately for
//! each phase, which is how the effect of a disruption (and of the
//! replan answering it) becomes visible: a breakdown without replanning
//! shows up as a jump in the following phase's mean delay; with
//! replanning the jump shrinks.

use crate::summary::SummaryStatistics;
use crate::table::TextTable;
use mule_sim::{DynamicOutcome, SimulationOutcome};
use serde::{Deserialize, Serialize};

/// Delay statistics of one phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseDelay {
    /// Phase start, seconds (inclusive).
    pub start_s: f64,
    /// Phase end, seconds (exclusive; the last phase ends at the horizon).
    pub end_s: f64,
    /// Number of visits recorded during the phase.
    pub visits: usize,
    /// Collection-delay statistics over those visits (empty phases report
    /// all-zero statistics).
    pub delay: SummaryStatistics,
}

impl PhaseDelay {
    /// Mean collection delay of the phase, seconds (0 when no visits).
    pub fn mean_delay_s(&self) -> f64 {
        self.delay.mean
    }

    /// Largest collection delay of the phase, seconds (0 when no visits).
    pub fn max_delay_s(&self) -> f64 {
        self.delay.max
    }
}

/// Data-collection delay partitioned at phase boundaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseDelayReport {
    /// One entry per phase, in time order. A run with no boundaries has
    /// exactly one phase covering the whole horizon.
    pub phases: Vec<PhaseDelay>,
}

impl PhaseDelayReport {
    /// Builds the report from an outcome and explicit phase boundaries
    /// (unsorted or duplicated boundaries are handled; boundaries outside
    /// `[0, horizon]` are dropped).
    pub fn new(outcome: &SimulationOutcome, boundaries: &[f64]) -> Self {
        let horizon = outcome.horizon_s;
        let mut cuts: Vec<f64> = boundaries
            .iter()
            .copied()
            .filter(|t| t.is_finite() && *t > 0.0 && *t < horizon)
            .collect();
        cuts.sort_by(|a, b| a.total_cmp(b));
        cuts.dedup_by(|a, b| a.total_cmp(b).is_eq());

        let mut edges = Vec::with_capacity(cuts.len() + 2);
        edges.push(0.0);
        edges.extend(cuts);
        edges.push(horizon);

        let phases = edges
            .windows(2)
            .map(|w| {
                let (start, end) = (w[0], w[1]);
                // The final phase is closed on the right so a visit exactly
                // at the horizon is counted once.
                let is_last = end.total_cmp(&horizon).is_eq();
                let samples: Vec<f64> = outcome
                    .visits
                    .iter()
                    .filter(|v| {
                        v.time_s >= start && (v.time_s < end || (is_last && v.time_s <= end))
                    })
                    .map(|v| v.data_age_s)
                    .collect();
                PhaseDelay {
                    start_s: start,
                    end_s: end,
                    visits: samples.len(),
                    delay: SummaryStatistics::from_samples(&samples),
                }
            })
            .collect();
        PhaseDelayReport { phases }
    }

    /// Builds the report straight from a dynamic outcome, using the
    /// boundaries its disruption plan induced.
    pub fn from_dynamic(outcome: &DynamicOutcome) -> Self {
        PhaseDelayReport::new(&outcome.outcome, &outcome.phase_boundaries_s)
    }

    /// Number of phases.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// `true` when the report has no phases (only possible for an empty
    /// outcome with a zero horizon).
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Mean delay over all phases, weighted by visit count (0 when the
    /// run had no visits).
    pub fn overall_mean_delay_s(&self) -> f64 {
        let visits: usize = self.phases.iter().map(|p| p.visits).sum();
        if visits == 0 {
            return 0.0;
        }
        let weighted: f64 = self
            .phases
            .iter()
            .map(|p| p.delay.mean * p.visits as f64)
            .sum();
        weighted / visits as f64
    }

    /// Renders the per-phase table printed by `patrolctl dynamics`.
    pub fn to_table(&self) -> TextTable {
        let mut table = TextTable::new(vec![
            "phase",
            "start (s)",
            "end (s)",
            "visits",
            "mean delay (s)",
            "max delay (s)",
        ]);
        for (i, p) in self.phases.iter().enumerate() {
            table.add_row(vec![
                format!("{}", i + 1),
                format!("{:.0}", p.start_s),
                format!("{:.0}", p.end_s),
                format!("{}", p.visits),
                format!("{:.1}", p.mean_delay_s()),
                format!("{:.1}", p.max_delay_s()),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mule_net::NodeId;
    use mule_sim::VisitRecord;

    fn outcome(horizon: f64, visits: &[(f64, f64)]) -> SimulationOutcome {
        SimulationOutcome {
            planner_name: "test".into(),
            horizon_s: horizon,
            visits: visits
                .iter()
                .map(|&(t, age)| VisitRecord {
                    time_s: t,
                    mule_index: 0,
                    node: NodeId(1),
                    data_age_s: age,
                    bytes: 0.0,
                })
                .collect(),
            mules: vec![],
        }
    }

    #[test]
    fn no_boundaries_yield_one_phase_over_the_whole_run() {
        let o = outcome(100.0, &[(10.0, 5.0), (50.0, 15.0)]);
        let r = PhaseDelayReport::new(&o, &[]);
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
        assert_eq!(r.phases[0].visits, 2);
        assert_eq!(r.phases[0].start_s, 0.0);
        assert_eq!(r.phases[0].end_s, 100.0);
        assert!((r.overall_mean_delay_s() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn visits_partition_at_the_boundaries() {
        let o = outcome(
            100.0,
            &[
                (10.0, 4.0),
                (30.0, 8.0),
                (30.5, 2.0),
                (90.0, 6.0),
                (100.0, 10.0),
            ],
        );
        let r = PhaseDelayReport::new(&o, &[30.0, 80.0]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.phases[0].visits, 1, "[0, 30): one visit");
        assert_eq!(
            r.phases[1].visits, 2,
            "[30, 80): boundary visit counts right"
        );
        assert_eq!(r.phases[2].visits, 2, "[80, 100]: horizon visit included");
        assert!((r.phases[1].mean_delay_s() - 5.0).abs() < 1e-12);
        assert_eq!(r.phases[2].max_delay_s(), 10.0);
    }

    #[test]
    fn degenerate_boundaries_are_sanitised() {
        let o = outcome(50.0, &[(10.0, 1.0)]);
        let r = PhaseDelayReport::new(&o, &[20.0, 20.0, -5.0, f64::NAN, 999.0, 0.0]);
        assert_eq!(r.len(), 2, "only the in-range, deduped boundary splits");
        assert_eq!(r.phases[0].end_s, 20.0);
    }

    #[test]
    fn empty_phases_report_zero_statistics() {
        let o = outcome(100.0, &[(10.0, 5.0)]);
        let r = PhaseDelayReport::new(&o, &[50.0]);
        assert_eq!(r.phases[1].visits, 0);
        assert_eq!(r.phases[1].mean_delay_s(), 0.0);
        assert_eq!(r.phases[1].max_delay_s(), 0.0);
        assert!((r.overall_mean_delay_s() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn table_has_one_row_per_phase() {
        let o = outcome(100.0, &[(10.0, 5.0), (60.0, 7.0)]);
        let r = PhaseDelayReport::new(&o, &[50.0]);
        let table = r.to_table();
        assert_eq!(table.len(), 2);
        let rendered = table.render();
        assert!(rendered.contains("mean delay"));
        assert!(rendered.contains("visits"));
    }
}
