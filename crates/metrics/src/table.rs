//! Plain-text tables for the figure-regeneration binaries.
//!
//! The benches print the rows/series of every figure as aligned text tables
//! (and CSV when piping into plotting tools); this keeps the harness free
//! of plotting dependencies.

use serde::{Deserialize, Serialize};

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with empty
    /// cells; longer rows are truncated to the header width.
    pub fn add_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let mut cells: Vec<String> = row.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Convenience: appends a row of numbers formatted with `precision`
    /// decimal places, prefixed by a label cell.
    pub fn add_numeric_row(&mut self, label: impl Into<String>, values: &[f64], precision: usize) {
        let mut row = vec![label.into()];
        row.extend(values.iter().map(|v| format!("{v:.precision$}")));
        self.add_row(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (comma-separated, header first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_padded_and_truncated_to_the_header() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.add_row(vec!["1"]);
        t.add_row(vec!["1", "2", "3", "4"]);
        assert_eq!(t.len(), 2);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b,c");
        assert_eq!(lines[1], "1,,");
        assert_eq!(lines[2], "1,2,3");
    }

    #[test]
    fn numeric_rows_are_formatted_with_precision() {
        let mut t = TextTable::new(vec!["planner", "dcdt", "sd"]);
        t.add_numeric_row("B-TCTP", &[1234.5678, 0.123], 2);
        assert_eq!(t.to_csv().lines().nth(1).unwrap(), "B-TCTP,1234.57,0.12");
    }

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.add_row(vec!["short", "1"]);
        t.add_row(vec!["a-much-longer-name", "22"]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        // All data lines have the same width up to trailing spaces.
        assert!(lines[2].starts_with("short"));
        assert!(lines[3].starts_with("a-much-longer-name"));
        assert!(lines[2].len() <= lines[3].len());
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TextTable::new(vec!["x"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
        assert_eq!(t.to_csv(), "x\n");
    }
}
