//! Offline stand-in for `rayon`, backed by the `mule-par` worker pool.
//!
//! `par_iter()` / `into_par_iter()` return small lazy adapters whose
//! `map(...).collect()` / `sum()` terminals execute on
//! [`mule_par`]'s scoped thread pool: chunked work-stealing over the input
//! index range, with results reassembled **in input order**. Call sites
//! therefore behave exactly like the old sequential shim — same results,
//! same ordering, bit-for-bit — but use every core `mule_par` resolves
//! (see [`mule_par::resolve_workers`]; set `MULE_PAR_WORKERS=1` to force a
//! sequential run). See `crates/shims/README.md`.
//!
//! Only the adapter surface this workspace actually uses is provided:
//! `map`, `collect`, `sum` and `for_each`.

pub mod prelude {
    /// `par_iter()` over a borrowed collection, mirroring rayon's
    /// `IntoParallelRefIterator` (parallel via `mule-par`).
    pub trait IntoParallelRefIterator<'data> {
        /// The borrowed item type.
        type Item: Sync + 'data;

        /// Returns a parallel iterator over `&self`'s items.
        fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;

        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;

        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    /// `into_par_iter()` over an owned collection, mirroring rayon's
    /// `IntoParallelIterator` (parallel via `mule-par`).
    pub trait IntoParallelIterator {
        /// The owned item type.
        type Item: Send;

        /// Consumes `self` and returns a parallel iterator over its items.
        fn into_par_iter(self) -> IntoParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;

        fn into_par_iter(self) -> IntoParIter<T> {
            IntoParIter { items: self }
        }
    }

    /// A borrowed parallel iterator (the result of `par_iter()`).
    pub struct ParIter<'data, T> {
        items: &'data [T],
    }

    impl<'data, T: Sync> ParIter<'data, T> {
        /// Maps each item through `op` (lazily; nothing runs until a
        /// terminal such as [`ParMap::collect`] is invoked).
        pub fn map<R, F>(self, op: F) -> ParMap<'data, T, F>
        where
            R: Send,
            F: Fn(&'data T) -> R + Sync,
        {
            ParMap {
                items: self.items,
                op,
            }
        }

        /// Runs `op` on every item, in parallel.
        pub fn for_each<F>(self, op: F)
        where
            F: Fn(&'data T) + Sync,
        {
            self.map(op).collect::<Vec<()>>();
        }
    }

    /// A mapped borrowed parallel iterator.
    pub struct ParMap<'data, T, F> {
        items: &'data [T],
        op: F,
    }

    impl<'data, T, R, F> ParMap<'data, T, F>
    where
        T: Sync,
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        /// Executes the map on the worker pool and collects the results in
        /// input order.
        pub fn collect<B: FromIterator<R>>(self) -> B {
            mule_par::parallel_map_indexed(self.items.len(), |i| (self.op)(&self.items[i]))
                .into_iter()
                .collect()
        }

        /// Executes the map on the worker pool and sums the results.
        pub fn sum<S>(self) -> S
        where
            S: std::iter::Sum<R>,
        {
            self.collect::<Vec<R>>().into_iter().sum()
        }
    }

    /// An owned parallel iterator (the result of `into_par_iter()`).
    pub struct IntoParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> IntoParIter<T> {
        /// Maps each item through `op` (lazily; nothing runs until a
        /// terminal such as [`IntoParMap::collect`] is invoked).
        pub fn map<R, F>(self, op: F) -> IntoParMap<T, F>
        where
            R: Send,
            F: Fn(T) -> R + Sync,
        {
            IntoParMap {
                items: self.items,
                op,
            }
        }

        /// Sums the items on the worker pool.
        pub fn sum<S>(self) -> S
        where
            S: std::iter::Sum<T> + std::iter::Sum<S> + Send,
        {
            self.map(|x| x).sum()
        }
    }

    /// A mapped owned parallel iterator.
    pub struct IntoParMap<T, F> {
        items: Vec<T>,
        op: F,
    }

    impl<T, R, F> IntoParMap<T, F>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        /// Executes the map on the worker pool and collects the results in
        /// input order.
        pub fn collect<B: FromIterator<R>>(self) -> B {
            mule_par::parallel_map_vec(self.items, self.op)
                .into_iter()
                .collect()
        }

        /// Executes the map on the worker pool, then sums the collected
        /// results sequentially in input order (so the reduction order —
        /// and therefore any floating-point sum — is deterministic).
        pub fn sum<S>(self) -> S
        where
            S: std::iter::Sum<R> + std::iter::Sum<S> + Send,
        {
            self.collect::<Vec<R>>().into_iter().sum()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_preserves_order() {
        let v = vec![3, 1, 4, 1, 5];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
        let sum: i32 = v.into_par_iter().sum();
        assert_eq!(sum, 14);
    }

    #[test]
    fn par_iter_matches_sequential_on_large_inputs() {
        let v: Vec<u64> = (0..10_000).collect();
        let par: Vec<u64> = v.par_iter().map(|x| x * x % 97).collect();
        let seq: Vec<u64> = v.iter().map(|x| x * x % 97).collect();
        assert_eq!(par, seq);
        let par_sum: u64 = v.clone().into_par_iter().map(|x| x % 13).sum();
        let seq_sum: u64 = v.iter().map(|x| x % 13).sum();
        assert_eq!(par_sum, seq_sum);
    }

    #[test]
    fn collect_supports_non_vec_targets() {
        let v = vec![1, 2, 3, 4];
        let ok: Result<Vec<i32>, &str> = v.par_iter().map(|&x| Ok(x * 10)).collect();
        assert_eq!(ok.unwrap(), vec![10, 20, 30, 40]);
        let err: Result<Vec<i32>, &str> = v
            .par_iter()
            .map(|&x| if x == 3 { Err("boom") } else { Ok(x) })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn for_each_visits_every_item() {
        let v: Vec<usize> = (0..64).collect();
        let hits = std::sync::atomic::AtomicUsize::new(0);
        v.par_iter().for_each(|_| {
            hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 64);
    }
}
