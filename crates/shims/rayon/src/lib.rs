//! Offline stand-in for `rayon`.
//!
//! `par_iter()` simply returns the ordinary sequential iterator, so all the
//! usual `Iterator` adapters (`map`, `collect`, …) keep working and results
//! stay in input order. Replication sweeps therefore remain correct and
//! deterministic — just not parallel. See `crates/shims/README.md`.

pub mod prelude {
    /// `par_iter()` over a borrowed collection, mirroring rayon's
    /// `IntoParallelRefIterator` (sequential here).
    pub trait IntoParallelRefIterator<'data> {
        /// The (sequential) iterator type returned by [`par_iter`].
        ///
        /// [`par_iter`]: IntoParallelRefIterator::par_iter
        type Iter: Iterator;

        /// Returns an iterator over `&self`'s items.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    /// `into_par_iter()` over an owned collection, mirroring rayon's
    /// `IntoParallelIterator` (sequential here).
    pub trait IntoParallelIterator {
        /// The (sequential) iterator type returned by [`into_par_iter`].
        ///
        /// [`into_par_iter`]: IntoParallelIterator::into_par_iter
        type Iter: Iterator;

        /// Consumes `self` and returns an iterator over its items.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;

        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_preserves_order() {
        let v = vec![3, 1, 4, 1, 5];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
        let sum: i32 = v.into_par_iter().sum();
        assert_eq!(sum, 14);
    }
}
