//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! range and tuple strategies, [`Strategy::prop_map`],
//! `prop::collection::vec`, `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!`, and [`test_runner::TestCaseError`].
//!
//! Differences from the real crate, by design:
//! * no shrinking — a failing case reports its inputs but is not minimised;
//! * sampling is driven by the deterministic in-tree `rand` shim, seeded
//!   from the test function's name, so every run explores the same cases;
//! * rejection via `prop_assume!` retries up to a fixed multiple of the
//!   configured case count.
//!
//! See `crates/shims/README.md`.

use rand::rngs::StdRng;
use rand::RngExt;
use std::ops::{Range, RangeInclusive};

// Re-exported so `proptest!` expansions can reach the RNG without the
// calling crate depending on `rand` itself.
#[doc(hidden)]
pub use rand as __rand;

pub mod test_runner {
    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!`; try another one.
        Reject(String),
        /// The case failed an assertion.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail<S: Into<String>>(msg: S) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection with the given reason.
        pub fn reject<S: Into<String>>(msg: S) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// How many accepted cases each test must run.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config that runs `cases` accepted cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// A recipe for generating values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value using `rng`.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors proptest's `prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

pub mod collection {
    use super::{StdRng, Strategy};
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Smallest allowed length.
        pub min: usize,
        /// Largest allowed length (inclusive).
        pub max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max: r.end.saturating_sub(1),
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length lies in `size` and whose elements come
    /// from `element` (mirrors `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Seeds a case stream from a test's name so runs are reproducible without
/// any shared state between tests.
pub fn seed_for_test(name: &str) -> u64 {
    // FNV-1a, stable across platforms and compiler versions.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Everything a property test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Just, Strategy};
}

/// Asserts a condition inside a `proptest!` case, failing the case (with
/// formatted context) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert!(a == b)` with a value-printing message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {:?} == {:?}: {}", a, b, format!($($fmt)*)
        );
    }};
}

/// `prop_assert!(a != b)` with a value-printing message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Rejects the current case (it is retried with fresh inputs) when the
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests. Supports the subset of the real macro's grammar
/// used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(20))]
///
///     /// Doc comments survive.
///     #[test]
///     fn my_property(x in 0u64..100, (a, b) in (0.0..1.0f64, 0.0..1.0f64)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // Each test's attribute list captures `#[test]` itself alongside doc
    // comments, so the matcher needs no separate `#[test]` token (which
    // would be ambiguous with the `$meta` repetition).
    (@tests ($config:expr) $(
        $(#[$meta:meta])+
        fn $name:ident( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            use $crate::Strategy as _;
            use $crate::__rand::SeedableRng as _;
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::__rand::rngs::StdRng::seed_from_u64(
                $crate::seed_for_test(stringify!($name)),
            );
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(16).max(64);
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest {}: too many rejected cases ({} accepted of {} wanted)",
                    stringify!($name), accepted, config.cases
                );
                // Bind each sampled value by `let` (not via closure
                // parameters) so its concrete type flows from the strategy
                // into the body; the zero-argument closure then only
                // provides the early-return scope `prop_assert!` needs.
                let ( $($arg,)+ ) = ( $( ($strategy).sample(&mut rng), )+ );
                let case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                match case() {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {} (inputs: {}): {}",
                            stringify!($name), accepted, stringify!($($arg),+), msg
                        );
                    }
                }
            }
        }
    )*};
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@tests ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@tests ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, f in -1.0..1.0f64) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_maps_compose(p in (0.0..8.0f64, 0.0..8.0f64).prop_map(|(a, b)| a + b)) {
            prop_assert!((0.0..16.0).contains(&p));
        }

        #[test]
        fn collections_respect_size(v in prop::collection::vec(0u32..5, 2..=6)) {
            prop_assert!((2..=6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn assume_retries(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest always_fails failed")]
    // The nested `proptest!` expands to a `#[test]` fn that the harness
    // cannot collect here; we call it directly instead.
    #[allow(unnameable_test_items)]
    fn failures_panic_with_context() {
        proptest! {
            #[test]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
