//! Offline stand-in for the `rand` crate.
//!
//! Provides the exact API surface the workspace uses — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], [`RngExt::random_range`] and
//! [`seq::SliceRandom::shuffle`] — backed by a small, fully deterministic
//! SplitMix64 generator. Not bit-compatible with the real crate; every
//! seeded expectation in this workspace is derived from *this*
//! implementation. See `crates/shims/README.md`.

use std::ops::{Range, RangeInclusive};

/// A source of raw random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose whole stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    ///
    /// SplitMix64 passes BigCrush for the word sizes used here and has a
    /// one-word state, which keeps seeding trivial and the stream portable
    /// across platforms and compiler versions.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// A range that values can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from `self` using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a raw `u64` to a uniform f64 in `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        debug_assert!(self.start <= self.end, "invalid f64 range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        debug_assert!(lo <= hi, "invalid f64 range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty integer range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, mirroring `rand::Rng` (named `RngExt`
/// throughout this workspace).
pub trait RngExt: RngCore {
    /// Draws a value uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draws a uniform f64 in `[0, 1)`.
    fn random_f64(&mut self) -> f64 {
        unit_f64(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// In-place slice shuffling.
    pub trait SliceRandom {
        /// Shuffles the slice with a Fisher–Yates pass driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn streams_are_seed_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let f = rng.random_range(-3.0..5.0f64);
            assert!((-3.0..5.0).contains(&f));
            let i = rng.random_range(10u32..=12);
            assert!((10..=12).contains(&i));
            let u = rng.random_range(0usize..7);
            assert!(u < 7);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle should move things");
    }
}
