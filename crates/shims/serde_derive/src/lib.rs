//! No-op stand-ins for serde's derive macros.
//!
//! Nothing in this workspace serialises data yet; the derives exist so type
//! definitions can keep their `#[derive(Serialize, Deserialize)]` attributes
//! (and gain real implementations the day the actual `serde` is available).

use proc_macro::TokenStream;

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
