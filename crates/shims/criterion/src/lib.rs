//! Offline stand-in for `criterion`.
//!
//! Runs each benchmark closure `sample_size` times with `std::time::Instant`
//! and prints the mean wall-clock time per iteration. No statistics, no
//! warm-up, no HTML reports — just enough to keep `cargo bench` useful and
//! the bench sources compiling unchanged. See `crates/shims/README.md`.

use std::fmt;
use std::time::Instant;

/// An identifier of one parameterised benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter into one label.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.name.fmt(f)
    }
}

/// Passed to benchmark closures; `iter` does the timing.
pub struct Bencher<'a> {
    sample_size: usize,
    label: &'a str,
}

impl Bencher<'_> {
    /// Times `sample_size` calls of `routine` and prints the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.sample_size {
            std::hint::black_box(routine());
        }
        let total = start.elapsed();
        println!(
            "bench {:<50} {:>12.3?} / iter ({} iters)",
            self.label,
            total / self.sample_size as u32,
            self.sample_size
        );
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    group_name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `routine` against one `input`, labelled by `id`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let label = format!("{}/{}", self.group_name, id);
        let mut b = Bencher {
            sample_size: self.criterion.sample_size,
            label: &label,
        };
        routine(&mut b, input);
        self
    }

    /// Benchmarks an input-free `routine`, labelled by `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let label = format!("{}/{}", self.group_name, id);
        let mut b = Bencher {
            sample_size: self.criterion.sample_size,
            label: &label,
        };
        routine(&mut b);
        self
    }

    /// Ends the group (a no-op here; kept for API compatibility).
    pub fn finish(self) {}
}

/// The bench driver handed to every target of a `criterion_group!`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many iterations each `Bencher::iter` call times.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            label: name,
        };
        routine(&mut b);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            group_name: name.into(),
        }
    }
}

/// Declares a bench group function, mirroring criterion's macro (both the
/// plain list form and the `name/config/targets` form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grouped");
        group.bench_with_input(BenchmarkId::new("double", 21), &21, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = sample_bench,
    }

    #[test]
    fn group_macro_produces_a_runnable_function() {
        benches();
    }
}
