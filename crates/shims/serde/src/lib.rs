//! Offline stand-in for `serde`: re-exports the no-op derive macros so
//! `use serde::{Deserialize, Serialize};` + `#[derive(...)]` compile
//! unchanged. See `crates/shims/README.md`.

pub use serde_derive::{Deserialize, Serialize};
