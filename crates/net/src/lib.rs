//! # mule-net
//!
//! The wireless-field substrate: everything that exists in the monitoring
//! region besides the mules' routes.
//!
//! * [`node`] — targets, the sink and the recharge station, with per-target
//!   weights (NTP vs VIP, paper Definition 1).
//! * [`field`] — the assembled monitoring field: node list, ranges and the
//!   paper's radio constants, with lookup helpers the planners use.
//! * [`buffer`] — the data buffer at each target (sensing data accumulates
//!   until a mule collects it) and the mule-side payload store.
//! * [`radio`] — range-based transfer checks (sensing range 10 m,
//!   communication range 20 m in the paper's setup).
//! * [`connectivity`] — union-find over the communication graph, used to
//!   verify that generated scenarios really consist of *disconnected* target
//!   areas (the situation that motivates data mules in the first place).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod buffer;
pub mod connectivity;
pub mod field;
pub mod node;
pub mod radio;

pub use buffer::{DataBuffer, MulePayload};
pub use connectivity::{
    connected_components, connected_components_by, is_disconnected, is_disconnected_by, UnionFind,
};
pub use field::{Field, FieldBuilder, RadioParameters};
pub use node::{Node, NodeId, NodeKind, Weight};
pub use radio::{in_communication_range, in_sensing_range, LinkBudget};
