//! Connectivity analysis of the static target network.
//!
//! The premise of the paper is that "target points may be distributed over
//! several disconnected areas" so that no static multi-hop network can reach
//! all of them, which is exactly why mobile data mules are used. The
//! workload generator uses the functions here to *verify* that a generated
//! scenario really is disconnected at the targets' communication range, and
//! the tests use them to characterise scenarios.

use mule_geom::Point;

/// A classic union-find (disjoint-set) structure with path compression and
/// union by rank.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` when the structure tracks no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of the set containing `x`.
    pub fn find(&mut self, x: usize) -> usize {
        // Iterative path halving keeps the stack flat for large inputs.
        let mut x = x;
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets containing `a` and `b`; returns `true` when they were
    /// previously separate.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        self.components -= 1;
        true
    }

    /// Returns `true` when `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets currently tracked.
    #[inline]
    pub fn component_count(&self) -> usize {
        self.components
    }
}

/// Groups `n` elements into connected components of the unit-disk graph
/// with radius `range` under an arbitrary pairwise distance: elements `i`
/// and `j` are adjacent when `dist(i, j) <= range`. This is the
/// metric-agnostic core behind [`connected_components`] — road-metric
/// scenarios pass their travel distance here, so "reachable" means
/// reachable *by travel* rather than as the crow flies. Returns one vector
/// of indices per component, each sorted ascending, with components
/// ordered by their smallest member.
pub fn connected_components_by<F: Fn(usize, usize) -> f64>(
    n: usize,
    range: f64,
    dist: F,
) -> Vec<Vec<usize>> {
    let mut uf = UnionFind::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if dist(i, j) <= range {
                uf.union(i, j);
            }
        }
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for i in 0..n {
        let root = uf.find(i);
        groups.entry(root).or_default().push(i);
    }
    let mut components: Vec<Vec<usize>> = groups.into_values().collect();
    components.sort_by_key(|c| c[0]);
    components
}

/// Returns `true` when the graph described by `dist` at radius `range` has
/// more than one connected component (see [`connected_components_by`]).
pub fn is_disconnected_by<F: Fn(usize, usize) -> f64>(n: usize, range: f64, dist: F) -> bool {
    connected_components_by(n, range, dist).len() > 1
}

/// Groups `points` into connected components of the unit-disk graph with
/// radius `range`: two points are adjacent when they are within `range`
/// metres of each other (straight-line). Returns one vector of point
/// indices per component, each sorted ascending, with components ordered
/// by their smallest member.
pub fn connected_components(points: &[Point], range: f64) -> Vec<Vec<usize>> {
    connected_components_by(points.len(), range, |i, j| points[i].distance(&points[j]))
}

/// Returns `true` when the unit-disk graph over `points` at communication
/// radius `range` has more than one connected component — i.e. a static
/// network could not cover all targets and data mules are required.
pub fn is_disconnected(points: &[Point], range: f64) -> bool {
    connected_components(points, range).len() > 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_merges_and_counts_components() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(3, 4));
        assert!(!uf.union(1, 0), "already merged");
        assert_eq!(uf.component_count(), 3);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 3));
        assert!(uf.union(1, 4));
        assert!(uf.connected(0, 3));
        assert_eq!(uf.component_count(), 2);
        assert_eq!(uf.len(), 5);
    }

    #[test]
    fn empty_union_find_is_consistent() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.component_count(), 0);
    }

    #[test]
    fn two_clusters_form_two_components() {
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(20.0, 0.0),
            Point::new(500.0, 500.0),
            Point::new(510.0, 500.0),
        ];
        let comps = connected_components(&points, 15.0);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 1, 2]);
        assert_eq!(comps[1], vec![3, 4]);
        assert!(is_disconnected(&points, 15.0));
    }

    #[test]
    fn large_range_connects_everything() {
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(300.0, 0.0),
            Point::new(600.0, 600.0),
        ];
        let comps = connected_components(&points, 10_000.0);
        assert_eq!(comps.len(), 1);
        assert!(!is_disconnected(&points, 10_000.0));
    }

    #[test]
    fn zero_range_isolates_every_point() {
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
        ];
        let comps = connected_components(&points, 0.5);
        assert_eq!(comps.len(), 3);
    }

    #[test]
    fn empty_and_single_point_inputs() {
        assert!(connected_components(&[], 10.0).is_empty());
        assert!(!is_disconnected(&[], 10.0));
        let single = connected_components(&[Point::ORIGIN], 10.0);
        assert_eq!(single, vec![vec![0]]);
        assert!(!is_disconnected(&[Point::ORIGIN], 10.0));
    }

    #[test]
    fn generic_distance_components_mirror_the_point_based_ones() {
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(400.0, 400.0),
        ];
        let by = connected_components_by(points.len(), 15.0, |i, j| points[i].distance(&points[j]));
        assert_eq!(by, connected_components(&points, 15.0));
        assert!(is_disconnected_by(points.len(), 15.0, |i, j| points[i].distance(&points[j])));

        // A non-Euclidean distance (here: a blocked pair) changes the
        // answer — the point of the generic API.
        let blocked = connected_components_by(points.len(), 15.0, |i, j| {
            if (i, j) == (0, 1) || (i, j) == (1, 0) {
                1e9 // a wall between 0 and 1
            } else {
                points[i].distance(&points[j])
            }
        });
        assert_eq!(blocked.len(), 3);
    }

    #[test]
    fn connectivity_is_transitive_through_chains() {
        // A chain of points each 10 m apart is one component at range 10
        // even though the ends are 40 m apart.
        let chain: Vec<Point> = (0..5).map(|i| Point::new(10.0 * i as f64, 0.0)).collect();
        let comps = connected_components(&chain, 10.0);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 5);
    }
}
