//! Nodes of the monitoring field: targets, the sink and the recharge
//! station.
//!
//! The paper (Definition 1) distinguishes Normal Target Points (weight 1)
//! from Very Important Points (weight ≥ 2). The sink is "also treated as a
//! target point, which should be visited by DMs" (§2.1), and RW-TCTP treats
//! the recharge station "as an NTP" spliced into the path (§IV).

use mule_geom::Point;
use serde::{Deserialize, Serialize};

/// Stable identifier of a node within a [`crate::Field`]. This is the index
/// into the field's node list, so it doubles as the tour index used by
//  the planners.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The raw index value.
    #[inline]
    pub fn index(&self) -> usize {
        self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Integer visiting weight of a target (paper Definition 1): weight 1 is a
/// Normal Target Point, weight ≥ 2 is a Very Important Point that must be
/// visited that many times per complete traversal of the patrolling path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Weight(u32);

impl Weight {
    /// The NTP weight.
    pub const NORMAL: Weight = Weight(1);

    /// Creates a weight; values below 1 are clamped to 1 (a target that is
    /// never visited is outside the problem definition).
    pub fn new(w: u32) -> Self {
        Weight(w.max(1))
    }

    /// The numeric weight value.
    #[inline]
    pub fn value(&self) -> u32 {
        self.0
    }

    /// Returns `true` for VIP weights (≥ 2).
    #[inline]
    pub fn is_vip(&self) -> bool {
        self.0 >= 2
    }
}

impl Default for Weight {
    fn default() -> Self {
        Weight::NORMAL
    }
}

impl From<u32> for Weight {
    fn from(w: u32) -> Self {
        Weight::new(w)
    }
}

/// What role a node plays in the field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A sensing target whose buffered data must be collected periodically.
    Target,
    /// The sink the collected data is ferried back to. The paper treats the
    /// sink as a target, so it participates in every patrolling path.
    Sink,
    /// The energy recharge station used by RW-TCTP. It is *not* part of the
    /// ordinary patrolling path (WPP); only the recharge path (WRP) visits
    /// it.
    RechargeStation,
}

impl NodeKind {
    /// Whether this node must appear in the ordinary weighted patrolling
    /// path. Targets and the sink do; the recharge station does not.
    #[inline]
    pub fn is_patrolled(&self) -> bool {
        matches!(self, NodeKind::Target | NodeKind::Sink)
    }
}

/// A node of the monitoring field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Stable identifier (index into the field's node list).
    pub id: NodeId,
    /// Location in the field, metres.
    pub position: Point,
    /// Role of the node.
    pub kind: NodeKind,
    /// Visiting weight; only meaningful for patrolled nodes.
    pub weight: Weight,
    /// Whether the node currently participates in the network. Dynamic
    /// scenarios deactivate failed or not-yet-arrived targets instead of
    /// removing them, so [`NodeId`]s (which are list indices) stay stable
    /// across replans.
    pub active: bool,
}

impl Node {
    /// Creates a target node.
    pub fn target(id: usize, position: Point, weight: Weight) -> Self {
        Node {
            id: NodeId(id),
            position,
            kind: NodeKind::Target,
            weight,
            active: true,
        }
    }

    /// Creates the sink node (always weight 1, matching the paper's
    /// treatment of the sink as an ordinary target).
    pub fn sink(id: usize, position: Point) -> Self {
        Node {
            id: NodeId(id),
            position,
            kind: NodeKind::Sink,
            weight: Weight::NORMAL,
            active: true,
        }
    }

    /// Creates the recharge station node.
    pub fn recharge_station(id: usize, position: Point) -> Self {
        Node {
            id: NodeId(id),
            position,
            kind: NodeKind::RechargeStation,
            weight: Weight::NORMAL,
            active: true,
        }
    }

    /// Returns `true` when this node is a VIP target.
    #[inline]
    pub fn is_vip(&self) -> bool {
        self.kind == NodeKind::Target && self.weight.is_vip()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_clamps_zero_to_one() {
        assert_eq!(Weight::new(0).value(), 1);
        assert_eq!(Weight::new(1).value(), 1);
        assert_eq!(Weight::new(5).value(), 5);
        assert_eq!(Weight::default(), Weight::NORMAL);
        let w: Weight = 3u32.into();
        assert_eq!(w.value(), 3);
    }

    #[test]
    fn vip_detection_follows_definition_one() {
        assert!(!Weight::new(1).is_vip());
        assert!(Weight::new(2).is_vip());
        assert!(Weight::new(7).is_vip());
    }

    #[test]
    fn node_constructors_set_expected_kinds() {
        let t = Node::target(0, Point::new(1.0, 2.0), Weight::new(3));
        let s = Node::sink(1, Point::ORIGIN);
        let r = Node::recharge_station(2, Point::new(5.0, 5.0));
        assert_eq!(t.kind, NodeKind::Target);
        assert_eq!(s.kind, NodeKind::Sink);
        assert_eq!(r.kind, NodeKind::RechargeStation);
        assert!(t.is_vip());
        assert!(!s.is_vip());
        assert!(!r.is_vip());
        assert_eq!(s.weight, Weight::NORMAL);
    }

    #[test]
    fn patrolled_kinds_exclude_the_recharge_station() {
        assert!(NodeKind::Target.is_patrolled());
        assert!(NodeKind::Sink.is_patrolled());
        assert!(!NodeKind::RechargeStation.is_patrolled());
    }

    #[test]
    fn node_id_displays_with_paper_notation() {
        assert_eq!(NodeId(4).to_string(), "g4");
        assert_eq!(NodeId(4).index(), 4);
        assert!(NodeId(1) < NodeId(2));
    }
}
