//! Data buffers: the sensing data that accumulates at targets and the
//! payload a mule carries back to the sink.
//!
//! The paper's evaluation metric, Data Collection Delay Time (DCDT), is the
//! age of the data sitting at a target when a mule finally picks it up —
//! exactly the time since the previous visit. Modelling an explicit buffer
//! (rather than just visit timestamps) lets the simulator also report how
//! much data a mule is ferrying and when it is delivered to the sink, which
//! the energy-efficiency discussion needs.

use crate::node::NodeId;
use serde::{Deserialize, Serialize};

/// The sensing-data buffer at a single target.
///
/// Data is generated at a constant rate (bytes per second); a visiting mule
/// drains the buffer completely (the paper assumes collection of a target's
/// data is a fixed-cost operation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataBuffer {
    /// Generation rate in bytes per second.
    rate_bps: f64,
    /// Time the buffer was last drained (simulation seconds).
    last_collected_at: f64,
    /// Total bytes ever generated that have been collected.
    total_collected: f64,
}

impl DataBuffer {
    /// Creates a buffer that starts empty at time zero.
    pub fn new(rate_bps: f64) -> Self {
        DataBuffer {
            rate_bps: rate_bps.max(0.0),
            last_collected_at: 0.0,
            total_collected: 0.0,
        }
    }

    /// Bytes currently waiting at the target at simulation time `now`.
    pub fn pending_bytes(&self, now: f64) -> f64 {
        (now - self.last_collected_at).max(0.0) * self.rate_bps
    }

    /// Age of the oldest byte in the buffer at time `now` — this is the
    /// data-collection delay the paper plots.
    pub fn data_age(&self, now: f64) -> f64 {
        (now - self.last_collected_at).max(0.0)
    }

    /// Drains the buffer at time `now`, returning `(bytes, age)` of the
    /// collected batch.
    pub fn collect(&mut self, now: f64) -> (f64, f64) {
        let bytes = self.pending_bytes(now);
        let age = self.data_age(now);
        self.total_collected += bytes;
        self.last_collected_at = self.last_collected_at.max(now);
        (bytes, age)
    }

    /// Restarts accumulation at time `now` without crediting any collected
    /// bytes — used when a failed target recovers or a late target comes
    /// online: data "generated" while the target was down never existed, so
    /// it must not appear as pending bytes or inflate the data age. The
    /// buffer clock never moves backwards.
    pub fn restart_at(&mut self, now: f64) {
        self.last_collected_at = self.last_collected_at.max(now);
    }

    /// Time of the most recent collection.
    #[inline]
    pub fn last_collected_at(&self) -> f64 {
        self.last_collected_at
    }

    /// Total bytes collected from this target so far.
    #[inline]
    pub fn total_collected(&self) -> f64 {
        self.total_collected
    }

    /// The configured generation rate.
    #[inline]
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }
}

/// The payload a mule is carrying: per-target batches awaiting delivery to
/// the sink.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MulePayload {
    batches: Vec<(NodeId, f64)>,
    delivered_bytes: f64,
    deliveries: usize,
}

impl MulePayload {
    /// Creates an empty payload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a batch of `bytes` collected from `target`.
    pub fn load(&mut self, target: NodeId, bytes: f64) {
        self.batches.push((target, bytes));
    }

    /// Bytes currently on board.
    pub fn onboard_bytes(&self) -> f64 {
        self.batches.iter().map(|(_, b)| b).sum()
    }

    /// Number of undelivered batches on board.
    pub fn onboard_batches(&self) -> usize {
        self.batches.len()
    }

    /// Delivers everything on board to the sink, returning the delivered
    /// byte count.
    pub fn deliver_all(&mut self) -> f64 {
        let bytes = self.onboard_bytes();
        if !self.batches.is_empty() {
            self.deliveries += 1;
        }
        self.delivered_bytes += bytes;
        self.batches.clear();
        bytes
    }

    /// Total bytes delivered to the sink over the mule's lifetime.
    #[inline]
    pub fn delivered_bytes(&self) -> f64 {
        self.delivered_bytes
    }

    /// Number of non-empty sink deliveries made.
    #[inline]
    pub fn deliveries(&self) -> usize {
        self.deliveries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_accumulates_at_the_configured_rate() {
        let b = DataBuffer::new(2.0);
        assert_eq!(b.pending_bytes(10.0), 20.0);
        assert_eq!(b.data_age(10.0), 10.0);
        assert_eq!(b.rate_bps(), 2.0);
    }

    #[test]
    fn negative_rates_are_clamped_to_zero() {
        let b = DataBuffer::new(-5.0);
        assert_eq!(b.pending_bytes(100.0), 0.0);
    }

    #[test]
    fn collect_drains_and_advances_the_clock() {
        let mut b = DataBuffer::new(1.5);
        let (bytes, age) = b.collect(20.0);
        assert_eq!(bytes, 30.0);
        assert_eq!(age, 20.0);
        assert_eq!(b.last_collected_at(), 20.0);
        assert_eq!(b.pending_bytes(20.0), 0.0);
        // Another 10 s later only the newly generated data is pending.
        assert_eq!(b.pending_bytes(30.0), 15.0);
        let (bytes2, age2) = b.collect(30.0);
        assert_eq!(bytes2, 15.0);
        assert_eq!(age2, 10.0);
        assert_eq!(b.total_collected(), 45.0);
    }

    #[test]
    fn collection_in_the_past_never_rewinds_the_buffer() {
        let mut b = DataBuffer::new(1.0);
        b.collect(50.0);
        let (bytes, age) = b.collect(10.0);
        assert_eq!(bytes, 0.0);
        assert_eq!(age, 0.0);
        assert_eq!(b.last_collected_at(), 50.0);
    }

    #[test]
    fn restart_discards_downtime_without_crediting_bytes() {
        let mut b = DataBuffer::new(2.0);
        b.restart_at(30.0);
        assert_eq!(b.pending_bytes(30.0), 0.0);
        assert_eq!(b.data_age(40.0), 10.0, "age counts from the restart");
        assert_eq!(b.total_collected(), 0.0, "restart is not a collection");
        // Restarting in the past never rewinds the clock.
        b.restart_at(5.0);
        assert_eq!(b.last_collected_at(), 30.0);
    }

    #[test]
    fn payload_tracks_onboard_and_delivered_bytes() {
        let mut p = MulePayload::new();
        assert_eq!(p.onboard_bytes(), 0.0);
        p.load(NodeId(1), 100.0);
        p.load(NodeId(2), 50.0);
        assert_eq!(p.onboard_bytes(), 150.0);
        assert_eq!(p.onboard_batches(), 2);
        let delivered = p.deliver_all();
        assert_eq!(delivered, 150.0);
        assert_eq!(p.onboard_bytes(), 0.0);
        assert_eq!(p.delivered_bytes(), 150.0);
        assert_eq!(p.deliveries(), 1);
        // Delivering with nothing on board does not count as a delivery.
        assert_eq!(p.deliver_all(), 0.0);
        assert_eq!(p.deliveries(), 1);
    }
}
