//! Range-based radio model.
//!
//! The paper uses a disk model: a mule can sense a target within 10 m and
//! exchange data within 20 m. The simulator treats "the mule has arrived at
//! the target" as "the target is within communication range and the mule is
//! at its closest approach", so these predicates are the only physical-layer
//! behaviour needed. A [`LinkBudget`] adds an optional transfer-rate model
//! so collection can take non-zero time when desired (the paper charges a
//! fixed per-target collection energy instead).

use crate::field::RadioParameters;
use mule_geom::Point;
use serde::{Deserialize, Serialize};

/// Returns `true` when `target` is within the mule's sensing range.
#[inline]
pub fn in_sensing_range(params: &RadioParameters, mule: &Point, target: &Point) -> bool {
    mule.distance(target) <= params.sensing_range_m
}

/// Returns `true` when `target` is within the mule's communication range.
#[inline]
pub fn in_communication_range(params: &RadioParameters, mule: &Point, target: &Point) -> bool {
    mule.distance(target) <= params.communication_range_m
}

/// A simple link model: a fixed transfer rate inside communication range,
/// zero outside.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkBudget {
    /// Transfer rate inside communication range, bytes per second.
    pub rate_bps: f64,
    /// Radio ranges.
    pub radio: RadioParameters,
}

impl Default for LinkBudget {
    fn default() -> Self {
        LinkBudget {
            // 250 kbit/s ≈ an 802.15.4 sensor link, a representative rate
            // for the class of hardware the paper targets.
            rate_bps: 31_250.0,
            radio: RadioParameters::default(),
        }
    }
}

impl LinkBudget {
    /// Achievable transfer rate between a mule at `mule` and a target at
    /// `target`: the nominal rate inside communication range, zero outside.
    pub fn rate_between(&self, mule: &Point, target: &Point) -> f64 {
        if in_communication_range(&self.radio, mule, target) {
            self.rate_bps
        } else {
            0.0
        }
    }

    /// Time to transfer `bytes` from the target to a stationary mule at
    /// `mule`. Returns `None` when the target is out of range.
    pub fn transfer_time(&self, mule: &Point, target: &Point, bytes: f64) -> Option<f64> {
        let rate = self.rate_between(mule, target);
        if rate <= 0.0 {
            None
        } else {
            Some(bytes.max(0.0) / rate)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_predicates_use_paper_defaults() {
        let p = RadioParameters::default();
        let mule = Point::ORIGIN;
        assert!(in_sensing_range(&p, &mule, &Point::new(9.9, 0.0)));
        assert!(in_sensing_range(&p, &mule, &Point::new(10.0, 0.0)));
        assert!(!in_sensing_range(&p, &mule, &Point::new(10.1, 0.0)));
        assert!(in_communication_range(&p, &mule, &Point::new(19.9, 0.0)));
        assert!(!in_communication_range(&p, &mule, &Point::new(20.1, 0.0)));
    }

    #[test]
    fn sensing_range_is_contained_in_communication_range() {
        let p = RadioParameters::default();
        let mule = Point::new(100.0, 100.0);
        for d in [0.0, 5.0, 10.0] {
            let t = Point::new(100.0 + d, 100.0);
            if in_sensing_range(&p, &mule, &t) {
                assert!(in_communication_range(&p, &mule, &t));
            }
        }
    }

    #[test]
    fn link_budget_rate_is_zero_out_of_range() {
        let lb = LinkBudget::default();
        let mule = Point::ORIGIN;
        assert_eq!(lb.rate_between(&mule, &Point::new(5.0, 0.0)), lb.rate_bps);
        assert_eq!(lb.rate_between(&mule, &Point::new(25.0, 0.0)), 0.0);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let lb = LinkBudget {
            rate_bps: 1000.0,
            radio: RadioParameters::default(),
        };
        let mule = Point::ORIGIN;
        let near = Point::new(1.0, 0.0);
        assert_eq!(lb.transfer_time(&mule, &near, 2000.0), Some(2.0));
        assert_eq!(lb.transfer_time(&mule, &near, -5.0), Some(0.0));
        assert_eq!(lb.transfer_time(&mule, &Point::new(50.0, 0.0), 10.0), None);
    }
}
