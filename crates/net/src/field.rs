//! The assembled monitoring field.
//!
//! A [`Field`] bundles the node list (targets, sink, optional recharge
//! station), the radio parameters and the field extents, and offers the
//! lookups the planners and the simulator need: "all patrolled positions",
//! "the weight of target k", "the recharge station, if any".

use crate::node::{Node, NodeId, NodeKind, Weight};
use mule_geom::{BoundingBox, Point};
use serde::{Deserialize, Serialize};

/// Radio-range constants of the data mules.
///
/// Defaults follow the paper's simulation model (§5.1): sensing range 10 m,
/// communication range 20 m.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioParameters {
    /// Sensing range of a mule in metres.
    pub sensing_range_m: f64,
    /// Communication range of a mule in metres.
    pub communication_range_m: f64,
}

impl Default for RadioParameters {
    fn default() -> Self {
        RadioParameters {
            sensing_range_m: 10.0,
            communication_range_m: 20.0,
        }
    }
}

/// The monitoring field: nodes plus global parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Field {
    nodes: Vec<Node>,
    bounds: BoundingBox,
    radio: RadioParameters,
}

impl Field {
    /// Starts building a field over the given bounding box.
    pub fn builder(bounds: BoundingBox) -> FieldBuilder {
        FieldBuilder {
            nodes: Vec::new(),
            bounds,
            radio: RadioParameters::default(),
        }
    }

    /// All nodes, in id order.
    #[inline]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes of every kind.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when the field has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The field extents.
    #[inline]
    pub fn bounds(&self) -> BoundingBox {
        self.bounds
    }

    /// The radio parameters.
    #[inline]
    pub fn radio(&self) -> RadioParameters {
        self.radio
    }

    /// Node lookup by id.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.index())
    }

    /// Toggles a node's activity (dynamic scenarios deactivate failed or
    /// not-yet-arrived targets rather than removing them, so ids stay
    /// stable). Returns `false` when the id is unknown.
    pub fn set_active(&mut self, id: NodeId, active: bool) -> bool {
        match self.nodes.get_mut(id.index()) {
            Some(node) => {
                node.active = active;
                true
            }
            None => false,
        }
    }

    /// *Active* nodes that participate in the ordinary patrolling path
    /// (targets and the sink), in id order. Deactivated targets are
    /// excluded, which is how replanning sees only the surviving world.
    pub fn patrolled_nodes(&self) -> Vec<&Node> {
        self.nodes
            .iter()
            .filter(|n| n.active && n.kind.is_patrolled())
            .collect()
    }

    /// Positions of the patrolled nodes, in id order — the point set handed
    /// to the Hamiltonian-circuit construction.
    pub fn patrolled_positions(&self) -> Vec<Point> {
        self.patrolled_nodes().iter().map(|n| n.position).collect()
    }

    /// Ids of the patrolled nodes, aligned with
    /// [`Field::patrolled_positions`].
    pub fn patrolled_ids(&self) -> Vec<NodeId> {
        self.patrolled_nodes().iter().map(|n| n.id).collect()
    }

    /// Weights of the patrolled nodes, aligned with
    /// [`Field::patrolled_positions`].
    pub fn patrolled_weights(&self) -> Vec<Weight> {
        self.patrolled_nodes().iter().map(|n| n.weight).collect()
    }

    /// The sink node, if one was added.
    pub fn sink(&self) -> Option<&Node> {
        self.nodes.iter().find(|n| n.kind == NodeKind::Sink)
    }

    /// The recharge station, if one was added.
    pub fn recharge_station(&self) -> Option<&Node> {
        self.nodes
            .iter()
            .find(|n| n.kind == NodeKind::RechargeStation)
    }

    /// All VIP targets (weight ≥ 2).
    pub fn vips(&self) -> Vec<&Node> {
        self.nodes.iter().filter(|n| n.is_vip()).collect()
    }

    /// Number of targets (excluding sink and recharge station), active or
    /// not.
    pub fn target_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Target)
            .count()
    }

    /// Ids of all target nodes (active or not), in id order.
    pub fn target_ids(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Target)
            .map(|n| n.id)
            .collect()
    }
}

/// Incremental builder for a [`Field`].
#[derive(Debug, Clone)]
pub struct FieldBuilder {
    nodes: Vec<Node>,
    bounds: BoundingBox,
    radio: RadioParameters,
}

impl FieldBuilder {
    /// Overrides the radio parameters (defaults follow the paper).
    pub fn radio(mut self, radio: RadioParameters) -> Self {
        self.radio = radio;
        self
    }

    /// Adds a target with the given weight; returns its id.
    pub fn add_target(&mut self, position: Point, weight: Weight) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node::target(id, position, weight));
        NodeId(id)
    }

    /// Adds the sink; returns its id.
    pub fn add_sink(&mut self, position: Point) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node::sink(id, position));
        NodeId(id)
    }

    /// Adds the recharge station; returns its id.
    pub fn add_recharge_station(&mut self, position: Point) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node::recharge_station(id, position));
        NodeId(id)
    }

    /// Finalises the field.
    pub fn build(self) -> Field {
        Field {
            nodes: self.nodes,
            bounds: self.bounds,
            radio: self.radio,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_field() -> Field {
        let mut b = Field::builder(BoundingBox::square(800.0));
        b.add_sink(Point::new(400.0, 400.0));
        b.add_target(Point::new(100.0, 100.0), Weight::new(1));
        b.add_target(Point::new(700.0, 100.0), Weight::new(3));
        b.add_target(Point::new(100.0, 700.0), Weight::new(1));
        b.add_recharge_station(Point::new(400.0, 10.0));
        b.build()
    }

    #[test]
    fn builder_assigns_sequential_ids() {
        let f = sample_field();
        assert_eq!(f.len(), 5);
        for (i, n) in f.nodes().iter().enumerate() {
            assert_eq!(n.id.index(), i);
        }
        assert_eq!(f.node(NodeId(2)).unwrap().weight.value(), 3);
        assert!(f.node(NodeId(99)).is_none());
    }

    #[test]
    fn patrolled_nodes_exclude_the_recharge_station() {
        let f = sample_field();
        assert_eq!(f.patrolled_nodes().len(), 4);
        assert_eq!(f.patrolled_positions().len(), 4);
        assert_eq!(f.patrolled_ids().len(), 4);
        assert_eq!(f.patrolled_weights().len(), 4);
        assert!(f
            .patrolled_nodes()
            .iter()
            .all(|n| n.kind != NodeKind::RechargeStation));
    }

    #[test]
    fn sink_recharge_and_vip_lookups() {
        let f = sample_field();
        assert_eq!(f.sink().unwrap().id, NodeId(0));
        assert_eq!(f.recharge_station().unwrap().id, NodeId(4));
        let vips = f.vips();
        assert_eq!(vips.len(), 1);
        assert_eq!(vips[0].id, NodeId(2));
        assert_eq!(f.target_count(), 3);
    }

    #[test]
    fn default_radio_matches_paper_parameters() {
        let f = sample_field();
        assert_eq!(f.radio().sensing_range_m, 10.0);
        assert_eq!(f.radio().communication_range_m, 20.0);
        assert_eq!(f.bounds(), BoundingBox::square(800.0));
    }

    #[test]
    fn radio_override_is_respected() {
        let custom = RadioParameters {
            sensing_range_m: 5.0,
            communication_range_m: 50.0,
        };
        let f = Field::builder(BoundingBox::square(100.0))
            .radio(custom)
            .build();
        assert!(f.is_empty());
        assert_eq!(f.radio(), custom);
        assert!(f.sink().is_none());
        assert!(f.recharge_station().is_none());
        assert!(f.vips().is_empty());
    }

    #[test]
    fn deactivated_targets_leave_the_patrolled_set_but_keep_their_ids() {
        let mut f = sample_field();
        assert_eq!(
            f.patrolled_ids(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
        assert!(f.set_active(NodeId(2), false));
        assert_eq!(f.patrolled_ids(), vec![NodeId(0), NodeId(1), NodeId(3)]);
        assert_eq!(f.patrolled_positions().len(), 3);
        // The node itself is still addressable under its original id.
        assert_eq!(f.node(NodeId(2)).unwrap().id, NodeId(2));
        assert!(!f.node(NodeId(2)).unwrap().active);
        // Raw target census is unaffected by activity.
        assert_eq!(f.target_count(), 3);
        assert_eq!(f.target_ids(), vec![NodeId(1), NodeId(2), NodeId(3)]);
        // Reactivation restores the patrolled set.
        assert!(f.set_active(NodeId(2), true));
        assert_eq!(f.patrolled_ids().len(), 4);
        assert!(!f.set_active(NodeId(99), false));
    }

    #[test]
    fn field_clone_and_equality_are_structural() {
        let f = sample_field();
        let g = f.clone();
        assert_eq!(f, g);
        assert_eq!(format!("{:?}", f), format!("{:?}", g));
    }
}
