//! Span-attributed allocation tracking and process-memory sampling.
//!
//! [`CountingAlloc`] is a dependency-free counting wrapper around any
//! [`GlobalAlloc`] (in practice [`std::alloc::System`]); the crate installs
//! it as the workspace-wide `#[global_allocator]`, so `patrolctl` and every
//! test/bench binary that links `mule-obs` pays exactly **one relaxed
//! atomic load per allocator call** while no collector is armed — the same
//! discipline `mule_fault::point` uses for fault sites.
//!
//! When [`arm`]ed, every allocator call additionally maintains
//!
//! * **global tallies** (process-wide atomics): alloc/dealloc/realloc
//!   counts, allocated/freed bytes, live bytes and the live-bytes
//!   high-water mark — read with [`stats`], scoped with [`reset_peak`];
//! * **thread-local tallies** (plain `Cell`s, allocation-free): the same
//!   counts for the current thread, which is what lets the tracing layer
//!   in the crate root attribute allocations to the *innermost open span*
//!   without ever touching the (re-entrant, `RefCell`-guarded) collector
//!   from inside the allocator hook.
//!
//! ## Determinism contract
//!
//! Allocation **counts** per span are a pure function of the traced
//! computation (the same seed performs the same allocations), so they are
//! pinned by golden tests exactly like span shape. Allocation **bytes**,
//! peak-live and RSS figures ride alongside for capacity analysis and are
//! **never** pinned — see `docs/DETERMINISM.md`.
//!
//! ## Process RSS
//!
//! [`rss_now_kb`] / [`rss_peak_kb`] sample `VmRSS` / `VmHWM` from
//! `/proc/self/status` and return `None` gracefully where procfs is not
//! available (non-Linux); [`reset_rss_peak`] asks the kernel to reset the
//! high-water mark via `/proc/self/clear_refs` so benches can scope the
//! peak to one workload.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Number of outstanding [`arm`] calls. A counter rather than a flag so
/// overlapping armed sections (parallel tests, a long-armed server plus a
/// scoped bench) compose; the fast path is still one relaxed load.
static ARMED: AtomicU64 = AtomicU64::new(0);

// Global (process-wide) tallies. Only written while armed.
static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static DEALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static REALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);
static FREED_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
static PEAK_LIVE_BYTES: AtomicI64 = AtomicI64::new(0);

// Per-thread tallies. Plain `Cell`s with const initialisers: touching them
// from inside the allocator hook performs no allocation and registers no
// TLS destructor, so the hook can never re-enter itself.
thread_local! {
    static TL_ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
    static TL_REALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
    static TL_DEALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
    static TL_ALLOCATED_BYTES: Cell<u64> = const { Cell::new(0) };
    static TL_FREED_BYTES: Cell<u64> = const { Cell::new(0) };
    static TL_LIVE_BYTES: Cell<i64> = const { Cell::new(0) };
    /// Peak of `TL_LIVE_BYTES` within the innermost open span window; the
    /// crate root saves/restores it around span open/close.
    static TL_WINDOW_PEAK: Cell<i64> = const { Cell::new(0) };
}

/// Arms the tallies: until the matching [`disarm`], every allocator call
/// updates the global and thread-local counters. Arming is process-global
/// and counted, so overlapping armed sections compose; tests that assert
/// on *global* tallies must still serialise on a lock of their own.
pub fn arm() {
    ARMED.fetch_add(1, Ordering::Relaxed);
}

/// Releases one [`arm`]; the one-relaxed-load fast path returns once
/// every armed section has ended. Unpaired calls are clamped at zero.
pub fn disarm() {
    let _ = ARMED.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        Some(v.saturating_sub(1))
    });
}

/// `true` while at least one caller has the tallies armed.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed) > 0
}

/// A snapshot of allocation tallies (global via [`stats`], current-thread
/// via [`thread_stats`]). All figures count only activity that happened
/// while armed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Number of `alloc` / `alloc_zeroed` calls.
    pub alloc_count: u64,
    /// Number of `realloc` calls.
    pub realloc_count: u64,
    /// Number of `dealloc` calls.
    pub dealloc_count: u64,
    /// Total bytes requested by allocations (reallocs count their new
    /// size).
    pub allocated_bytes: u64,
    /// Total bytes released (reallocs count their old size).
    pub freed_bytes: u64,
    /// Live bytes: allocated minus freed. Clamped at zero — frees of
    /// blocks allocated before arming would otherwise drive it negative.
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` since arming (global) or since the
    /// current span window opened (thread).
    pub peak_live_bytes: u64,
}

impl AllocStats {
    /// Alloc plus realloc events — the deterministic per-span count the
    /// golden tests pin.
    pub fn events(&self) -> u64 {
        self.alloc_count + self.realloc_count
    }
}

fn clamp(v: i64) -> u64 {
    v.max(0) as u64
}

/// Snapshot of the global tallies.
pub fn stats() -> AllocStats {
    AllocStats {
        alloc_count: ALLOC_COUNT.load(Ordering::Relaxed),
        realloc_count: REALLOC_COUNT.load(Ordering::Relaxed),
        dealloc_count: DEALLOC_COUNT.load(Ordering::Relaxed),
        allocated_bytes: ALLOCATED_BYTES.load(Ordering::Relaxed),
        freed_bytes: FREED_BYTES.load(Ordering::Relaxed),
        live_bytes: clamp(LIVE_BYTES.load(Ordering::Relaxed)),
        peak_live_bytes: clamp(PEAK_LIVE_BYTES.load(Ordering::Relaxed)),
    }
}

/// Snapshot of the calling thread's tallies.
pub fn thread_stats() -> AllocStats {
    AllocStats {
        alloc_count: TL_ALLOC_COUNT.with(Cell::get),
        realloc_count: TL_REALLOC_COUNT.with(Cell::get),
        dealloc_count: TL_DEALLOC_COUNT.with(Cell::get),
        allocated_bytes: TL_ALLOCATED_BYTES.with(Cell::get),
        freed_bytes: TL_FREED_BYTES.with(Cell::get),
        live_bytes: clamp(TL_LIVE_BYTES.with(Cell::get)),
        peak_live_bytes: clamp(TL_WINDOW_PEAK.with(Cell::get)),
    }
}

/// Resets the **global** live-bytes high-water mark to the current live
/// figure, so the next [`stats`] reports the peak of the workload that
/// follows. Counters are never reset (they are monotonic; measure deltas).
pub fn reset_peak() {
    PEAK_LIVE_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Resets the calling **thread's** live-bytes high-water mark to its
/// current live figure, scoping the next [`thread_stats`] peak to the
/// workload that follows. Benches use this instead of the global peak so
/// allocation on unrelated threads cannot pollute the measurement.
pub fn reset_thread_peak() {
    TL_LIVE_BYTES.with(|l| TL_WINDOW_PEAK.with(|p| p.set(l.get())));
}

/// A pending span allocation window, opened by the tracing layer when a
/// span opens while armed and closed into a [`crate::trace::SpanAlloc`]
/// when it closes. Lives on the collector's window stack, parallel to the
/// span stack.
#[derive(Debug, Clone, Copy)]
pub struct SpanWindow {
    start_events: u64,
    start_bytes: u64,
    saved_peak: i64,
}

/// Opens an allocation window for the span being opened on this thread:
/// snapshots the thread tallies and resets the window peak to the current
/// live figure. Returns `None` when the tallies are not armed.
pub(crate) fn open_window() -> Option<SpanWindow> {
    if !armed() {
        return None;
    }
    let start_events = TL_ALLOC_COUNT.with(Cell::get) + TL_REALLOC_COUNT.with(Cell::get);
    let start_bytes = TL_ALLOCATED_BYTES.with(Cell::get);
    let live = TL_LIVE_BYTES.with(Cell::get);
    let saved_peak = TL_WINDOW_PEAK.with(|p| p.replace(live));
    Some(SpanWindow {
        start_events,
        start_bytes,
        saved_peak,
    })
}

/// Closes an allocation window in LIFO order, returning the span's
/// attribution and restoring the enclosing window's peak (the closed
/// window's peak also happened inside the enclosing span).
pub(crate) fn close_window(window: SpanWindow) -> crate::trace::SpanAlloc {
    let events = TL_ALLOC_COUNT.with(Cell::get) + TL_REALLOC_COUNT.with(Cell::get);
    let bytes = TL_ALLOCATED_BYTES.with(Cell::get);
    let my_peak = TL_WINDOW_PEAK.with(Cell::get);
    TL_WINDOW_PEAK.with(|p| p.set(window.saved_peak.max(my_peak)));
    crate::trace::SpanAlloc {
        allocs: events.saturating_sub(window.start_events),
        bytes: bytes.saturating_sub(window.start_bytes),
        peak_live: clamp(my_peak),
    }
}

#[inline]
fn record_alloc(size: u64) {
    ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
    ALLOCATED_BYTES.fetch_add(size, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
    PEAK_LIVE_BYTES.fetch_max(live, Ordering::Relaxed);
    // `try_with`: the thread may be tearing its TLS down; dropping the
    // sample is fine, panicking inside the allocator is not.
    let _ = TL_ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
    let _ = TL_ALLOCATED_BYTES.try_with(|c| c.set(c.get() + size));
    let _ = TL_LIVE_BYTES.try_with(|c| {
        let live = c.get() + size as i64;
        c.set(live);
        let _ = TL_WINDOW_PEAK.try_with(|p| p.set(p.get().max(live)));
    });
}

#[inline]
fn record_dealloc(size: u64) {
    DEALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
    FREED_BYTES.fetch_add(size, Ordering::Relaxed);
    LIVE_BYTES.fetch_sub(size as i64, Ordering::Relaxed);
    let _ = TL_DEALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
    let _ = TL_FREED_BYTES.try_with(|c| c.set(c.get() + size));
    let _ = TL_LIVE_BYTES.try_with(|c| c.set(c.get() - size as i64));
}

#[inline]
fn record_realloc(old_size: u64, new_size: u64) {
    REALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
    ALLOCATED_BYTES.fetch_add(new_size, Ordering::Relaxed);
    FREED_BYTES.fetch_add(old_size, Ordering::Relaxed);
    let delta = new_size as i64 - old_size as i64;
    let live = LIVE_BYTES.fetch_add(delta, Ordering::Relaxed) + delta;
    PEAK_LIVE_BYTES.fetch_max(live, Ordering::Relaxed);
    let _ = TL_REALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
    let _ = TL_ALLOCATED_BYTES.try_with(|c| c.set(c.get() + new_size));
    let _ = TL_FREED_BYTES.try_with(|c| c.set(c.get() + old_size));
    let _ = TL_LIVE_BYTES.try_with(|c| {
        let live = c.get() + delta;
        c.set(live);
        let _ = TL_WINDOW_PEAK.try_with(|p| p.set(p.get().max(live)));
    });
}

/// A counting wrapper around a [`GlobalAlloc`]. Inert (one relaxed load
/// per call) until [`arm`]ed; the tallies themselves never allocate, so
/// the wrapper cannot re-enter itself.
#[derive(Debug, Default)]
pub struct CountingAlloc<A> {
    inner: A,
}

impl<A> CountingAlloc<A> {
    /// Wraps `inner` (usable in the `#[global_allocator]` static).
    pub const fn new(inner: A) -> Self {
        CountingAlloc { inner }
    }
}

// SAFETY: defers every allocation verbatim to the wrapped allocator; the
// bookkeeping touches only atomics and `Cell`s and never allocates.
unsafe impl<A: GlobalAlloc> GlobalAlloc for CountingAlloc<A> {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = self.inner.alloc(layout);
        if !ptr.is_null() && armed() {
            record_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = self.inner.alloc_zeroed(layout);
        if !ptr.is_null() && armed() {
            record_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.inner.dealloc(ptr, layout);
        if armed() {
            record_dealloc(layout.size() as u64);
        }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = self.inner.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() && armed() {
            record_realloc(layout.size() as u64, new_size as u64);
        }
        new_ptr
    }
}

/// The workspace-wide counting allocator. Declared here so `patrolctl`
/// and every test/bench binary that links `mule-obs` (transitively: the
/// whole workspace) gets allocation observability without per-binary
/// boilerplate.
#[global_allocator]
static GLOBAL_ALLOC: CountingAlloc<System> = CountingAlloc::new(System);

fn proc_status_kb(key: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(key) {
            let rest = rest.trim_start_matches(':').trim();
            let digits = rest.split_whitespace().next()?;
            return digits.parse().ok();
        }
    }
    None
}

/// Current resident set size in kilobytes (`VmRSS`), or `None` where
/// `/proc/self/status` is unavailable (non-Linux platforms).
pub fn rss_now_kb() -> Option<u64> {
    proc_status_kb("VmRSS")
}

/// Peak resident set size in kilobytes (`VmHWM`), or `None` where
/// `/proc/self/status` is unavailable. The kernel high-water mark is
/// process-monotonic unless reset with [`reset_rss_peak`].
pub fn rss_peak_kb() -> Option<u64> {
    proc_status_kb("VmHWM")
}

/// Best-effort reset of the kernel's peak-RSS figure (`echo 5 >
/// /proc/self/clear_refs`). Returns `false` where unsupported; callers
/// must then read [`rss_peak_kb`] as a monotonic process-lifetime peak.
pub fn reset_rss_peak() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Arming is process-global: every test that arms (here and in the
    /// crate-root tests) serialises on this lock and restores the
    /// disarmed state before releasing it.
    pub(crate) static ARM_LOCK: Mutex<()> = Mutex::new(());

    /// Runs `f` armed, under the lock, and disarms afterwards even on
    /// panic-free early returns.
    pub(crate) fn armed_section<T>(f: impl FnOnce() -> T) -> T {
        let _guard = ARM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        arm();
        let value = f();
        disarm();
        value
    }

    #[test]
    fn disarmed_allocator_leaves_all_tallies_untouched() {
        let _guard = ARM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        disarm();
        let global_before = stats();
        let thread_before = thread_stats();
        // Proptest-style sweep: pseudo-random allocation sizes and
        // shapes (vec growth, boxed slices, strings, reallocs via
        // push) driven from a deterministic LCG.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rand = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..256 {
            let n = (rand() % 4096) as usize + 1;
            let mut v: Vec<u8> = Vec::with_capacity(n % 17);
            for i in 0..n {
                v.push(i as u8);
            }
            let b: Box<[u64]> = (0..(n % 97) as u64).collect();
            let s = "x".repeat(n % 257);
            drop((v, b, s));
        }
        assert_eq!(
            stats(),
            global_before,
            "global tallies moved while disarmed"
        );
        assert_eq!(
            thread_stats(),
            thread_before,
            "thread tallies moved while disarmed"
        );
    }

    #[test]
    fn armed_allocator_counts_allocs_frees_and_live_bytes() {
        armed_section(|| {
            let before = thread_stats();
            let v: Vec<u8> = Vec::with_capacity(8 * 1024);
            let mid = thread_stats();
            assert!(mid.alloc_count > before.alloc_count);
            assert!(mid.allocated_bytes >= before.allocated_bytes + 8 * 1024);
            drop(v);
            let after = thread_stats();
            assert!(after.dealloc_count > mid.dealloc_count);
            assert!(after.freed_bytes >= mid.freed_bytes + 8 * 1024);
        });
    }

    #[test]
    fn realloc_counts_both_sides_and_tracks_peak() {
        armed_section(|| {
            let before = stats();
            let mut v: Vec<u8> = vec![0; 16];
            for i in 0..4096u32 {
                v.push(i as u8); // forces reallocs
            }
            let after = stats();
            assert!(after.realloc_count > before.realloc_count);
            assert!(after.allocated_bytes > before.allocated_bytes);
            assert!(after.freed_bytes > before.freed_bytes);
            assert!(after.peak_live_bytes >= 4096);
        });
    }

    #[test]
    fn reset_peak_rebases_to_current_live() {
        armed_section(|| {
            let spike: Vec<u8> = vec![0; 1 << 20];
            drop(spike);
            reset_peak();
            let s = stats();
            // The dropped megabyte no longer dominates the peak.
            assert!(s.peak_live_bytes <= s.live_bytes + (1 << 16));
        });
    }

    #[test]
    fn rss_sampler_reports_plausible_figures_on_linux() {
        match (rss_now_kb(), rss_peak_kb()) {
            (Some(now), Some(peak)) => {
                assert!(now > 0);
                assert!(peak >= now / 2, "peak {peak} vs now {now}");
            }
            // Graceful None off-Linux.
            (None, None) => {}
            other => panic!("inconsistent RSS sampler output: {other:?}"),
        }
    }

    #[test]
    fn events_sums_allocs_and_reallocs() {
        let s = AllocStats {
            alloc_count: 3,
            realloc_count: 2,
            ..AllocStats::default()
        };
        assert_eq!(s.events(), 5);
    }
}
