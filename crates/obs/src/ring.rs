//! Fixed-capacity, generation-counted telemetry ring buffers.
//!
//! [`Ring`] is the in-process store behind mule-serve's `/debug/*`
//! endpoints: recent sampled traces, recent request records, recent
//! structured-log events. The design goals, in order:
//!
//! 1. **Never block the request path.** A push takes one atomic
//!    `fetch_add` (the generation counter) plus one per-slot mutex that
//!    is only ever contended by a reader snapshotting that slot or by a
//!    writer lapping the whole ring — both rare and O(one record).
//! 2. **No torn records.** A record is stored together with its
//!    generation number under the slot lock, so a reader sees either the
//!    old `(generation, record)` pair or the new one, never a mix.
//! 3. **Monotone generations.** The global counter never repeats or goes
//!    backwards; a slot only accepts a write with a *newer* generation
//!    than what it holds, so a stalled writer that was lapped cannot
//!    clobber a fresher record with an older one.
//!
//! Readers take a [`Ring::snapshot`], which locks each slot briefly (one
//! at a time — never the whole ring) and returns the surviving records in
//! generation order. A snapshot taken while writers are active is a
//! *consistent sample*, not a serializable cut: records pushed mid-walk
//! may or may not appear, but every record returned is intact and the
//! returned generations are strictly increasing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// A fixed-capacity ring of the most recent records. See module docs.
#[derive(Debug)]
pub struct Ring<T> {
    slots: Vec<Mutex<Option<(u64, T)>>>,
    /// The next generation number; total records ever pushed.
    cursor: AtomicU64,
}

impl<T: Clone> Ring<T> {
    /// A ring keeping the last `capacity` records (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Ring {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
        }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever pushed (the next generation number).
    pub fn pushed(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Stores `value`, evicting the oldest record once full, and returns
    /// the record's generation number. Lock-light: see module docs.
    pub fn push(&self, value: T) -> u64 {
        let generation = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(generation % self.slots.len() as u64) as usize];
        let mut guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
        // Only-if-newer guard: a writer that stalled between reserving its
        // generation and taking the slot lock may find the ring already
        // lapped past it; dropping its stale record preserves monotony.
        if guard.as_ref().is_none_or(|(held, _)| generation > *held) {
            *guard = Some((generation, value));
        }
        generation
    }

    /// The surviving records as `(generation, record)` pairs in strictly
    /// increasing generation order (oldest first). Locks one slot at a
    /// time; never blocks writers on the ring as a whole.
    pub fn snapshot(&self) -> Vec<(u64, T)> {
        let mut out: Vec<(u64, T)> = self
            .slots
            .iter()
            .filter_map(|slot| {
                slot.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .as_ref()
                    .cloned()
            })
            .collect();
        out.sort_by_key(|(generation, _)| *generation);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn keeps_the_newest_records_in_generation_order() {
        let ring = Ring::new(4);
        for i in 0..10u64 {
            assert_eq!(ring.push(i * 100), i);
        }
        let snap = ring.snapshot();
        assert_eq!(snap, vec![(6, 600), (7, 700), (8, 800), (9, 900)]);
        assert_eq!(ring.pushed(), 10);
        assert_eq!(ring.capacity(), 4);
    }

    #[test]
    fn a_partially_filled_ring_returns_what_it_holds() {
        let ring = Ring::new(8);
        ring.push("a".to_string());
        ring.push("b".to_string());
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0], (0, "a".to_string()));
        assert_eq!(snap[1], (1, "b".to_string()));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let ring = Ring::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(1u8);
        ring.push(2u8);
        assert_eq!(ring.snapshot(), vec![(1, 2u8)]);
    }

    /// The wraparound contract under concurrent writers: generations stay
    /// monotone and unique, and no record is torn (each stored record's
    /// payload must round-trip with the generation it was pushed under).
    #[test]
    fn concurrent_wraparound_keeps_generations_monotone_and_records_intact() {
        const WRITERS: u64 = 8;
        const PER_WRITER: u64 = 2_000;
        // Payload derives from the writer's own (writer, i) pair; the
        // record carries a checksum so a torn read would be detectable.
        #[derive(Clone, PartialEq, Debug)]
        struct Record {
            writer: u64,
            index: u64,
            checksum: u64,
        }
        let ring = Arc::new(Ring::new(64));
        let handles: Vec<_> = (0..WRITERS)
            .map(|writer| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    let mut generations = Vec::with_capacity(PER_WRITER as usize);
                    for index in 0..PER_WRITER {
                        generations.push(ring.push(Record {
                            writer,
                            index,
                            checksum: writer ^ index.rotate_left(17),
                        }));
                    }
                    generations
                })
            })
            .collect();
        let mut all: Vec<u64> = Vec::new();
        for h in handles {
            let generations = h.join().unwrap();
            // Each writer's own generations are strictly increasing.
            assert!(generations.windows(2).all(|w| w[0] < w[1]));
            all.extend(generations);
        }
        // Generations are globally unique and dense.
        all.sort_unstable();
        assert_eq!(all.len() as u64, WRITERS * PER_WRITER);
        assert!(all.windows(2).all(|w| w[0] < w[1]), "duplicate generation");
        assert_eq!(ring.pushed(), WRITERS * PER_WRITER);

        // The final snapshot holds at most `capacity` intact records in
        // strictly increasing generation order, all from the newest part
        // of the stream.
        let snap = ring.snapshot();
        assert!(snap.len() <= 64);
        assert!(!snap.is_empty());
        assert!(snap.windows(2).all(|w| w[0].0 < w[1].0));
        for (generation, record) in &snap {
            assert_eq!(
                record.checksum,
                record.writer ^ record.index.rotate_left(17),
                "torn record at generation {generation}"
            );
        }
    }

    /// Readers snapshotting concurrently with wrapping writers only ever
    /// see intact records with increasing generations.
    #[test]
    fn concurrent_snapshots_see_only_intact_records() {
        let ring = Arc::new(Ring::new(8));
        let writer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..20_000u64 {
                    ring.push((i, i.wrapping_mul(0x9e3779b97f4a7c15)));
                }
            })
        };
        let reader = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for _ in 0..200 {
                    let snap = ring.snapshot();
                    assert!(snap.windows(2).all(|w| w[0].0 < w[1].0));
                    for (_, (i, check)) in &snap {
                        assert_eq!(*check, i.wrapping_mul(0x9e3779b97f4a7c15));
                    }
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
    }
}
