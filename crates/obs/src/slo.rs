//! Service-level-objective tracking: rolling windows and burn rates.
//!
//! An SLO here is up to two objectives parsed from one spec string
//! (`--slo "p99_ms=1.0,availability=99.9"`):
//!
//! * **`p99_ms`** — a latency objective: at least 99% of requests finish
//!   within the target, i.e. the *error budget* is the 1% of requests
//!   allowed to be slower. A request "spends budget" when its duration
//!   exceeds the target.
//! * **`availability`** — a success-rate objective in percent: the
//!   budget is `(100 − target)/100` of requests allowed to fail. A
//!   request spends budget when it is an error (5xx or rejected).
//!
//! [`SloTracker`] buckets request outcomes into one-second slots and
//! reports, per objective, the **burn rate** over several rolling
//! windows: `bad_fraction / budget_fraction`. A burn rate of 1.0 means
//! budget is being consumed exactly as fast as the objective allows;
//! 14.4 is the classic "page now" multi-window threshold. The tracker
//! takes *caller-supplied* timestamps (seconds), so tests drive it with
//! synthetic clocks and get deterministic reports — the serve wiring
//! feeds it monotonic seconds since server start.

/// Parsed `--slo` spec: which objectives are active and their targets.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SloSpec {
    /// Latency objective: 99% of requests must finish within this many
    /// milliseconds.
    pub p99_ms: Option<f64>,
    /// Availability objective in percent (e.g. `99.9`).
    pub availability_pct: Option<f64>,
}

impl SloSpec {
    /// Parses `"p99_ms=1.0,availability=99.9"` (either key optional, at
    /// least one required). Returns a human-readable error otherwise.
    pub fn parse(s: &str) -> Result<SloSpec, String> {
        let mut spec = SloSpec::default();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("SLO objective `{part}` is not key=value"))?;
            let value: f64 = value
                .trim()
                .parse()
                .map_err(|_| format!("SLO objective `{part}` has a non-numeric target"))?;
            match key.trim() {
                "p99_ms" => {
                    if value.is_nan() || value <= 0.0 {
                        return Err(format!("p99_ms target must be positive, got {value}"));
                    }
                    spec.p99_ms = Some(value);
                }
                "availability" => {
                    if !(value > 0.0 && value < 100.0) {
                        return Err(format!(
                            "availability target must be in (0, 100), got {value}"
                        ));
                    }
                    spec.availability_pct = Some(value);
                }
                other => {
                    return Err(format!(
                        "unknown SLO objective `{other}` (expected p99_ms or availability)"
                    ))
                }
            }
        }
        if spec.p99_ms.is_none() && spec.availability_pct.is_none() {
            return Err("SLO spec is empty; expected p99_ms=… and/or availability=…".to_string());
        }
        Ok(spec)
    }
}

/// The rolling windows burn rates are reported over, as
/// `(label, seconds)`. Longest last — budget remaining is measured over
/// the final entry.
pub const SLO_WINDOWS: [(&str, u64); 3] = [("1m", 60), ("5m", 300), ("30m", 1800)];

/// One second's worth of request outcomes.
#[derive(Debug, Clone, Copy, Default)]
struct Bucket {
    /// Which absolute second this bucket currently holds; stale buckets
    /// (lapped by the ring) are skipped on read and reset on write.
    stamp: u64,
    total: u64,
    errors: u64,
    slow: u64,
}

/// Rolling-window SLO tracker. See module docs.
#[derive(Debug)]
pub struct SloTracker {
    spec: SloSpec,
    buckets: std::sync::Mutex<Vec<Bucket>>,
}

/// Burn rates and budget state for one objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloObjectiveReport {
    /// `"p99_ms"` or `"availability"`.
    pub objective: &'static str,
    /// The configured target (milliseconds or percent).
    pub target: f64,
    /// The fraction of requests allowed to be bad (0.01 for p99, or
    /// `(100 − availability)/100`).
    pub budget_fraction: f64,
    /// `1 − consumed` over the longest window, clamped to `[0, 1]`;
    /// `1.0` when no requests were seen.
    pub budget_remaining: f64,
    /// Burn rate per window, in [`SLO_WINDOWS`] order:
    /// `bad_fraction / budget_fraction` (0 when the window is empty).
    pub windows: Vec<(&'static str, f64)>,
}

/// Burn rates for every active objective.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SloReport {
    /// One entry per active objective, `p99_ms` first.
    pub objectives: Vec<SloObjectiveReport>,
}

impl SloTracker {
    /// A tracker for the given spec. Capacity covers the longest window
    /// in [`SLO_WINDOWS`] with headroom.
    pub fn new(spec: SloSpec) -> Self {
        let capacity = (SLO_WINDOWS[SLO_WINDOWS.len() - 1].1 * 2) as usize;
        SloTracker {
            spec,
            buckets: std::sync::Mutex::new(vec![Bucket::default(); capacity]),
        }
    }

    /// The spec this tracker was built with.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Records one request outcome at absolute second `now_s`.
    /// `is_error` marks availability-budget spend (5xx / rejected);
    /// latency-budget spend is derived from `duration_ms` against the
    /// p99 target.
    pub fn record(&self, now_s: u64, duration_ms: f64, is_error: bool) {
        let mut buckets = self
            .buckets
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let len = buckets.len() as u64;
        let bucket = &mut buckets[(now_s % len) as usize];
        if bucket.stamp != now_s {
            *bucket = Bucket {
                stamp: now_s,
                ..Bucket::default()
            };
        }
        bucket.total += 1;
        if is_error {
            bucket.errors += 1;
        }
        if let Some(target) = self.spec.p99_ms {
            if duration_ms > target {
                bucket.slow += 1;
            }
        }
    }

    /// The burn-rate report as of absolute second `now_s`. A window at
    /// second `now_s` covers `(now_s − window, now_s]`.
    pub fn report(&self, now_s: u64) -> SloReport {
        let buckets = self
            .buckets
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Sum (total, errors, slow) per window in one pass over the ring.
        let mut sums = [(0u64, 0u64, 0u64); SLO_WINDOWS.len()];
        for bucket in buckets.iter() {
            if bucket.total == 0 && bucket.errors == 0 && bucket.slow == 0 {
                continue;
            }
            let age = now_s.saturating_sub(bucket.stamp);
            if bucket.stamp > now_s || age >= buckets.len() as u64 {
                continue; // stale or future-stamped slot
            }
            for (i, &(_, seconds)) in SLO_WINDOWS.iter().enumerate() {
                if age < seconds {
                    sums[i].0 += bucket.total;
                    sums[i].1 += bucket.errors;
                    sums[i].2 += bucket.slow;
                }
            }
        }
        let objective =
            |name: &'static str, target: f64, budget: f64, pick: fn(&(u64, u64, u64)) -> u64| {
                let windows: Vec<(&'static str, f64)> = SLO_WINDOWS
                    .iter()
                    .zip(sums.iter())
                    .map(|(&(label, _), sum)| {
                        let rate = if sum.0 == 0 {
                            0.0
                        } else {
                            (pick(sum) as f64 / sum.0 as f64) / budget
                        };
                        (label, rate)
                    })
                    .collect();
                let longest = &sums[SLO_WINDOWS.len() - 1];
                let remaining = if longest.0 == 0 {
                    1.0
                } else {
                    let consumed = pick(longest) as f64 / (budget * longest.0 as f64);
                    (1.0 - consumed).clamp(0.0, 1.0)
                };
                SloObjectiveReport {
                    objective: name,
                    target,
                    budget_fraction: budget,
                    budget_remaining: remaining,
                    windows,
                }
            };
        let mut report = SloReport::default();
        if let Some(target) = self.spec.p99_ms {
            report
                .objectives
                .push(objective("p99_ms", target, 0.01, |s| s.2));
        }
        if let Some(pct) = self.spec.availability_pct {
            let budget = (100.0 - pct) / 100.0;
            report
                .objectives
                .push(objective("availability", pct, budget, |s| s.1));
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_both_objectives_in_any_order() {
        let spec = SloSpec::parse("p99_ms=1.0,availability=99.9").unwrap();
        assert_eq!(spec.p99_ms, Some(1.0));
        assert_eq!(spec.availability_pct, Some(99.9));
        let spec = SloSpec::parse(" availability=99 , p99_ms=2.5 ").unwrap();
        assert_eq!(spec.p99_ms, Some(2.5));
        assert_eq!(spec.availability_pct, Some(99.0));
        let spec = SloSpec::parse("p99_ms=10").unwrap();
        assert_eq!(spec.availability_pct, None);
    }

    #[test]
    fn spec_rejects_malformed_input() {
        assert!(SloSpec::parse("").is_err());
        assert!(SloSpec::parse("p99_ms").is_err());
        assert!(SloSpec::parse("p99_ms=fast").is_err());
        assert!(SloSpec::parse("p99_ms=-1").is_err());
        assert!(SloSpec::parse("availability=100").is_err());
        assert!(SloSpec::parse("availability=0").is_err());
        assert!(SloSpec::parse("p50_ms=1").is_err());
    }

    #[test]
    fn burn_rate_one_means_spending_exactly_the_budget() {
        let tracker = SloTracker::new(SloSpec::parse("availability=99").unwrap());
        // 1% budget; make exactly 1 in 100 requests fail.
        for i in 0..1000u64 {
            tracker.record(10, 0.1, i % 100 == 0);
        }
        let report = tracker.report(10);
        let avail = &report.objectives[0];
        assert_eq!(avail.objective, "availability");
        for &(_, rate) in &avail.windows {
            assert!((rate - 1.0).abs() < 1e-9, "burn {rate}");
        }
        assert!((avail.budget_remaining - 0.0).abs() < 1e-9);
    }

    #[test]
    fn latency_objective_burns_on_slow_requests_only() {
        let tracker = SloTracker::new(SloSpec::parse("p99_ms=1.0").unwrap());
        for i in 0..200u64 {
            // 2% of requests exceed the 1ms target → burn rate 2.0.
            let duration = if i % 50 == 0 { 5.0 } else { 0.2 };
            tracker.record(5, duration, false);
        }
        let report = tracker.report(5);
        let p99 = &report.objectives[0];
        assert_eq!(p99.objective, "p99_ms");
        assert_eq!(p99.budget_fraction, 0.01);
        for &(_, rate) in &p99.windows {
            assert!((rate - 2.0).abs() < 1e-9, "burn {rate}");
        }
        assert_eq!(p99.budget_remaining, 0.0);
    }

    #[test]
    fn windows_age_out_old_bad_seconds() {
        let tracker = SloTracker::new(SloSpec::parse("availability=99").unwrap());
        // A burst of errors at t=0, then clean traffic at t=100.
        for _ in 0..100 {
            tracker.record(0, 0.1, true);
        }
        for _ in 0..100 {
            tracker.record(100, 0.1, false);
        }
        let report = tracker.report(100);
        let windows = &report.objectives[0].windows;
        // 1m window (covers t>40): only the clean burst → burn 0.
        assert_eq!(windows[0], ("1m", 0.0));
        // 5m and 30m windows still see the bad burst: 100 of 200 bad.
        assert!((windows[1].1 - 50.0).abs() < 1e-9);
        assert!((windows[2].1 - 50.0).abs() < 1e-9);
    }

    #[test]
    fn empty_tracker_reports_full_budget_and_zero_burn() {
        let tracker = SloTracker::new(SloSpec::parse("p99_ms=1.0,availability=99.9").unwrap());
        let report = tracker.report(500);
        assert_eq!(report.objectives.len(), 2);
        for obj in &report.objectives {
            assert_eq!(obj.budget_remaining, 1.0);
            assert!(obj.windows.iter().all(|&(_, rate)| rate == 0.0));
        }
    }

    #[test]
    fn reports_are_deterministic_for_a_given_outcome_sequence() {
        let run = || {
            let tracker = SloTracker::new(SloSpec::parse("p99_ms=1.0,availability=99").unwrap());
            for i in 0..500u64 {
                tracker.record(i / 10, (i % 7) as f64 * 0.3, i % 91 == 0);
            }
            tracker.report(50)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn lapped_buckets_are_reset_not_double_counted() {
        let tracker = SloTracker::new(SloSpec::parse("availability=99").unwrap());
        let capacity = 3600u64;
        tracker.record(5, 0.1, true);
        // Same ring slot, one full lap later: the stale record must not
        // leak into the new second's window sums.
        tracker.record(5 + capacity, 0.1, false);
        let report = tracker.report(5 + capacity);
        let windows = &report.objectives[0].windows;
        assert!(windows.iter().all(|&(_, rate)| rate == 0.0), "{windows:?}");
    }
}
