//! Prometheus text exposition (format version 0.0.4) writer.
//!
//! A small append-only builder producing output a Prometheus scraper (or
//! the CI smoke checker) accepts: `# HELP` / `# TYPE` headers followed by
//! samples with escaped label values. Histogram families are emitted from
//! pre-cumulated `(upper_bound_seconds, cumulative_count)` pairs plus the
//! mandatory `+Inf` bucket, `_sum` and `_count` series.

/// The `Content-Type` a 0.0.4 text exposition should be served with.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Escapes a label value (`\` → `\\`, `"` → `\"`, newline → `\n`).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// An exposition document under construction.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    /// An empty document.
    pub fn new() -> Self {
        PromText::default()
    }

    /// Starts a metric family: `# HELP` and `# TYPE` lines. `kind` is
    /// `counter`, `gauge`, `histogram`, `summary` or `untyped`.
    pub fn family(&mut self, name: &str, kind: &str, help: &str) -> &mut Self {
        self.out.push_str(&format!("# HELP {name} {help}\n"));
        self.out.push_str(&format!("# TYPE {name} {kind}\n"));
        self
    }

    /// Appends one integer sample.
    pub fn sample_u64(&mut self, name: &str, labels: &[(&str, &str)], value: u64) -> &mut Self {
        self.out
            .push_str(&format!("{name}{} {value}\n", render_labels(labels)));
        self
    }

    /// Appends one integer gauge sample (may be negative).
    pub fn sample_i64(&mut self, name: &str, labels: &[(&str, &str)], value: i64) -> &mut Self {
        self.out
            .push_str(&format!("{name}{} {value}\n", render_labels(labels)));
        self
    }

    /// Appends one float sample. Rust's `{}` for `f64` never uses
    /// exponent notation, which keeps the output within what every
    /// exposition parser accepts.
    pub fn sample_f64(&mut self, name: &str, labels: &[(&str, &str)], value: f64) -> &mut Self {
        self.out
            .push_str(&format!("{name}{} {value}\n", render_labels(labels)));
        self
    }

    /// Emits a full histogram family from **cumulative** bucket pairs
    /// `(upper_bound_seconds, cumulative_count)` in ascending bound
    /// order. The `+Inf` bucket, `_sum` (seconds) and `_count` series
    /// are appended automatically.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        buckets: &[(f64, u64)],
        sum_seconds: f64,
        count: u64,
    ) -> &mut Self {
        self.family(name, "histogram", help);
        for (le, cumulative) in buckets {
            self.out.push_str(&format!(
                "{name}_bucket{{le=\"{le}\"}} {cumulative}\n",
                le = le,
                cumulative = cumulative
            ));
        }
        self.out
            .push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {count}\n"));
        self.out.push_str(&format!("{name}_sum {sum_seconds}\n"));
        self.out.push_str(&format!("{name}_count {count}\n"));
        self
    }

    /// Finishes the document.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_and_samples_render_in_exposition_format() {
        let mut p = PromText::new();
        p.family("mule_requests_total", "counter", "Requests by route.")
            .sample_u64("mule_requests_total", &[("route", "plan")], 3)
            .sample_u64("mule_requests_total", &[], 5);
        let text = p.finish();
        assert!(text.contains("# HELP mule_requests_total Requests by route.\n"));
        assert!(text.contains("# TYPE mule_requests_total counter\n"));
        assert!(text.contains("mule_requests_total{route=\"plan\"} 3\n"));
        assert!(text.contains("mule_requests_total 5\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut p = PromText::new();
        p.sample_u64("m", &[("l", "a\"b\\c\nd")], 1);
        assert_eq!(p.finish(), "m{l=\"a\\\"b\\\\c\\nd\"} 1\n");
    }

    #[test]
    fn histograms_emit_buckets_sum_count_and_inf() {
        let mut p = PromText::new();
        p.histogram("lat", "Latency.", &[(0.001, 2), (0.01, 5)], 0.025, 6);
        let text = p.finish();
        assert!(text.contains("# TYPE lat histogram\n"));
        assert!(text.contains("lat_bucket{le=\"0.001\"} 2\n"));
        assert!(text.contains("lat_bucket{le=\"0.01\"} 5\n"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 6\n"));
        assert!(text.contains("lat_sum 0.025\n"));
        assert!(text.contains("lat_count 6\n"));
    }

    #[test]
    fn float_samples_never_use_exponent_notation() {
        let mut p = PromText::new();
        p.sample_f64("tiny", &[], 0.000001)
            .sample_f64("big", &[], 123456789.5);
        let text = p.finish();
        assert!(!text.contains('e') && !text.contains('E'), "{text}");
    }
}
