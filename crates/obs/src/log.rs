//! Structured JSON-lines event logging.
//!
//! One process-wide logger that every crate in the workspace can emit
//! through: mule-serve's access and slow-request logs, mule-fault's
//! firing records, and circuit-breaker transitions all arrive here as
//! **one JSON object per line** instead of ad-hoc `eprintln!` prose.
//!
//! ## Line schema
//!
//! ```json
//! {"seq":17,"ts_ms":1754650000123,"severity":"warn","event":"serve.slow_request",
//!  "trace_id":"9a1f0c3de4b25a76","fields":{"route":"plan","duration_ms":12.4}}
//! ```
//!
//! * `seq` — process-wide monotonic sequence number; never repeats, so
//!   interleaved lines from many threads can be totally ordered.
//! * `ts_ms` — wall-clock milliseconds since the Unix epoch. Time is
//!   **never** part of any determinism contract (see
//!   `docs/DETERMINISM.md`); lines are for operators, not goldens.
//! * `severity` — one of `debug` / `info` / `warn` / `error`.
//! * `event` — dotted static name (`serve.request`, `fault.injected`,
//!   `breaker.transition`, …).
//! * `trace_id` — present when the event happened inside a traced
//!   request, correlating the line with `/debug/traces` and
//!   `/debug/requests`.
//! * `fields` — flat string→scalar map of event-specific data.
//!
//! ## Wiring
//!
//! The logger is **inert until installed**: [`emit`] starts with one
//! relaxed atomic load and returns immediately when logging is off, so
//! code paths under golden-output pins stay byte-identical. Install with
//! [`install_stderr`] (production) or [`install_writer`] (tests), filter
//! with a minimum [`Severity`], and tear down with [`uninstall`].
//!
//! Rendering happens on the emitting thread into a reusable thread-local
//! buffer; only the final single `write_all` of the completed line takes
//! the sink lock, so lines from concurrent threads never interleave
//! mid-line. Every rendered line is also mirrored into a fixed-capacity
//! [`Ring`] readable via [`recent`] — that is what
//! mule-serve's `GET /debug/events` returns.

use crate::ring::Ring;
use std::cell::RefCell;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{LazyLock, Mutex, PoisonError};
use std::time::{SystemTime, UNIX_EPOCH};

/// Event severity, least to most severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// High-volume diagnostics (per-request access log).
    Debug,
    /// Lifecycle and state-change events.
    Info,
    /// Degraded-but-handled conditions (slow requests, fault firings).
    Warn,
    /// Failures.
    Error,
}

impl Severity {
    fn rank(self) -> u8 {
        match self {
            Severity::Debug => 0,
            Severity::Info => 1,
            Severity::Warn => 2,
            Severity::Error => 3,
        }
    }

    fn from_rank(rank: u8) -> Severity {
        match rank {
            0 => Severity::Debug,
            1 => Severity::Info,
            2 => Severity::Warn,
            _ => Severity::Error,
        }
    }

    /// The lowercase label used in the `severity` line field.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// Parses a label as accepted by `--log-level`.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "debug" => Some(Severity::Debug),
            "info" => Some(Severity::Info),
            "warn" => Some(Severity::Warn),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

/// A scalar value in an event's `fields` map.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A string (JSON-escaped on render).
    Str(String),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float; non-finite values render as `null`.
    F64(f64),
    /// A boolean.
    Bool(bool),
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// A structured event, built with the fluent API and handed to [`emit`].
///
/// ```
/// use mule_obs::log::{LogEvent, Severity};
/// let event = LogEvent::new(Severity::Warn, "serve.slow_request")
///     .trace("9a1f0c3de4b25a76")
///     .field("route", "plan")
///     .field("duration_ms", 12.4);
/// mule_obs::log::emit(event); // None while no sink is installed
/// ```
#[derive(Debug, Clone)]
pub struct LogEvent {
    severity: Severity,
    event: &'static str,
    trace_id: Option<String>,
    fields: Vec<(&'static str, FieldValue)>,
}

impl LogEvent {
    /// A new event with no trace correlation and no fields.
    pub fn new(severity: Severity, event: &'static str) -> Self {
        LogEvent {
            severity,
            event,
            trace_id: None,
            fields: Vec::new(),
        }
    }

    /// Attaches the trace id this event happened under.
    pub fn trace(mut self, trace_id: impl Into<String>) -> Self {
        self.trace_id = Some(trace_id.into());
        self
    }

    /// Appends one `fields` entry (insertion order is preserved).
    pub fn field(mut self, name: &'static str, value: impl Into<FieldValue>) -> Self {
        self.fields.push((name, value.into()));
        self
    }
}

/// Fast-path flag: `true` iff a sink is installed.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Minimum severity rank that passes the filter.
static MIN_RANK: AtomicU8 = AtomicU8::new(1);
/// Monotonic line sequence; survives reinstalls so `seq` never repeats.
static SEQ: AtomicU64 = AtomicU64::new(0);
/// The single writer all threads funnel into.
static SINK: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);
/// Rendered recent lines, served by `GET /debug/events`.
static RECENT: LazyLock<Ring<String>> = LazyLock::new(|| Ring::new(256));

thread_local! {
    /// Per-thread render buffer, reused across emits.
    static RENDER_BUF: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Installs a stderr sink with the given minimum severity.
pub fn install_stderr(min: Severity) {
    install_writer(Box::new(std::io::stderr()), min);
}

/// Installs an arbitrary sink (tests use an in-memory buffer) with the
/// given minimum severity. Replaces any previous sink.
pub fn install_writer(writer: Box<dyn Write + Send>, min: Severity) {
    let mut sink = SINK.lock().unwrap_or_else(PoisonError::into_inner);
    *sink = Some(writer);
    MIN_RANK.store(min.rank(), Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Removes the sink; [`emit`] goes back to its inert fast path.
pub fn uninstall() {
    ENABLED.store(false, Ordering::Relaxed);
    let mut sink = SINK.lock().unwrap_or_else(PoisonError::into_inner);
    *sink = None;
}

/// Whether any sink is installed.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether an event at `severity` would currently be written. Callers on
/// hot paths check this before building high-volume events (the serve
/// access log at [`Severity::Debug`]) so the disabled path stays free.
#[inline]
pub fn enabled_at(severity: Severity) -> bool {
    ENABLED.load(Ordering::Relaxed) && severity.rank() >= MIN_RANK.load(Ordering::Relaxed)
}

/// The minimum severity currently passing the filter.
pub fn min_severity() -> Severity {
    Severity::from_rank(MIN_RANK.load(Ordering::Relaxed))
}

/// Emits an event: renders it as one JSON line, writes it to the sink,
/// and mirrors it into the recent-events ring. Returns the line's `seq`,
/// or `None` when logging is off or the severity is filtered. Inert (one
/// relaxed atomic load) when no sink is installed.
pub fn emit(event: LogEvent) -> Option<u64> {
    if !enabled_at(event.severity) {
        return None;
    }
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let ts_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let line = RENDER_BUF.with_borrow_mut(|buf| {
        buf.clear();
        render_line(buf, seq, ts_ms, &event);
        buf.clone()
    });
    RECENT.push(line.clone());
    let mut sink = SINK.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(w) = sink.as_mut() {
        let _ = w.write_all(line.as_bytes());
        let _ = w.write_all(b"\n");
        let _ = w.flush();
    }
    Some(seq)
}

/// The most recent rendered lines (oldest first), at most `limit`.
/// Lines are retained even across [`uninstall`] — the ring is the
/// backing store for `GET /debug/events`.
pub fn recent(limit: usize) -> Vec<String> {
    let snap = RECENT.snapshot();
    let skip = snap.len().saturating_sub(limit);
    snap.into_iter().skip(skip).map(|(_, line)| line).collect()
}

fn render_line(buf: &mut String, seq: u64, ts_ms: u64, event: &LogEvent) {
    use std::fmt::Write as _;
    let _ = write!(
        buf,
        "{{\"seq\":{seq},\"ts_ms\":{ts_ms},\"severity\":\"{}\",\"event\":\"{}\"",
        event.severity.label(),
        escape(event.event)
    );
    if let Some(trace_id) = &event.trace_id {
        let _ = write!(buf, ",\"trace_id\":\"{}\"", escape(trace_id));
    }
    buf.push_str(",\"fields\":{");
    for (i, (name, value)) in event.fields.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        let _ = write!(buf, "\"{}\":", escape(name));
        match value {
            FieldValue::Str(s) => {
                let _ = write!(buf, "\"{}\"", escape(s));
            }
            FieldValue::U64(v) => {
                let _ = write!(buf, "{v}");
            }
            FieldValue::I64(v) => {
                let _ = write!(buf, "{v}");
            }
            FieldValue::F64(v) if v.is_finite() => {
                let _ = write!(buf, "{v}");
            }
            FieldValue::F64(_) => buf.push_str("null"),
            FieldValue::Bool(v) => {
                let _ = write!(buf, "{v}");
            }
        }
    }
    buf.push_str("}}");
}

/// Escapes a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// The logger is process-global; tests that install sinks serialise
    /// on this lock so they do not steal each other's output.
    pub(crate) static LOG_LOCK: StdMutex<()> = StdMutex::new(());

    /// A cloneable in-memory sink for asserting on emitted lines.
    #[derive(Clone, Default)]
    struct Capture(Arc<StdMutex<Vec<u8>>>);

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl Capture {
        fn lines(&self) -> Vec<String> {
            String::from_utf8(
                self.0
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone(),
            )
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
        }
    }

    #[test]
    fn emit_is_inert_without_a_sink() {
        let _guard = LOG_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        uninstall();
        assert!(!enabled());
        assert_eq!(
            emit(LogEvent::new(Severity::Error, "test.ignored").field("k", 1u64)),
            None
        );
    }

    #[test]
    fn lines_follow_the_documented_schema() {
        let _guard = LOG_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let cap = Capture::default();
        install_writer(Box::new(cap.clone()), Severity::Debug);
        let seq = emit(
            LogEvent::new(Severity::Warn, "serve.slow_request")
                .trace("9a1f0c3de4b25a76")
                .field("route", "plan")
                .field("status", 200u64)
                .field("duration_ms", 12.5)
                .field("cache_hit", false)
                .field("delta", -3i64),
        )
        .expect("sink installed");
        uninstall();
        let lines = cap.lines();
        assert_eq!(lines.len(), 1);
        let line = &lines[0];
        assert!(line.starts_with(&format!("{{\"seq\":{seq},\"ts_ms\":")));
        assert!(line.contains("\"severity\":\"warn\""));
        assert!(line.contains("\"event\":\"serve.slow_request\""));
        assert!(line.contains("\"trace_id\":\"9a1f0c3de4b25a76\""));
        assert!(line.contains(
            "\"fields\":{\"route\":\"plan\",\"status\":200,\"duration_ms\":12.5,\
             \"cache_hit\":false,\"delta\":-3}"
        ));
        assert!(line.ends_with("}}"));
        // The line is exactly one JSON object: balanced braces, no newline.
        assert!(!line.contains('\n'));
    }

    #[test]
    fn severity_filter_drops_below_minimum() {
        let _guard = LOG_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let cap = Capture::default();
        install_writer(Box::new(cap.clone()), Severity::Warn);
        assert!(!enabled_at(Severity::Debug));
        assert!(!enabled_at(Severity::Info));
        assert!(enabled_at(Severity::Warn));
        assert!(enabled_at(Severity::Error));
        assert_eq!(emit(LogEvent::new(Severity::Info, "test.filtered")), None);
        assert!(emit(LogEvent::new(Severity::Error, "test.kept")).is_some());
        uninstall();
        let lines = cap.lines();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("test.kept"));
    }

    #[test]
    fn sequence_is_monotonic_across_threads_and_mirrored_to_recent() {
        let _guard = LOG_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let cap = Capture::default();
        install_writer(Box::new(cap.clone()), Severity::Debug);
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..50)
                        .map(|i| {
                            emit(
                                LogEvent::new(Severity::Info, "test.concurrent")
                                    .field("thread", t)
                                    .field("i", i as u64),
                            )
                            .unwrap()
                        })
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        let mut seqs: Vec<u64> = Vec::new();
        for h in handles {
            let s = h.join().unwrap();
            assert!(s.windows(2).all(|w| w[0] < w[1]));
            seqs.extend(s);
        }
        uninstall();
        seqs.sort_unstable();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "duplicate seq");
        // Every written line is intact JSON-ish (no interleaving).
        let lines = cap.lines();
        assert_eq!(lines.len(), 200);
        for line in &lines {
            assert!(line.starts_with("{\"seq\":"), "torn line: {line}");
            assert!(line.ends_with("}}"), "torn line: {line}");
        }
        // The recent ring mirrors the newest lines.
        let recent = recent(16);
        assert_eq!(recent.len(), 16);
        for line in &recent {
            assert!(line.contains("test.concurrent"));
        }
    }

    #[test]
    fn strings_are_json_escaped_and_nonfinite_floats_render_null() {
        let _guard = LOG_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let cap = Capture::default();
        install_writer(Box::new(cap.clone()), Severity::Debug);
        emit(
            LogEvent::new(Severity::Info, "test.escape")
                .field("path", "/a\"b\\c\nd")
                .field("nan", f64::NAN),
        );
        uninstall();
        let line = cap.lines().remove(0);
        assert!(line.contains("\"path\":\"/a\\\"b\\\\c\\nd\""));
        assert!(line.contains("\"nan\":null"));
    }

    #[test]
    fn severity_labels_round_trip() {
        for sev in [
            Severity::Debug,
            Severity::Info,
            Severity::Warn,
            Severity::Error,
        ] {
            assert_eq!(Severity::parse(sev.label()), Some(sev));
        }
        assert_eq!(Severity::parse("verbose"), None);
    }
}
