//! The recorded span-tree model and its deterministic shape rendering.

/// Allocation activity attributed to one span (everything that happened
/// on the recording thread between the span's open and close, children
/// included). Only recorded while [`crate::alloc`] is armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanAlloc {
    /// Allocation events (allocs + reallocs) inside the span. A pure
    /// function of the traced computation — pinned by golden tests via
    /// [`Trace::alloc_shape`].
    pub allocs: u64,
    /// Bytes requested inside the span. Wall-clock-like: carried for
    /// capacity analysis, **never** pinned.
    pub bytes: u64,
    /// High-water mark of thread-live bytes while the span was open.
    /// Never pinned.
    pub peak_live: u64,
}

/// One recorded span. `id` doubles as the monotonic open-order sequence
/// number; `start_ns` / `dur_ns` are wall-clock and excluded from the
/// deterministic shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span id, assigned in open order within the trace (root = 0).
    pub id: u32,
    /// Parent span id, `None` for roots.
    pub parent: Option<u32>,
    /// Span name (`chb.two_opt`, `request.plan`, …).
    pub name: String,
    /// Open time in nanoseconds since the trace epoch (wall clock;
    /// **not** part of the deterministic shape).
    pub start_ns: u64,
    /// Duration in nanoseconds (wall clock; **not** part of the shape).
    pub dur_ns: u64,
    /// Accumulated integer counters, in first-touch order. Part of the
    /// deterministic shape.
    pub counters: Vec<(String, u64)>,
    /// Allocation attribution, `None` unless [`crate::alloc`] was armed
    /// while the span was open. Excluded from [`Trace::shape`] so arming
    /// elsewhere in the process can never move a pinned shape.
    pub alloc: Option<SpanAlloc>,
}

/// A finished trace: the span tree plus trace-level gauges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// All spans in id (open) order.
    pub spans: Vec<SpanRecord>,
    /// Trace-level gauges, in first-touch order.
    pub gauges: Vec<(String, i64)>,
}

impl Trace {
    /// Renders the deterministic shape of the trace: one line per span in
    /// open order, indented by depth, with counters but **without** any
    /// timing. Two runs of the same seeded computation produce identical
    /// shapes; golden tests pin this string.
    pub fn shape(&self) -> String {
        let mut depth = vec![0usize; self.spans.len()];
        let mut out = String::new();
        for span in &self.spans {
            let d = span
                .parent
                .map(|p| depth[p as usize] + 1)
                .unwrap_or_default();
            depth[span.id as usize] = d;
            for _ in 0..d {
                out.push_str("  ");
            }
            out.push_str(&span.name);
            for (name, value) in &span.counters {
                out.push_str(&format!(" {name}={value}"));
            }
            out.push('\n');
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!("gauge {name}={value}\n"));
        }
        out
    }

    /// Renders the allocation-count shape: the [`Trace::shape`] tree with
    /// each armed span's deterministic `allocs` event count appended
    /// (`name allocs=N`). Bytes, peaks and durations are deliberately
    /// absent — this is the string the golden allocation tests compare
    /// run-to-run, and only counts are covered by the determinism
    /// contract (`docs/DETERMINISM.md`, "Memory").
    pub fn alloc_shape(&self) -> String {
        let mut depth = vec![0usize; self.spans.len()];
        let mut out = String::new();
        for span in &self.spans {
            let d = span
                .parent
                .map(|p| depth[p as usize] + 1)
                .unwrap_or_default();
            depth[span.id as usize] = d;
            for _ in 0..d {
                out.push_str("  ");
            }
            out.push_str(&span.name);
            if let Some(alloc) = &span.alloc {
                out.push_str(&format!(" allocs={}", alloc.allocs));
            }
            out.push('\n');
        }
        out
    }

    /// Grafts `child` (a trace recorded elsewhere, e.g. on a worker
    /// thread) into this trace under span `parent`. Child span ids are
    /// renumbered to continue this trace's open order, and child
    /// timestamps are shifted to start at the parent span's open time so
    /// the result still renders sensibly in a timeline viewer. Grafting
    /// in a deterministic order (e.g. grid order) keeps the combined
    /// shape deterministic even when the children ran in parallel.
    pub fn graft(&mut self, child: Trace, parent: Option<u32>) {
        graft_into(&mut self.spans, &mut self.gauges, child, parent);
    }
}

/// The shared graft implementation: renumbers `child`'s span ids to
/// continue the host's open order, reparents its roots under `parent`,
/// and shifts its timestamps to the parent span's open time. Used both by
/// [`Trace::graft`] and by the live-collector graft in the crate root.
pub(crate) fn graft_into(
    spans: &mut Vec<SpanRecord>,
    gauges: &mut Vec<(String, i64)>,
    child: Trace,
    parent: Option<u32>,
) {
    let offset = spans.len() as u32;
    let shift = parent
        .and_then(|p| spans.get(p as usize))
        .map(|p| p.start_ns)
        .unwrap_or_default();
    for mut span in child.spans {
        span.id += offset;
        span.parent = span.parent.map(|p| p + offset).or(parent);
        span.start_ns += shift;
        spans.push(span);
    }
    for gauge in child.gauges {
        gauges.push(gauge);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u32, parent: Option<u32>, name: &str) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.to_string(),
            start_ns: u64::from(id) * 10,
            dur_ns: 5,
            counters: Vec::new(),
            alloc: None,
        }
    }

    #[test]
    fn shape_indents_by_depth_and_shows_counters() {
        let mut root = rec(0, None, "root");
        root.counters.push(("n".to_string(), 12));
        let trace = Trace {
            spans: vec![root, rec(1, Some(0), "child"), rec(2, Some(1), "leaf")],
            gauges: vec![("workers".to_string(), 4)],
        };
        assert_eq!(
            trace.shape(),
            "root n=12\n  child\n    leaf\ngauge workers=4\n"
        );
    }

    #[test]
    fn alloc_shape_appends_counts_only_for_armed_spans() {
        let mut armed = rec(1, Some(0), "child");
        armed.alloc = Some(SpanAlloc {
            allocs: 4,
            bytes: 4096,
            peak_live: 9000,
        });
        let trace = Trace {
            spans: vec![rec(0, None, "root"), armed],
            gauges: vec![("ignored".to_string(), 1)],
        };
        // Counts in, bytes/peaks/gauges out; the plain shape is untouched.
        assert_eq!(trace.alloc_shape(), "root\n  child allocs=4\n");
        assert_eq!(trace.shape(), "root\n  child\ngauge ignored=1\n");
    }

    #[test]
    fn graft_renumbers_ids_and_reparents_roots() {
        let mut host = Trace {
            spans: vec![rec(0, None, "host")],
            gauges: Vec::new(),
        };
        let child = Trace {
            spans: vec![rec(0, None, "sub"), rec(1, Some(0), "sub.leaf")],
            gauges: vec![("g".to_string(), 1)],
        };
        host.graft(child, Some(0));
        assert_eq!(host.spans.len(), 3);
        assert_eq!(host.spans[1].id, 1);
        assert_eq!(host.spans[1].parent, Some(0));
        assert_eq!(host.spans[2].id, 2);
        assert_eq!(host.spans[2].parent, Some(1));
        assert_eq!(host.gauges.len(), 1);
        // Child timestamps were shifted to the parent's open time.
        assert_eq!(host.spans[1].start_ns, host.spans[0].start_ns);
    }
}
